//! Integration tests asserting the *shape* of the paper's headline results:
//! who wins and by roughly what factor (not absolute numbers).

use fair_assignment::datagen::{anti_correlated_objects, uniform_weight_functions};
use fair_assignment::{brute_force, chain, sb, Problem, SbOptions};

fn workload(num_functions: usize, num_objects: usize, dims: usize) -> Problem {
    let functions = uniform_weight_functions(num_functions, dims, 7);
    let objects = anti_correlated_objects(num_objects, dims, 8);
    Problem::from_parts(functions, objects).unwrap()
}

/// Figures 9–11: SB incurs orders of magnitude fewer I/Os than Brute Force and
/// Chain, and Brute Force needs fewer top-1 searches than Chain. The paper's
/// headline I/O metric is object R-tree node accesses (`object_io`); auxiliary
/// accesses (SB's memory-resident sorted lists, Chain's main-memory function
/// tree) are reported separately in `aux_io` and not compared here.
#[test]
fn sb_dominates_competitors_on_io() {
    let problem = workload(150, 5_000, 3);
    let mut tree = problem.build_tree(None, 0.02);
    let sb_io = sb(&problem, &mut tree, &SbOptions::default())
        .metrics
        .object_io
        .io_accesses();
    let mut tree = problem.build_tree(None, 0.02);
    let bf = brute_force(&problem, &mut tree);
    let mut tree = problem.build_tree(None, 0.02);
    let ch = chain(&problem, &mut tree);
    assert!(
        sb_io * 10 < bf.metrics.object_io.io_accesses(),
        "SB {} vs Brute Force {}",
        sb_io,
        bf.metrics.object_io.io_accesses()
    );
    assert!(
        sb_io * 10 < ch.metrics.object_io.io_accesses(),
        "SB {} vs Chain {}",
        sb_io,
        ch.metrics.object_io.io_accesses()
    );
    assert!(
        ch.metrics.searches > bf.metrics.searches,
        "Chain ({}) performs more top-1 searches than Brute Force ({})",
        ch.metrics.searches,
        bf.metrics.searches
    );
}

/// Figure 10: SB's I/O stays nearly flat as |F| grows, while the competitors'
/// I/O grows substantially.
#[test]
fn sb_io_is_flat_in_function_cardinality() {
    let small = workload(50, 4_000, 3);
    let large = workload(400, 4_000, 3);
    let io = |p: &Problem| {
        let mut tree = p.build_tree(None, 0.02);
        sb(p, &mut tree, &SbOptions::default())
            .metrics
            .object_io
            .io_accesses()
    };
    let bf_io = |p: &Problem| {
        let mut tree = p.build_tree(None, 0.02);
        brute_force(p, &mut tree).metrics.object_io.io_accesses()
    };
    let sb_growth = io(&large) as f64 / io(&small).max(1) as f64;
    let bf_growth = bf_io(&large) as f64 / bf_io(&small).max(1) as f64;
    assert!(
        sb_growth < bf_growth,
        "SB I/O grew {sb_growth:.2}x, Brute Force {bf_growth:.2}x for 8x more functions"
    );
}

/// Figure 13: a larger LRU buffer helps the competitors but SB's I/O is
/// already near-minimal without one.
#[test]
fn buffer_size_barely_affects_sb() {
    let problem = workload(100, 4_000, 3);
    let run_sb = |fraction: f64| {
        let mut tree = problem.build_tree(None, fraction);
        sb(&problem, &mut tree, &SbOptions::default())
            .metrics
            .object_io
            .io_accesses()
    };
    let no_buffer = run_sb(0.0);
    let big_buffer = run_sb(0.10);
    assert!(
        big_buffer <= no_buffer,
        "a buffer can only help: {big_buffer} vs {no_buffer}"
    );
    // near-flat: within a factor of two
    assert!(
        no_buffer <= big_buffer.max(1) * 2,
        "SB should be almost insensitive to the buffer: {no_buffer} vs {big_buffer}"
    );
}

/// Figure 8: the fully optimized SB needs far less CPU than the variant
/// without the best-pair and multi-pair optimizations.
#[test]
fn cpu_optimizations_pay_off() {
    let problem = workload(300, 6_000, 4);
    let mut tree = problem.build_tree(None, 0.02);
    let optimized = sb(&problem, &mut tree, &SbOptions::default());
    let mut tree = problem.build_tree(None, 0.02);
    let plain = sb(&problem, &mut tree, &SbOptions::update_skyline_only());
    assert_eq!(
        optimized.assignment.canonical(),
        plain.assignment.canonical()
    );
    assert!(
        optimized.metrics.loops < plain.metrics.loops,
        "multi-pair loops {} should be fewer than single-pair loops {}",
        optimized.metrics.loops,
        plain.metrics.loops
    );
    // same maintenance strategy => essentially the same object-tree I/O
    // (Figure 8(a): the CPU-side optimizations do not change the R-tree cost)
    let (a, b) = (
        optimized.metrics.object_io.io_accesses() as f64,
        plain.metrics.object_io.io_accesses() as f64,
    );
    assert!(
        (a - b).abs() <= 0.2 * b + 8.0,
        "object I/O should be unaffected by the CPU optimizations: {a} vs {b}"
    );
    // the resumable searches are the CPU-side win: they touch the sorted
    // lists far less than restarting every search from scratch each loop
    assert!(
        optimized.metrics.aux_io.io_accesses() < plain.metrics.aux_io.io_accesses(),
        "resumable TA aux accesses {} should undercut fresh TA {}",
        optimized.metrics.aux_io.io_accesses(),
        plain.metrics.aux_io.io_accesses()
    );
}
