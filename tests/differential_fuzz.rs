//! Differential fuzz harness: every [`Solver`] variant against the
//! brute-force oracle on seeded adversarial instances.
//!
//! The instance generator deliberately concentrates on the regions where the
//! solver family historically had the least coverage:
//!
//! * **capacities 1..=4** on both sides (most of the original suite is
//!   unit-capacity),
//! * **duplicated points** (several objects at exactly the same coordinates),
//! * **exact score ties** (coordinates and weights drawn from a coarse grid,
//!   plus duplicated weight vectors — the tie-break paths must pick the
//!   oracle's pair),
//! * **degenerate shapes** (1×1 problems, one side much larger than the
//!   other, all-identical populations, saturated and starved supply).
//!
//! Every instance is solved by every solver variant over trees of several
//! fanouts; each result must verify as stable *and* equal the oracle's
//! matching canonically. Seeds are fixed, so a failure reproduces exactly;
//! `FUZZ_ITERS` raises the iteration count in the CI stress job.

use fair_assignment::assign::all_solvers;
use fair_assignment::geom::{LinearFunction, Point};
use fair_assignment::{oracle, verify_stable, ObjectRecord, PreferenceFunction, Problem};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Iteration count: default keeps `cargo test` quick; the CI stress job
/// raises it via the `FUZZ_ITERS` environment variable.
fn fuzz_iters() -> u64 {
    std::env::var("FUZZ_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48)
}

/// One coordinate: quantized instances draw from a 5-point grid (forcing
/// exact ties and duplicates), continuous instances from `[0, 1]`.
fn coordinate(rng: &mut StdRng, quantized: bool) -> f64 {
    if quantized {
        [0.0, 0.25, 0.5, 0.75, 1.0][rng.gen_range(0..5usize)]
    } else {
        rng.gen_range(0.0..1.0)
    }
}

/// A raw (pre-normalization) weight; the grid makes identical normalized
/// functions likely.
fn weight(rng: &mut StdRng, quantized: bool) -> f64 {
    if quantized {
        [1.0, 1.0, 2.0, 3.0][rng.gen_range(0..4usize)]
    } else {
        rng.gen_range(0.01..1.0)
    }
}

/// How each side's capacities are drawn: the sweep covers all-unit problems,
/// mixed `1..=4`, and one saturated side.
#[derive(Clone, Copy, Debug)]
enum CapacityMode {
    Unit,
    Mixed,
    Heavy,
}

impl CapacityMode {
    fn draw(self, rng: &mut StdRng) -> u32 {
        match self {
            CapacityMode::Unit => 1,
            CapacityMode::Mixed => rng.gen_range(1..=4),
            CapacityMode::Heavy => 4,
        }
    }

    fn pick(rng: &mut StdRng) -> Self {
        match rng.gen_range(0..3) {
            0 => CapacityMode::Unit,
            1 => CapacityMode::Mixed,
            _ => CapacityMode::Heavy,
        }
    }
}

/// Draws one adversarial instance.
fn random_instance(seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let dims = rng.gen_range(2..=4);
    let quantized = rng.gen_bool(0.6);
    let f_caps = CapacityMode::pick(&mut rng);
    let o_caps = CapacityMode::pick(&mut rng);
    let num_functions = rng.gen_range(1..=10);
    let num_objects = rng.gen_range(1..=14);

    let mut functions: Vec<PreferenceFunction> = Vec::with_capacity(num_functions);
    for i in 0..num_functions {
        // duplicated weight vectors: exact cross-function ties on every object
        let weights: Vec<f64> = if i > 0 && rng.gen_bool(0.3) {
            let source = &functions[rng.gen_range(0..i)];
            source.function.weights().to_vec()
        } else {
            (0..dims).map(|_| weight(&mut rng, quantized)).collect()
        };
        functions.push(
            PreferenceFunction::new(i, LinearFunction::new(weights).unwrap())
                .with_capacity(f_caps.draw(&mut rng)),
        );
    }

    let mut points: Vec<Point> = Vec::with_capacity(num_objects);
    for i in 0..num_objects {
        // duplicated points: exact cross-object ties for every function
        if i > 0 && rng.gen_bool(0.3) {
            let source = points[rng.gen_range(0..i)].clone();
            points.push(source);
        } else {
            points.push(Point::from_slice(
                &(0..dims)
                    .map(|_| coordinate(&mut rng, quantized))
                    .collect::<Vec<_>>(),
            ));
        }
    }
    let objects: Vec<ObjectRecord> = points
        .into_iter()
        .enumerate()
        .map(|(i, p)| ObjectRecord::new(i as u64, p).with_capacity(o_caps.draw(&mut rng)))
        .collect();

    Problem::new(functions, objects).unwrap()
}

/// Solves `problem` with every solver variant over several tree fanouts and
/// checks stability + canonical oracle equality for each.
fn check_against_oracle(problem: &Problem, label: &str) {
    let want = oracle(problem);
    verify_stable(problem, &want).unwrap_or_else(|v| panic!("oracle unstable on {label}: {v}"));
    let want = want.canonical();
    for fanout in [None, Some(4), Some(8)] {
        for solver in all_solvers() {
            let mut tree = problem.build_tree(fanout, 0.02);
            let result = solver.solve(problem, &mut tree);
            verify_stable(problem, &result.assignment).unwrap_or_else(|v| {
                panic!(
                    "{} (fanout {fanout:?}) unstable on {label}: {v}",
                    solver.name()
                )
            });
            assert_eq!(
                result.assignment.canonical(),
                want,
                "{} (fanout {fanout:?}) diverges from the oracle on {label}",
                solver.name()
            );
        }
    }
}

#[test]
fn seeded_random_instances_match_the_oracle() {
    for seed in 0..fuzz_iters() {
        let problem = random_instance(seed);
        check_against_oracle(
            &problem,
            &format!(
                "seed {seed} (|F|={}, |O|={}, dims={})",
                problem.num_functions(),
                problem.num_objects(),
                problem.dims()
            ),
        );
    }
}

#[test]
fn degenerate_shapes_match_the_oracle() {
    let f = |w: Vec<f64>| LinearFunction::new(w).unwrap();

    // 1 function × 1 object, capacities saturated on both sides
    let p = Problem::new(
        vec![PreferenceFunction::new(0, f(vec![0.5, 0.5])).with_capacity(4)],
        vec![ObjectRecord::new(0, Point::from_slice(&[0.3, 0.7])).with_capacity(4)],
    )
    .unwrap();
    check_against_oracle(&p, "1x1 saturated");

    // one function, many identical objects: every pair ties exactly
    let p = Problem::new(
        vec![PreferenceFunction::new(0, f(vec![1.0, 2.0])).with_capacity(3)],
        (0..8)
            .map(|i| ObjectRecord::new(i, Point::from_slice(&[0.5, 0.5])))
            .collect(),
    )
    .unwrap();
    check_against_oracle(&p, "identical objects");

    // many identical functions, one object: demand 10, supply 2
    let p = Problem::new(
        (0..10)
            .map(|i| PreferenceFunction::new(i, f(vec![2.0, 1.0])))
            .collect(),
        vec![ObjectRecord::new(0, Point::from_slice(&[0.9, 0.1])).with_capacity(2)],
    )
    .unwrap();
    check_against_oracle(&p, "identical functions, starved supply");

    // supply far exceeds demand: most objects stay unmatched
    let p = Problem::new(
        vec![PreferenceFunction::new(0, f(vec![1.0, 1.0]))],
        (0..12)
            .map(|i| {
                ObjectRecord::new(i, Point::from_slice(&[0.1 * (i % 4) as f64, 0.25]))
                    .with_capacity(4)
            })
            .collect(),
    )
    .unwrap();
    check_against_oracle(&p, "oversupplied");

    // demand far exceeds supply through function capacities
    let p = Problem::new(
        (0..4)
            .map(|i| PreferenceFunction::new(i, f(vec![1.0 + i as f64, 1.0])).with_capacity(4))
            .collect(),
        (0..3)
            .map(|i| ObjectRecord::new(i, Point::from_slice(&[0.2 + 0.3 * i as f64, 0.5])))
            .collect(),
    )
    .unwrap();
    check_against_oracle(&p, "overdemanded");

    // everything identical on both sides: a pure tie-break stress
    let p = Problem::new(
        (0..5)
            .map(|i| PreferenceFunction::new(i, f(vec![1.0, 1.0])).with_capacity(2))
            .collect(),
        (0..5)
            .map(|i| ObjectRecord::new(i, Point::from_slice(&[0.5, 0.5])).with_capacity(2))
            .collect(),
    )
    .unwrap();
    check_against_oracle(&p, "all-identical tie-break");
}

#[test]
fn capacity_sweep_1_to_4_on_both_sides() {
    // the full capacity grid on a fixed skewed instance: 16 deterministic
    // cells, each checked against the oracle
    for f_cap in 1..=4u32 {
        for o_cap in 1..=4u32 {
            let functions: Vec<PreferenceFunction> = (0..6)
                .map(|i| {
                    PreferenceFunction::new(
                        i,
                        LinearFunction::new(vec![1.0 + (i % 3) as f64, 2.0, 1.0]).unwrap(),
                    )
                    .with_capacity(f_cap)
                })
                .collect();
            let objects: Vec<ObjectRecord> = (0..9)
                .map(|i| {
                    ObjectRecord::new(
                        i,
                        Point::from_slice(&[
                            0.1 + 0.1 * (i % 5) as f64,
                            0.9 - 0.1 * (i % 4) as f64,
                            0.25 * (i % 3) as f64,
                        ]),
                    )
                    .with_capacity(o_cap)
                })
                .collect();
            let p = Problem::new(functions, objects).unwrap();
            check_against_oracle(&p, &format!("capacity cell f={f_cap} o={o_cap}"));
        }
    }
}
