//! End-to-end coverage for the facade's `io` module: JSON problem in,
//! stable assignment out, and every error variant exercised.

use fair_assignment::io::{
    load_problem_json, read_assignment_csv, read_problem_json, save_problem_json,
    write_assignment_csv, write_problem_json, IoFormatError,
};
use fair_assignment::{solve, verify_stable, FunctionId};

/// A small instance relying on the serde defaults: no `priority` or
/// `capacity` on most entries.
const SMALL_PROBLEM: &str = r#"{
    "functions": [
        {"id": 0, "weights": [0.8, 0.2]},
        {"id": 1, "weights": [0.2, 0.8]},
        {"id": 2, "weights": [0.5, 0.5], "priority": 2.0, "capacity": 2}
    ],
    "objects": [
        {"id": 0, "attributes": [0.5, 0.6]},
        {"id": 1, "attributes": [0.2, 0.7]},
        {"id": 2, "attributes": [0.8, 0.2]},
        {"id": 3, "attributes": [0.4, 0.4], "capacity": 1}
    ]
}"#;

#[test]
fn load_solve_serialize_round_trip() {
    // load
    let problem = read_problem_json(SMALL_PROBLEM.as_bytes()).unwrap();
    assert_eq!(problem.num_functions(), 3);
    assert_eq!(problem.num_objects(), 4);
    // defaults applied where the JSON omitted them
    assert_eq!(problem.functions()[0].capacity, 1);
    assert!((problem.functions()[0].function.priority() - 1.0).abs() < 1e-12);
    assert_eq!(problem.functions()[2].capacity, 2);

    // solve
    let assignment = solve(&problem);
    // capacity 1 + 1 + 2 = 4 requests over 4 objects
    assert_eq!(assignment.len(), 4);
    verify_stable(&problem, &assignment).unwrap();
    // the prioritized user (γ = 2) must be served
    assert!(assignment.object_of(FunctionId(2)).is_some());

    // serialize the problem again and re-load: same matching
    let mut json = Vec::new();
    write_problem_json(&problem, &mut json).unwrap();
    let reloaded = read_problem_json(json.as_slice()).unwrap();
    assert_eq!(solve(&reloaded).canonical(), assignment.canonical());

    // serialize the assignment as CSV and read it back
    let mut csv = Vec::new();
    write_assignment_csv(&assignment, &mut csv).unwrap();
    let restored = read_assignment_csv(csv.as_slice()).unwrap();
    assert_eq!(restored.canonical(), assignment.canonical());
    verify_stable(&problem, &restored).unwrap();
}

#[test]
fn file_based_round_trip() {
    let problem = read_problem_json(SMALL_PROBLEM.as_bytes()).unwrap();
    let dir = std::env::temp_dir().join("fair-assignment-io-int-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("round_trip.json");
    save_problem_json(&problem, &path).unwrap();
    let loaded = load_problem_json(&path).unwrap();
    assert_eq!(solve(&loaded).canonical(), solve(&problem).canonical());
    std::fs::remove_file(&path).ok();
}

#[test]
fn json_error_variant_is_reported() {
    // Truncated document → the parser itself fails → Json variant.
    let err = read_problem_json(r#"{"functions": ["#.as_bytes()).unwrap_err();
    assert!(matches!(err, IoFormatError::Json(_)), "got {err:?}");
    assert!(err.to_string().starts_with("json error:"));

    // Well-formed JSON of the wrong shape is also a Json (decode) failure.
    let err = read_problem_json(r#"{"functions": 3, "objects": []}"#.as_bytes()).unwrap_err();
    assert!(matches!(err, IoFormatError::Json(_)), "got {err:?}");
}

#[test]
fn io_and_invalid_error_variants_are_reported() {
    // Missing file → Io variant.
    let missing = std::env::temp_dir().join("fair-assignment-io-int-test-does-not-exist.json");
    let err = load_problem_json(&missing).unwrap_err();
    assert!(matches!(err, IoFormatError::Io(_)), "got {err:?}");

    // Structurally valid JSON failing problem validation → Invalid variant.
    let err = read_problem_json(
        r#"{"functions":[{"id":0,"weights":[0.0,0.0]}],
            "objects":[{"id":0,"attributes":[0.5,0.5]}]}"#
            .as_bytes(),
    )
    .unwrap_err();
    assert!(matches!(err, IoFormatError::Invalid(_)), "got {err:?}");
    assert!(err.to_string().contains("function 0"));
}
