//! Property-based integration tests: on arbitrary random instances, the SB
//! algorithm produces exactly the greedy stable matching and never violates
//! stability, capacities or completeness.

use fair_assignment::geom::{LinearFunction, Point};
use fair_assignment::{
    oracle, sb, verify_stable, ObjectRecord, PreferenceFunction, Problem, SbOptions,
};
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = Problem> {
    let dims = 2usize..5;
    dims.prop_flat_map(|d| {
        let functions = proptest::collection::vec(
            (
                proptest::collection::vec(0.01f64..1.0, d),
                1u32..3, // capacity
                1u32..4, // priority
            ),
            1..12,
        );
        let objects =
            proptest::collection::vec((proptest::collection::vec(0.0f64..1.0, d), 1u32..3), 1..25);
        (functions, objects).prop_map(|(fs, os)| {
            let functions = fs
                .into_iter()
                .enumerate()
                .map(|(i, (w, cap, prio))| {
                    PreferenceFunction::new(
                        i,
                        LinearFunction::with_priority(w, prio as f64).unwrap(),
                    )
                    .with_capacity(cap)
                })
                .collect();
            let objects = os
                .into_iter()
                .enumerate()
                .map(|(i, (coords, cap))| {
                    ObjectRecord::new(i as u64, Point::new(coords).unwrap()).with_capacity(cap)
                })
                .collect();
            Problem::new(functions, objects).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sb_always_produces_the_stable_matching(problem in arb_problem()) {
        let mut tree = problem.build_tree(Some(8), 0.0);
        let result = sb(&problem, &mut tree, &SbOptions::default());
        prop_assert!(verify_stable(&problem, &result.assignment).is_ok(),
            "stability violated: {:?}", verify_stable(&problem, &result.assignment));
        // score multiset matches the greedy oracle (pairs can differ on ties)
        let mut got: Vec<u64> = result.assignment.pairs().iter()
            .map(|p| (p.score * 1e9).round() as u64).collect();
        let mut want: Vec<u64> = oracle(&problem).pairs().iter()
            .map(|p| (p.score * 1e9).round() as u64).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn assignment_size_is_min_of_demand_and_supply(problem in arb_problem()) {
        let assignment = fair_assignment::solve(&problem);
        prop_assert_eq!(assignment.len() as u64, problem.expected_pairs());
    }

    #[test]
    fn scores_never_exceed_the_best_possible(problem in arb_problem()) {
        let assignment = fair_assignment::solve(&problem);
        let max_priority = problem
            .functions()
            .iter()
            .map(|f| f.function.priority())
            .fold(0.0f64, f64::max);
        for pair in assignment.pairs() {
            prop_assert!(pair.score <= max_priority + 1e-9);
            prop_assert!(pair.score >= 0.0);
        }
        // the very first reported pair is the globally best one
        if let Some(first) = assignment.pairs().first() {
            let global_max = problem
                .functions()
                .iter()
                .flat_map(|f| problem.objects().iter().map(move |o| f.function.score(&o.point)))
                .fold(f64::MIN, f64::max);
            prop_assert!((first.score - global_max).abs() < 1e-9);
        }
    }
}
