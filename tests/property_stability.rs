//! Property-based integration tests: on arbitrary random instances, the SB
//! algorithm produces exactly the greedy stable matching and never violates
//! stability, capacities or completeness.

use fair_assignment::geom::{LinearFunction, Point};
use fair_assignment::{
    oracle, sb, sb_alt, verify_stable, BestPairStrategy, ObjectRecord, PreferenceFunction, Problem,
    SbOptions,
};
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = Problem> {
    let dims = 2usize..5;
    dims.prop_flat_map(|d| {
        let functions = proptest::collection::vec(
            (
                proptest::collection::vec(0.01f64..1.0, d),
                1u32..3, // capacity
                1u32..4, // priority
            ),
            1..12,
        );
        let objects =
            proptest::collection::vec((proptest::collection::vec(0.0f64..1.0, d), 1u32..3), 1..25);
        (functions, objects).prop_map(|(fs, os)| {
            let functions = fs
                .into_iter()
                .enumerate()
                .map(|(i, (w, cap, prio))| {
                    PreferenceFunction::new(
                        i,
                        LinearFunction::with_priority(w, prio as f64).unwrap(),
                    )
                    .with_capacity(cap)
                })
                .collect();
            let objects = os
                .into_iter()
                .enumerate()
                .map(|(i, (coords, cap))| {
                    ObjectRecord::new(i as u64, Point::new(coords).unwrap()).with_capacity(cap)
                })
                .collect();
            Problem::new(functions, objects).unwrap()
        })
    })
}

/// Instances engineered to contain exact score ties: every weight vector and
/// every object point appears (at least) twice. `LinearFunction::new`
/// normalizes, so duplicated raw weights yield bit-identical functions.
/// Record ids are assigned in *reverse* table order so that id order and
/// dense-index order disagree — tie-breaking must follow the oracle's dense
/// order, not the ids.
fn arb_tied_problem() -> impl Strategy<Value = Problem> {
    let dims = 2usize..4;
    dims.prop_flat_map(|d| {
        let functions = proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, d), 1..5);
        let objects = proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, d), 1..8);
        (functions, objects).prop_map(|(fs, os)| {
            let functions: Vec<PreferenceFunction> = fs
                .iter()
                .chain(fs.iter())
                .enumerate()
                .map(|(i, w)| PreferenceFunction::new(i, LinearFunction::new(w.clone()).unwrap()))
                .collect();
            let n = 2 * os.len();
            let objects: Vec<ObjectRecord> = os
                .iter()
                .chain(os.iter())
                .enumerate()
                .map(|(i, coords)| {
                    ObjectRecord::new((n - 1 - i) as u64, Point::new(coords.clone()).unwrap())
                })
                .collect();
            Problem::new(functions, objects).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sb_always_produces_the_stable_matching(problem in arb_problem()) {
        let mut tree = problem.build_tree(Some(8), 0.0);
        let result = sb(&problem, &mut tree, &SbOptions::default());
        prop_assert!(verify_stable(&problem, &result.assignment).is_ok(),
            "stability violated: {:?}", verify_stable(&problem, &result.assignment));
        // score multiset matches the greedy oracle (pairs can differ on ties)
        let mut got: Vec<u64> = result.assignment.pairs().iter()
            .map(|p| (p.score * 1e9).round() as u64).collect();
        let mut want: Vec<u64> = oracle(&problem).pairs().iter()
            .map(|p| (p.score * 1e9).round() as u64).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// On instances with duplicate object points and duplicate weight vectors
    /// (exact score ties everywhere), every maintenance / best-pair variant —
    /// a tiny Ω that forces TA restarts, the DeltaSky ablation, and the dense
    /// default — must reproduce the oracle's canonical matching exactly: the
    /// deterministic tie-breaks (lowest function index, lowest record id) make
    /// the output independent of iteration order.
    #[test]
    fn tied_instances_match_the_oracle_in_every_variant(problem in arb_tied_problem()) {
        let want = oracle(&problem).canonical();
        let variants = [
            // Ω = 1: the candidate queue restarts constantly
            SbOptions {
                best_pair: BestPairStrategy::ResumableTa { omega_fraction: 1e-9 },
                ..SbOptions::default()
            },
            SbOptions::delta_sky(),
            SbOptions::default(),
        ];
        for opts in variants {
            let mut tree = problem.build_tree(Some(8), 0.0);
            let result = sb(&problem, &mut tree, &opts);
            prop_assert!(verify_stable(&problem, &result.assignment).is_ok(),
                "stability violated by {:?}: {:?}", opts,
                verify_stable(&problem, &result.assignment));
            prop_assert_eq!(result.assignment.canonical(), want.clone(),
                "variant {:?}", opts);
        }
        // the batched disk-list variant shares the tie-break rules too
        let mut tree = problem.build_tree(Some(8), 0.0);
        let alt = sb_alt(&problem, &mut tree, 4);
        prop_assert_eq!(alt.assignment.canonical(), want, "sb_alt");
    }

    #[test]
    fn assignment_size_is_min_of_demand_and_supply(problem in arb_problem()) {
        let assignment = fair_assignment::solve(&problem);
        prop_assert_eq!(assignment.len() as u64, problem.expected_pairs());
    }

    #[test]
    fn scores_never_exceed_the_best_possible(problem in arb_problem()) {
        let assignment = fair_assignment::solve(&problem);
        let max_priority = problem
            .functions()
            .iter()
            .map(|f| f.function.priority())
            .fold(0.0f64, f64::max);
        for pair in assignment.pairs() {
            prop_assert!(pair.score <= max_priority + 1e-9);
            prop_assert!(pair.score >= 0.0);
        }
        // the very first reported pair is the globally best one
        if let Some(first) = assignment.pairs().first() {
            let global_max = problem
                .functions()
                .iter()
                .flat_map(|f| problem.objects().iter().map(move |o| f.function.score(&o.point)))
                .fold(f64::MIN, f64::max);
            prop_assert!((first.score - global_max).abs() < 1e-9);
        }
    }
}
