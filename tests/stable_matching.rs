//! Cross-crate integration tests: every algorithm, every workload shape, one
//! stable matching.

use fair_assignment::datagen::{
    anti_correlated_objects, correlated_objects, independent_objects, nba_like_objects,
    random_capacities, random_priorities, uniform_weight_functions, zillow_like_objects,
};
use fair_assignment::{
    brute_force, chain, oracle, sb, sb_alt, verify_stable, ObjectRecord, PreferenceFunction,
    Problem, SbOptions,
};

fn run_all_and_compare(problem: &Problem) {
    let reference = oracle(problem).canonical();
    // SB (fully optimized)
    let mut tree = problem.build_tree(Some(16), 0.02);
    let sb_result = sb(problem, &mut tree, &SbOptions::default());
    verify_stable(problem, &sb_result.assignment).unwrap();
    assert_eq!(sb_result.assignment.canonical(), reference, "SB");
    // Brute Force
    let mut tree = problem.build_tree(Some(16), 0.02);
    let bf = brute_force(problem, &mut tree);
    verify_stable(problem, &bf.assignment).unwrap();
    assert_eq!(bf.assignment.canonical(), reference, "Brute Force");
    // Chain
    let mut tree = problem.build_tree(Some(16), 0.02);
    let ch = chain(problem, &mut tree);
    verify_stable(problem, &ch.assignment).unwrap();
    assert_eq!(ch.assignment.canonical(), reference, "Chain");
    // SB-alt
    let mut tree = problem.build_tree(Some(16), 0.02);
    let alt = sb_alt(problem, &mut tree, 4);
    verify_stable(problem, &alt.assignment).unwrap();
    assert_eq!(alt.assignment.canonical(), reference, "SB-alt");
}

#[test]
fn all_algorithms_agree_on_every_synthetic_distribution() {
    for (name, objects) in [
        ("independent", independent_objects(400, 3, 1)),
        ("correlated", correlated_objects(400, 3, 2)),
        ("anti-correlated", anti_correlated_objects(400, 3, 3)),
    ] {
        let functions = uniform_weight_functions(60, 3, 4);
        let problem = Problem::from_parts(functions, objects).unwrap();
        run_all_and_compare(&problem);
        println!("{name}: ok");
    }
}

#[test]
fn all_algorithms_agree_on_real_data_stand_ins() {
    let functions = uniform_weight_functions(40, 5, 11);
    for objects in [zillow_like_objects(500, 12), nba_like_objects(500, 13)] {
        let problem = Problem::from_parts(functions.clone(), objects).unwrap();
        run_all_and_compare(&problem);
    }
}

#[test]
fn all_algorithms_agree_when_functions_outnumber_objects() {
    let functions = uniform_weight_functions(120, 3, 21);
    let objects = independent_objects(40, 3, 22);
    let problem = Problem::from_parts(functions, objects).unwrap();
    run_all_and_compare(&problem);
    assert_eq!(oracle(&problem).len(), 40);
}

#[test]
fn all_algorithms_agree_on_capacitated_prioritized_instances() {
    let base = uniform_weight_functions(50, 4, 31);
    let prioritized = random_priorities(&base, 4, 32);
    let f_caps = random_capacities(50, 3, 33);
    let o_caps = random_capacities(200, 2, 34);
    let functions: Vec<PreferenceFunction> = prioritized
        .into_iter()
        .zip(f_caps)
        .enumerate()
        .map(|(i, (f, c))| PreferenceFunction::new(i, f).with_capacity(c))
        .collect();
    let objects: Vec<ObjectRecord> = anti_correlated_objects(200, 4, 35)
        .into_iter()
        .zip(o_caps)
        .map(|((id, p), c)| ObjectRecord {
            id,
            point: p,
            capacity: c,
        })
        .collect();
    let problem = Problem::new(functions, objects).unwrap();
    run_all_and_compare(&problem);
}

#[test]
fn duplicate_objects_and_functions_are_handled() {
    // identical coordinates everywhere: heavy score ties
    let functions: Vec<PreferenceFunction> = (0..10)
        .map(|i| {
            PreferenceFunction::new(
                i,
                fair_assignment::geom::LinearFunction::new(vec![0.5, 0.5]).unwrap(),
            )
        })
        .collect();
    let objects: Vec<ObjectRecord> = (0..10)
        .map(|i| ObjectRecord::new(i, fair_assignment::geom::Point::from_slice(&[0.4, 0.4])))
        .collect();
    let problem = Problem::new(functions, objects).unwrap();
    let mut tree = problem.build_tree(Some(8), 0.0);
    let result = sb(&problem, &mut tree, &SbOptions::default());
    assert_eq!(result.assignment.len(), 10);
    verify_stable(&problem, &result.assignment).unwrap();
    let mut tree = problem.build_tree(Some(8), 0.0);
    let bf = brute_force(&problem, &mut tree);
    assert_eq!(bf.assignment.len(), 10);
    verify_stable(&problem, &bf.assignment).unwrap();
}

#[test]
fn single_function_single_object() {
    let problem = Problem::new(
        vec![PreferenceFunction::new(
            0,
            fair_assignment::geom::LinearFunction::new(vec![1.0, 1.0]).unwrap(),
        )],
        vec![ObjectRecord::new(
            0,
            fair_assignment::geom::Point::from_slice(&[0.3, 0.9]),
        )],
    )
    .unwrap();
    let assignment = fair_assignment::solve(&problem);
    assert_eq!(assignment.len(), 1);
    verify_stable(&problem, &assignment).unwrap();
}

#[test]
fn sb_two_skylines_matches_standard_on_prioritized_workload() {
    let base = uniform_weight_functions(80, 3, 41);
    let prioritized = random_priorities(&base, 8, 42);
    let functions: Vec<PreferenceFunction> = prioritized
        .into_iter()
        .enumerate()
        .map(|(i, f)| PreferenceFunction::new(i, f))
        .collect();
    let objects: Vec<ObjectRecord> = independent_objects(300, 3, 43)
        .into_iter()
        .map(|(id, p)| ObjectRecord {
            id,
            point: p,
            capacity: 1,
        })
        .collect();
    let problem = Problem::new(functions, objects).unwrap();
    let mut tree = problem.build_tree(Some(16), 0.02);
    let standard = sb(&problem, &mut tree, &SbOptions::default());
    let mut tree = problem.build_tree(Some(16), 0.02);
    let twosky = sb(&problem, &mut tree, &SbOptions::two_skylines());
    assert_eq!(
        standard.assignment.canonical(),
        twosky.assignment.canonical()
    );
    verify_stable(&problem, &twosky.assignment).unwrap();
}
