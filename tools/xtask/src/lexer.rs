//! A minimal, trivia-preserving Rust lexer.
//!
//! The linter's rules operate on token streams instead of raw lines, so that
//! tokens inside string literals, character literals and (nested) block
//! comments can never reach a rule. The lexer is deliberately small and
//! hand-rolled — `xtask` stays dependency-free — but it handles the full
//! surface the workspace's sources use:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`, `/**`, `/*!`),
//! * string literals with escapes, byte strings, and raw (byte) strings with
//!   arbitrary `#` fences (`r#"…"#`, `br##"…"##`),
//! * character and byte-character literals vs. lifetimes (`'a'` vs `'a`),
//! * raw identifiers (`r#type`),
//! * numeric literals including type suffixes, `1.5`, and signed exponents
//!   (`1e-5`) — without swallowing range puncts (`0..4`),
//! * identifiers/keywords and single-character punctuation.
//!
//! Every token carries its byte span and the 1-based line of its first byte,
//! and **trivia (whitespace/comments) is kept as tokens**: concatenating the
//! spans of the token stream reconstructs the input byte-for-byte, which the
//! round-trip tests pin on the hardest real files in the tree.

/// Token classification. Punctuation is emitted one character at a time
/// (`::` is two `Punct(':')` tokens); multi-character operators are easy to
/// match as sequences and single characters keep the lexer honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Whitespace,
    LineComment,
    BlockComment,
    Ident,
    Lifetime,
    CharLit,
    StrLit,
    NumLit,
    Punct,
}

/// One token: classification plus byte span plus the 1-based source line the
/// token starts on.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// Whitespace and comments: tokens the rules skip over.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
        )
    }
}

/// Lexes `src` into a contiguous token stream (see module docs).
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        src,
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while lx.pos < src.len() {
        let start = lx.pos;
        let line = lx.line;
        let kind = lx.next_kind();
        debug_assert!(lx.pos > start, "lexer must always make progress");
        out.push(Token {
            kind,
            start,
            end: lx.pos,
            line,
        });
    }
    out
}

struct Lexer<'s> {
    src: &'s str,
    pos: usize,
    line: u32,
}

impl Lexer<'_> {
    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.rest().chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, f: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&f) {
            self.bump();
        }
    }

    fn next_kind(&mut self) -> TokKind {
        let c = self.peek().expect("next_kind called at end of input");
        if c.is_whitespace() {
            self.eat_while(char::is_whitespace);
            return TokKind::Whitespace;
        }
        if self.rest().starts_with("//") {
            self.eat_while(|c| c != '\n');
            return TokKind::LineComment;
        }
        if self.rest().starts_with("/*") {
            self.block_comment();
            return TokKind::BlockComment;
        }
        if c == 'r' || c == 'b' {
            if let Some(kind) = self.prefixed_literal() {
                return kind;
            }
        }
        if c == '"' {
            self.string_lit();
            return TokKind::StrLit;
        }
        if c == '\'' {
            return self.char_or_lifetime();
        }
        if c.is_ascii_digit() {
            self.number();
            return TokKind::NumLit;
        }
        if c == '_' || c.is_alphabetic() {
            self.eat_while(|c| c == '_' || c.is_alphanumeric());
            return TokKind::Ident;
        }
        self.bump();
        TokKind::Punct
    }

    /// Nested block comment; an unterminated comment runs to end of input.
    fn block_comment(&mut self) {
        self.bump();
        self.bump(); // the opening `/*`
        let mut depth = 1usize;
        while depth > 0 {
            if self.rest().starts_with("/*") {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.rest().starts_with("*/") {
                self.bump();
                self.bump();
                depth -= 1;
            } else if self.bump().is_none() {
                return;
            }
        }
    }

    /// Literals introduced by `r` / `b` prefixes, and raw identifiers.
    /// Returns `None` when the `r`/`b` is just the start of a plain
    /// identifier.
    fn prefixed_literal(&mut self) -> Option<TokKind> {
        let rest = self.rest();
        if rest.starts_with("r\"") || rest.starts_with("r#\"") || rest.starts_with("r##") {
            self.bump(); // r
            self.raw_string();
            return Some(TokKind::StrLit);
        }
        if rest.starts_with("br\"") || rest.starts_with("br#") {
            self.bump(); // b
            self.bump(); // r
            self.raw_string();
            return Some(TokKind::StrLit);
        }
        if rest.starts_with("b\"") {
            self.bump(); // b
            self.string_lit();
            return Some(TokKind::StrLit);
        }
        if rest.starts_with("b'") {
            self.bump(); // b
            self.char_body();
            return Some(TokKind::CharLit);
        }
        // raw identifier `r#type`: lex as a single Ident token
        if let Some(after) = rest.strip_prefix("r#") {
            if after
                .chars()
                .next()
                .is_some_and(|c| c == '_' || c.is_alphabetic())
            {
                self.bump(); // r
                self.bump(); // #
                self.eat_while(|c| c == '_' || c.is_alphanumeric());
                return Some(TokKind::Ident);
            }
        }
        None
    }

    /// At the `#`s or `"` of a raw string (the `r`/`br` prefix is consumed).
    fn raw_string(&mut self) {
        let mut fence = 0usize;
        while self.peek() == Some('#') {
            self.bump();
            fence += 1;
        }
        if self.peek() != Some('"') {
            return; // not actually a raw string; tolerate
        }
        self.bump();
        loop {
            match self.bump() {
                None => return,
                Some('"') => {
                    if self
                        .rest()
                        .chars()
                        .take(fence)
                        .filter(|&c| c == '#')
                        .count()
                        == fence
                    {
                        for _ in 0..fence {
                            self.bump();
                        }
                        return;
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// At the opening `"` of a (byte) string literal.
    fn string_lit(&mut self) {
        self.bump();
        loop {
            match self.bump() {
                None | Some('"') => return,
                Some('\\') => {
                    self.bump();
                }
                Some(_) => {}
            }
        }
    }

    /// At the opening `'`: a char literal (`'a'`, `'\n'`, `'\u{7f}'`) or a
    /// lifetime (`'a`, `'static`, `'_`).
    fn char_or_lifetime(&mut self) -> TokKind {
        let c1 = self.peek_at(1);
        if c1 == Some('\\') {
            self.char_body();
            return TokKind::CharLit;
        }
        // `'x'` is a char literal; `'x` (no closing quote right after one
        // char) is a lifetime
        if c1.is_some() && self.peek_at(2) == Some('\'') {
            self.bump();
            self.bump();
            self.bump();
            return TokKind::CharLit;
        }
        self.bump(); // '
        self.eat_while(|c| c == '_' || c.is_alphanumeric());
        TokKind::Lifetime
    }

    /// At the opening `'` of a char literal known to contain an escape (or
    /// called for byte chars): consumes through the closing `'`.
    fn char_body(&mut self) {
        self.bump(); // '
        loop {
            match self.bump() {
                None | Some('\'') => return,
                Some('\\') => {
                    self.bump();
                }
                Some(_) => {}
            }
        }
    }

    /// At an ASCII digit. Consumes suffixed integers (`8usize`, `0xff`),
    /// floats (`1.5`), and signed exponents (`1e-5`) — but not the `.` of a
    /// range or method call (`0..4`, `1.max(2)`).
    fn number(&mut self) {
        let alnum = |c: char| c.is_ascii_alphanumeric() || c == '_';
        self.eat_while(alnum);
        self.signed_exponent();
        if self.peek() == Some('.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            self.eat_while(alnum);
            self.signed_exponent();
        }
    }

    /// `1e-5` / `2.5E+3`: the sign splits the alphanumeric scan in two.
    fn signed_exponent(&mut self) {
        let prev = self.src[..self.pos].chars().next_back();
        if matches!(prev, Some('e') | Some('E'))
            && matches!(self.peek(), Some('+') | Some('-'))
            && self.peek_at(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.bump();
            self.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn assert_round_trip(src: &str) {
        let toks = lex(src);
        let mut rebuilt = String::new();
        let mut expect_start = 0usize;
        for t in &toks {
            assert_eq!(t.start, expect_start, "tokens must be contiguous");
            expect_start = t.end;
            rebuilt.push_str(t.text(src));
        }
        assert_eq!(rebuilt, src, "lex → respan must reconstruct the source");
    }

    #[test]
    fn strings_and_comments_are_single_tokens() {
        let src = "let s = \"a // not a comment\"; /* b /* nested */ c */ x";
        let k = kinds(src);
        assert_eq!(k[3], (TokKind::StrLit, "\"a // not a comment\"".into()));
        assert_eq!(
            lex(src)
                .iter()
                .filter(|t| t.kind == TokKind::BlockComment)
                .count(),
            1,
            "nested block comment lexes as one token"
        );
        assert_round_trip(src);
    }

    #[test]
    fn raw_strings_with_fences() {
        for src in [
            "r\"plain\"",
            "r#\"with \" quote\"#",
            "r##\"fence \"# deep\"##",
            "br#\"bytes\"#",
            "b\"bytes\"",
        ] {
            let k = kinds(src);
            assert_eq!(k.len(), 1, "{src}");
            assert_eq!(k[0], (TokKind::StrLit, src.to_string()));
            assert_round_trip(src);
        }
    }

    #[test]
    fn chars_versus_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = 'x'; let n = '\\n'; let b = b'q'; c }";
        let k = kinds(src);
        assert!(k.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(k.contains(&(TokKind::CharLit, "'x'".into())));
        assert!(k.contains(&(TokKind::CharLit, "'\\n'".into())));
        assert!(k.contains(&(TokKind::CharLit, "b'q'".into())));
        assert_round_trip(src);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let src = "for i in 0..4 { let x = 1.5e-3; let y = 0xff_u32; let z = 7.max(i); }";
        let k = kinds(src);
        assert!(k.contains(&(TokKind::NumLit, "0".into())));
        assert!(k.contains(&(TokKind::NumLit, "4".into())));
        assert!(k.contains(&(TokKind::NumLit, "1.5e-3".into())));
        assert!(k.contains(&(TokKind::NumLit, "0xff_u32".into())));
        assert!(k.contains(&(TokKind::NumLit, "7".into())));
        assert_round_trip(src);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let k = kinds("let r#type = 1;");
        assert_eq!(k[1], (TokKind::Ident, "r#type".into()));
    }

    #[test]
    fn doc_comments_and_attributes() {
        let src = "/// doc\n//! inner\n/** block doc */\n#[derive(Debug)]\nstruct S;";
        let toks = lex(src);
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokKind::LineComment)
                .count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokKind::BlockComment)
                .count(),
            1
        );
        assert_round_trip(src);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline\"\n/* c\nc */ b";
        let toks = lex(src);
        let a = toks.iter().find(|t| t.text(src) == "a").expect("a");
        let b = toks.iter().find(|t| t.text(src) == "b").expect("b");
        let s = toks
            .iter()
            .find(|t| t.kind == TokKind::StrLit)
            .expect("str");
        assert_eq!(a.line, 1);
        assert_eq!(s.line, 2, "multi-line string starts on line 2");
        assert_eq!(b.line, 5, "newlines inside strings/comments are counted");
        assert_round_trip(src);
    }

    #[test]
    fn unterminated_constructs_still_terminate() {
        for src in ["/* never closed", "\"never closed", "r#\"never closed"] {
            assert_round_trip(src);
        }
    }

    /// The property-style round-trip the ISSUE pins: lexing the hardest real
    /// files in the tree and concatenating the token spans reproduces the
    /// files byte-for-byte.
    #[test]
    fn round_trip_on_the_hardest_real_files() {
        let root = crate::workspace_root();
        for rel in [
            "crates/sync/src/shim.rs",
            "crates/service/src/durability.rs",
            "crates/sync/src/model/sched.rs",
            "crates/engine/src/engine.rs",
            "tools/xtask/src/lexer.rs",
        ] {
            let path = root.join(rel);
            let src = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            assert_round_trip(&src);
        }
    }

    /// Golden tokenization: pin the exact significant-token prefix of the two
    /// named hard files, so a lexer regression shows up as a readable diff
    /// rather than a downstream rule misfire.
    #[test]
    fn golden_tokenization_of_shim_and_durability() {
        let root = crate::workspace_root();

        let shim = std::fs::read_to_string(root.join("crates/sync/src/shim.rs")).expect("shim.rs");
        let got: Vec<String> = lex(&shim)
            .iter()
            .filter(|t| !t.is_trivia())
            .take(12)
            .map(|t| format!("{:?}:{}", t.kind, t.text(&shim)))
            .collect();
        assert_eq!(
            got,
            vec![
                "Ident:use",
                "Ident:crate",
                "Punct::",
                "Punct::",
                "Ident:model",
                "Punct::",
                "Punct::",
                "Punct:{",
                "Ident:current",
                "Punct:,",
                "Ident:Scheduler",
                "Punct:}",
            ],
            "crates/sync/src/shim.rs no longer tokenizes as pinned"
        );

        let dur = std::fs::read_to_string(root.join("crates/service/src/durability.rs"))
            .expect("durability.rs");
        let toks = lex(&dur);
        // the file must contain no Lifetime/CharLit misreads of its many
        // `'static` bounds and string literals, and every doc line must be
        // trivia
        assert!(toks.iter().all(|t| t.kind != TokKind::CharLit));
        let first_sig = toks.iter().find(|t| !t.is_trivia()).expect("nonempty");
        assert_eq!(first_sig.text(&dur), "use");
        assert!(first_sig.line > 1, "durability.rs opens with doc comments");
    }
}
