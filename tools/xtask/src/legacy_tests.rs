//! The PR 6 line scanner, preserved verbatim as a test oracle.
//!
//! The lexer-based engine in `rules` replaces this scanner, with one
//! acceptance bar: **zero diffs on the current tree**. The equivalence test
//! below runs both engines over every workspace source file and compares
//! rendered findings — any divergence (a rule that got stricter, looser, or
//! moved a line) fails the build. The only *intended* behavioural change is
//! the retired false-positive class (tokens inside string literals and block
//! comments), demonstrated at the bottom; the real tree contains no such
//! site, so the class is invisible to the equivalence sweep.
//!
//! This module is compiled only for tests and is named `*_tests.rs`, so both
//! engines treat the fixture strings below as test code.

use std::fmt;
use std::path::Path;

const RULE_ORDERING_COMMENT: &str = "ordering-comment";
const RULE_FORBID_UNSAFE: &str = "forbid-unsafe";
const RULE_NO_RAW_SYNC: &str = "no-raw-sync";
const RULE_NO_UNWRAP: &str = "no-unwrap";
const RULE_NO_RAW_FS: &str = "no-raw-fs";
const RULE_KERNEL_NO_ALLOC: &str = "kernel-no-alloc";

const RAW_FS_ALLOWED: [&str; 3] = [
    "crates/storage/src/backend.rs",
    "crates/storage/src/wal.rs",
    "tools/xtask/src/main.rs",
];

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

const RAW_SYNC_TOKENS: [&str; 5] = [
    "std::sync::atomic",
    "std::sync::Mutex",
    "std::sync::Condvar",
    "std::sync::RwLock",
    "std::thread",
];

const KERNEL_ALLOC_PATH_TOKENS: [&str; 3] = ["Vec::new", "vec!", "Box::new"];
const KERNEL_ALLOC_METHOD_TOKENS: [&str; 3] = [".to_vec()", ".collect()", ".to_owned()"];

struct Diagnostic {
    path: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The legacy scanner, byte-for-byte the `lint_file` that shipped in PR 6.
fn lint_file(path: &str, source: &str) -> Vec<Diagnostic> {
    let lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();

    if is_crate_root(path) && !lines.iter().any(|l| l.trim() == "#![forbid(unsafe_code)]") {
        out.push(Diagnostic {
            path: path.to_string(),
            line: 1,
            rule: RULE_FORBID_UNSAFE,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }

    let test_start = if is_test_file(path) {
        Some(0)
    } else {
        lines.iter().position(|l| l.contains("#[cfg(test)]"))
    };

    let service_lib = path_in(path, "crates/service") && !is_test_file(path);
    let kernel_scoped = is_kernel_file(path) && !is_test_file(path);
    let unwrap_scoped =
        (path_in(path, "crates/service") || path_in(path, "crates/engine")) && !is_test_file(path);
    let raw_fs_scoped =
        !RAW_FS_ALLOWED.iter().any(|allowed| path.ends_with(allowed)) && !is_test_file(path);

    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        let in_tests = test_start.is_some_and(|t| idx >= t);
        let code = code_part(raw);

        for variant in ATOMIC_ORDERINGS {
            let needle = format!("Ordering::{variant}");
            if contains_token(code, &needle)
                && !has_adjacent_ordering_comment(&lines, idx)
                && !has_exception(&lines, idx, RULE_ORDERING_COMMENT)
            {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: line_no,
                    rule: RULE_ORDERING_COMMENT,
                    message: format!(
                        "`{needle}` has no adjacent `// ordering:` justification comment"
                    ),
                });
            }
        }

        if in_tests {
            continue;
        }

        if service_lib {
            for token in RAW_SYNC_TOKENS {
                if code.contains(token) && !has_exception(&lines, idx, RULE_NO_RAW_SYNC) {
                    out.push(Diagnostic {
                        path: path.to_string(),
                        line: line_no,
                        rule: RULE_NO_RAW_SYNC,
                        message: format!(
                            "`{token}` in crates/service library code — use the `pref_sync` shim"
                        ),
                    });
                }
            }
        }

        if raw_fs_scoped
            && contains_token(code, "std::fs")
            && !has_exception(&lines, idx, RULE_NO_RAW_FS)
        {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: RULE_NO_RAW_FS,
                message: "`std::fs` outside the storage backend/WAL — go through \
                          `pref_storage`, or annotate a deliberate non-durable write with \
                          `// lint: allow(no-raw-fs) -- <reason>`"
                    .to_string(),
            });
        }

        if kernel_scoped {
            let path_hit = KERNEL_ALLOC_PATH_TOKENS
                .iter()
                .find(|t| contains_token(code, t));
            let method_hit = KERNEL_ALLOC_METHOD_TOKENS
                .iter()
                .find(|t| code.contains(*t));
            if let Some(token) = path_hit.or(method_hit) {
                if !has_exception(&lines, idx, RULE_KERNEL_NO_ALLOC) {
                    out.push(Diagnostic {
                        path: path.to_string(),
                        line: line_no,
                        rule: RULE_KERNEL_NO_ALLOC,
                        message: format!(
                            "`{token}` in kernel hot-path code — reuse caller-owned scratch, or \
                             annotate a setup-path allocation with \
                             `// lint: allow(kernel-no-alloc) -- <reason>`"
                        ),
                    });
                }
            }
        }

        if unwrap_scoped {
            for pattern in [".unwrap()", ".expect("] {
                if code.contains(pattern) && !has_exception(&lines, idx, RULE_NO_UNWRAP) {
                    out.push(Diagnostic {
                        path: path.to_string(),
                        line: line_no,
                        rule: RULE_NO_UNWRAP,
                        message: format!(
                            "`{pattern}` in library code — propagate the error or annotate the \
                             invariant with `// lint: allow(no-unwrap) -- <reason>`"
                        ),
                    });
                }
            }
        }
    }
    out
}

fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || (path.contains("src/bin/") && path.ends_with(".rs"))
}

fn is_kernel_file(path: &str) -> bool {
    let stem = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    stem == "kernel" || stem == "kernels" || stem.ends_with("_kernel") || stem.ends_with("_kernels")
}

fn is_test_file(path: &str) -> bool {
    let stem = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    stem == "tests" || stem.ends_with("_tests")
}

fn path_in(path: &str, prefix: &str) -> bool {
    path.starts_with(prefix) || path.contains(&format!("/{prefix}/"))
}

fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn is_comment_line(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("#[")
}

fn contains_token(code: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before = code[..at].chars().next_back();
        if !before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return true;
        }
        start = at + needle.len();
    }
    false
}

fn has_adjacent_ordering_comment(lines: &[&str], idx: usize) -> bool {
    if lines[idx].contains("// ordering:") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        if !is_comment_line(lines[i]) {
            return false;
        }
        if lines[i].contains("// ordering:") {
            return true;
        }
    }
    false
}

fn has_exception(lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("// lint: allow({rule})");
    lines[idx].contains(&marker) || (idx > 0 && lines[idx - 1].contains(&marker))
}

// ---- the equivalence sweep ------------------------------------------------

fn legacy_findings(path: &str, source: &str) -> Vec<String> {
    lint_file(path, source)
        .into_iter()
        .map(|d| d.to_string())
        .collect()
}

fn lexer_findings(path: &str, source: &str) -> Vec<String> {
    let cx = crate::model::FileCtx::new(path, source);
    crate::rules::classic(&cx)
        .into_iter()
        .map(|d| d.to_string())
        .collect()
}

#[test]
fn lexer_engine_matches_the_line_scanner_on_every_workspace_file() {
    let root = crate::workspace_root();
    let mut files = Vec::new();
    for member_dir in ["crates", "tools"] {
        crate::collect_rs_files(&root.join(member_dir), &mut files);
    }
    files.sort();
    assert!(files.len() > 20, "workspace walk found {}", files.len());

    let mut diffs = Vec::new();
    for path in &files {
        let source = std::fs::read_to_string(path).unwrap();
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .display()
            .to_string();
        let mut legacy = legacy_findings(&rel, &source);
        let mut lexer = lexer_findings(&rel, &source);
        legacy.sort();
        lexer.sort();
        if legacy != lexer {
            diffs.push(format!(
                "{rel}:\n  line scanner: {legacy:#?}\n  lexer engine: {lexer:#?}"
            ));
        }
    }
    assert!(
        diffs.is_empty(),
        "the engines disagree on {} file(s):\n{}",
        diffs.len(),
        diffs.join("\n")
    );
}

#[test]
fn the_lexer_retires_the_string_literal_false_positive() {
    // lint: allow(ordering-comment) -- fixture: the token lives in a string
    let in_string = "fn f() -> &'static str { \"Ordering::Relaxed\" }\n";
    let legacy = legacy_findings("crates/x/src/m.rs", in_string);
    assert_eq!(legacy.len(), 1, "the line scanner false-positives here");
    assert!(legacy[0].contains("ordering-comment"), "{}", legacy[0]);
    assert!(
        lexer_findings("crates/x/src/m.rs", in_string).is_empty(),
        "the lexer engine must see a string literal, not a token"
    );
}

#[test]
fn the_lexer_retires_the_block_comment_false_positive() {
    let in_comment = "/* reads via std::fs once */\nfn f() {}\n";
    let legacy = legacy_findings("crates/service/src/m.rs", in_comment);
    assert_eq!(legacy.len(), 1, "the line scanner false-positives here");
    assert!(legacy[0].contains("no-raw-fs"), "{}", legacy[0]);
    assert!(
        lexer_findings("crates/service/src/m.rs", in_comment).is_empty(),
        "the lexer engine must see a comment, not a token"
    );
}
