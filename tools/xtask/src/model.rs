//! A lightweight item model built on the token stream.
//!
//! This is *not* a Rust parser: it recognizes exactly the item shapes the
//! analyses need — `struct` definitions with their typed fields, `fn` items
//! with their signatures and body spans, the `impl` block each method belongs
//! to, and `#[cfg(test)]` attribute positions — and skips everything else by
//! balanced-delimiter scanning. Bodies are kept as raw significant-token
//! ranges; the rule passes walk them themselves.
//!
//! Types are recorded as normalized text (`Option<ShardDurability>`,
//! `Mutex<ProgressState>`): string matching against rendered type text is the
//! right fidelity for a zero-dependency linter, and every consumer documents
//! the conservative choice it makes when a type fails to resolve.

use crate::lexer::{lex, TokKind, Token};

/// A lexed file plus its significant-token view and parsed item model.
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated (used for rule scoping).
    pub path: String,
    pub src: String,
    /// Raw source lines, for the line-oriented exception/justification
    /// comment grammar (comments are trivia in the token stream).
    pub lines: Vec<String>,
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-trivia tokens, in order.
    pub sig: Vec<usize>,
    pub model: FileModel,
}

#[derive(Default)]
pub struct FileModel {
    pub structs: Vec<StructDef>,
    pub fns: Vec<FnItem>,
    /// Line of the first real `#[cfg(test)]` attribute, if any. Library-code
    /// rules stop there: in this workspace test modules are trailing, so the
    /// suffix region is exact, and a misplaced test module would re-expose
    /// library code to the stricter rules, never the reverse.
    pub test_from_line: Option<u32>,
}

pub struct StructDef {
    pub name: String,
    pub generics: Vec<String>,
    pub fields: Vec<Field>,
}

pub struct Field {
    pub name: String,
    pub ty: String,
}

pub struct FnItem {
    pub name: String,
    /// The self type of the enclosing `impl` block (`impl S` / `impl T for
    /// S` both record `S`), if any.
    pub impl_type: Option<String>,
    /// Type parameters in scope: the fn's own plus the enclosing impl's.
    pub generics: Vec<String>,
    pub params: Vec<Param>,
    pub ret: String,
    /// Significant-token indices of the body's `{` and matching `}`.
    pub body: Option<(usize, usize)>,
    /// Inside a `#[cfg(test)]` item or after the file's first one.
    pub in_test: bool,
}

pub struct Param {
    pub name: String,
    pub ty: String,
}

impl FileCtx {
    pub fn new(path: &str, src: &str) -> FileCtx {
        let tokens = lex(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_trivia())
            .map(|(i, _)| i)
            .collect();
        let mut cx = FileCtx {
            path: path.to_string(),
            src: src.to_string(),
            lines: src.lines().map(str::to_string).collect(),
            tokens,
            sig,
            model: FileModel::default(),
        };
        cx.model = Parser::parse(&cx);
        cx
    }

    /// Text of significant token `si` (an index into `self.sig`).
    pub fn st(&self, si: usize) -> &str {
        self.tokens[self.sig[si]].text(&self.src)
    }

    pub fn skind(&self, si: usize) -> TokKind {
        self.tokens[self.sig[si]].kind
    }

    pub fn sline(&self, si: usize) -> u32 {
        self.tokens[self.sig[si]].line
    }

    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }

    pub fn is_ident(&self, si: usize, text: &str) -> bool {
        si < self.sig.len() && self.skind(si) == TokKind::Ident && self.st(si) == text
    }

    pub fn is_punct(&self, si: usize, ch: char) -> bool {
        si < self.sig.len() && self.skind(si) == TokKind::Punct && self.st(si).starts_with(ch)
    }

    /// Renders significant tokens `[from, to)` as normalized type-ish text:
    /// token texts concatenated, with a space kept between adjacent
    /// word-like tokens (`&mut ShardDurability`, `Mutex<ProgressState>`).
    pub fn render(&self, from: usize, to: usize) -> String {
        let mut out = String::new();
        for si in from..to.min(self.sig.len()) {
            let text = self.st(si);
            let starts_wordy = text
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if starts_wordy
                && out
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                out.push(' ');
            }
            out.push_str(text);
        }
        out
    }

    /// Index of the significant token matching the opening delimiter at
    /// `open` (handles `()`, `[]`, `{}`); `sig_len()` when unclosed.
    pub fn matching(&self, open: usize) -> usize {
        let (o, c) = match self.st(open) {
            "(" => ('(', ')'),
            "[" => ('[', ']'),
            "{" => ('{', '}'),
            _ => return open,
        };
        let mut depth = 0usize;
        for si in open..self.sig_len() {
            if self.is_punct(si, o) {
                depth += 1;
            } else if self.is_punct(si, c) {
                depth -= 1;
                if depth == 0 {
                    return si;
                }
            }
        }
        self.sig_len()
    }

    /// True when `line` (1-based) is in this file's test region.
    pub fn in_tests(&self, line: u32) -> bool {
        self.model.test_from_line.is_some_and(|t| line >= t)
    }
}

struct Parser<'c> {
    cx: &'c FileCtx,
    i: usize,
    model: FileModel,
}

/// Item-position context carried into nested `mod`/`impl` blocks.
#[derive(Clone, Default)]
struct ItemCtx {
    impl_type: Option<String>,
    impl_generics: Vec<String>,
    in_test: bool,
}

/// Flags extracted from one run of outer attributes.
#[derive(Default, Clone, Copy)]
struct Attrs {
    cfg_test: bool,
    line: u32,
}

impl<'c> Parser<'c> {
    fn parse(cx: &'c FileCtx) -> FileModel {
        let mut p = Parser {
            cx,
            i: 0,
            model: FileModel::default(),
        };
        p.items(cx.sig_len(), &ItemCtx::default());
        p.model
    }

    fn at(&self, text: &str) -> bool {
        self.cx.is_ident(self.i, text)
    }

    fn at_punct(&self, ch: char) -> bool {
        self.cx.is_punct(self.i, ch)
    }

    /// Parses items until significant index `end` (exclusive).
    fn items(&mut self, end: usize, ctx: &ItemCtx) {
        while self.i < end {
            let attrs = self.attrs(end);
            if self.i >= end {
                break;
            }
            if self.at("pub") {
                self.i += 1;
                if self.at_punct('(') {
                    self.i = self.cx.matching(self.i) + 1;
                }
                continue;
            }
            if self.at("unsafe") || self.at("async") || self.at("default") {
                self.i += 1;
                continue;
            }
            if self.at("extern") {
                self.i += 1;
                if self.i < end && self.cx.skind(self.i) == TokKind::StrLit {
                    self.i += 1;
                }
                continue;
            }
            if self.at("const") && !self.cx.is_ident(self.i + 1, "fn") {
                self.skip_to_semi(end);
                continue;
            }
            if self.at("const") {
                self.i += 1; // `const fn`
                continue;
            }
            if self.at("use") || self.at("static") || self.at("type") {
                self.skip_to_semi(end);
                continue;
            }
            if self.at("mod") {
                self.item_mod(end, ctx, attrs);
                continue;
            }
            if self.at("impl") {
                self.item_impl(end, ctx, attrs);
                continue;
            }
            if self.at("struct") {
                self.item_struct(end, ctx, attrs);
                continue;
            }
            if self.at("enum") || self.at("trait") || self.at("union") {
                self.note_cfg_test(attrs);
                self.i += 1;
                while self.i < end && !self.at_punct('{') && !self.at_punct(';') {
                    if self.at_punct('<') {
                        self.skip_angles(end);
                        continue;
                    }
                    self.i += 1;
                }
                if self.at_punct('{') {
                    self.i = self.cx.matching(self.i) + 1;
                } else {
                    self.i += 1;
                }
                continue;
            }
            if self.at("fn") {
                self.item_fn(end, ctx, attrs);
                continue;
            }
            if self.at_punct('{') {
                self.i = self.cx.matching(self.i) + 1;
                continue;
            }
            self.i += 1;
        }
    }

    /// Consumes a run of outer/inner attributes; returns the outer flags.
    fn attrs(&mut self, end: usize) -> Attrs {
        let mut out = Attrs::default();
        while self.i < end && self.at_punct('#') {
            let mut j = self.i + 1;
            let inner = self.cx.is_punct(j, '!');
            if inner {
                j += 1;
            }
            if !self.cx.is_punct(j, '[') {
                self.i += 1;
                continue;
            }
            let close = self.cx.matching(j);
            if !inner && self.attr_is_cfg_test(j + 1, close) {
                out.cfg_test = true;
                out.line = self.cx.sline(self.i);
            }
            self.i = close + 1;
        }
        out
    }

    /// `cfg` `(` … `test` … `)` within the attribute's brackets.
    fn attr_is_cfg_test(&self, from: usize, to: usize) -> bool {
        (from..to).any(|si| self.cx.is_ident(si, "cfg") && self.cx.is_punct(si + 1, '('))
            && (from..to).any(|si| self.cx.is_ident(si, "test"))
    }

    fn note_cfg_test(&mut self, attrs: Attrs) {
        if attrs.cfg_test {
            let line = attrs.line;
            let cur = self.model.test_from_line.get_or_insert(line);
            *cur = (*cur).min(line);
        }
    }

    fn skip_to_semi(&mut self, end: usize) {
        while self.i < end {
            if self.at_punct('{') || self.at_punct('(') || self.at_punct('[') {
                self.i = self.cx.matching(self.i) + 1;
                continue;
            }
            if self.at_punct(';') {
                self.i += 1;
                return;
            }
            self.i += 1;
        }
    }

    /// Balanced `<…>` skip with `->`-arrow awareness.
    fn skip_angles(&mut self, end: usize) {
        let mut depth = 0usize;
        while self.i < end {
            if self.at_punct('<') {
                depth += 1;
            } else if self.at_punct('>') {
                let arrow = self.i > 0 && self.cx.is_punct(self.i - 1, '-');
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        self.i += 1;
                        return;
                    }
                }
            } else if self.at_punct('{') || self.at_punct(';') {
                return; // safety: never scan past an item boundary
            }
            self.i += 1;
        }
    }

    /// At `<`: collects type-parameter names (skipping lifetimes and const
    /// parameter bounds) and leaves the cursor after the matching `>`.
    fn generic_params(&mut self, end: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut depth = 0usize;
        let mut at_param = false;
        while self.i < end {
            if self.at_punct('<') {
                depth += 1;
                at_param = depth == 1;
            } else if self.at_punct('>') && !(self.i > 0 && self.cx.is_punct(self.i - 1, '-')) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return out;
                }
            } else if depth == 1 {
                if self.at_punct(',') {
                    at_param = true;
                } else if at_param {
                    if self.at("const") {
                        self.i += 1;
                        if self.cx.skind(self.i) == TokKind::Ident {
                            out.push(self.cx.st(self.i).to_string());
                        }
                    } else if self.cx.skind(self.i) == TokKind::Ident {
                        out.push(self.cx.st(self.i).to_string());
                    }
                    at_param = false;
                }
            }
            self.i += 1;
        }
        out
    }

    fn item_mod(&mut self, _end: usize, ctx: &ItemCtx, attrs: Attrs) {
        self.note_cfg_test(attrs);
        self.i += 1; // mod
        if self.cx.skind(self.i) == TokKind::Ident {
            self.i += 1;
        }
        if self.at_punct(';') {
            self.i += 1;
            return;
        }
        if self.at_punct('{') {
            let close = self.cx.matching(self.i);
            let inner = ItemCtx {
                impl_type: None,
                impl_generics: Vec::new(),
                in_test: ctx.in_test || attrs.cfg_test,
            };
            self.i += 1;
            self.items(close, &inner);
            self.i = close + 1;
        }
    }

    fn item_impl(&mut self, end: usize, ctx: &ItemCtx, attrs: Attrs) {
        self.note_cfg_test(attrs);
        self.i += 1; // impl
        let generics = if self.at_punct('<') {
            self.generic_params(end)
        } else {
            Vec::new()
        };
        // `impl [Trait for] Type { … }`: the self type is the path after
        // `for` when present, else the first path. Record its last segment.
        let mut first_seg: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        while self.i < end && !self.at_punct('{') {
            if self.at("for") {
                saw_for = true;
                self.i += 1;
                continue;
            }
            if self.at("where") {
                while self.i < end && !self.at_punct('{') {
                    self.i += 1;
                }
                break;
            }
            if self.at_punct('<') {
                self.skip_angles(end);
                continue;
            }
            if self.cx.skind(self.i) == TokKind::Ident {
                let name = self.cx.st(self.i).to_string();
                if saw_for {
                    after_for = Some(name); // last path segment wins
                } else {
                    first_seg = Some(name);
                }
            }
            self.i += 1;
        }
        let impl_type = after_for.or(first_seg);
        if self.at_punct('{') {
            let close = self.cx.matching(self.i);
            let inner = ItemCtx {
                impl_type,
                impl_generics: generics,
                in_test: ctx.in_test || attrs.cfg_test,
            };
            self.i += 1;
            self.items(close, &inner);
            self.i = close + 1;
        }
    }

    fn item_struct(&mut self, end: usize, ctx: &ItemCtx, attrs: Attrs) {
        self.note_cfg_test(attrs);
        self.i += 1; // struct
        let name = if self.cx.skind(self.i) == TokKind::Ident {
            let n = self.cx.st(self.i).to_string();
            self.i += 1;
            n
        } else {
            return;
        };
        let generics = if self.at_punct('<') {
            self.generic_params(end)
        } else {
            Vec::new()
        };
        if self.at("where") {
            while self.i < end && !self.at_punct('{') && !self.at_punct(';') {
                self.i += 1;
            }
        }
        let mut fields = Vec::new();
        if self.at_punct('(') {
            // tuple struct: no named fields to record
            self.i = self.cx.matching(self.i) + 1;
            if self.at_punct(';') {
                self.i += 1;
            }
        } else if self.at_punct('{') {
            let close = self.cx.matching(self.i);
            self.i += 1;
            while self.i < close {
                self.attrs(close);
                if self.at("pub") {
                    self.i += 1;
                    if self.at_punct('(') {
                        self.i = self.cx.matching(self.i) + 1;
                    }
                }
                if self.cx.skind(self.i) == TokKind::Ident && self.cx.is_punct(self.i + 1, ':') {
                    let fname = self.cx.st(self.i).to_string();
                    self.i += 2;
                    let ty_start = self.i;
                    let mut depth = 0usize;
                    while self.i < close {
                        if self.at_punct('<') {
                            depth += 1;
                        } else if self.at_punct('>')
                            && !(self.i > 0 && self.cx.is_punct(self.i - 1, '-'))
                        {
                            depth = depth.saturating_sub(1);
                        } else if self.at_punct('(') || self.at_punct('[') || self.at_punct('{') {
                            self.i = self.cx.matching(self.i);
                        } else if self.at_punct(',') && depth == 0 {
                            break;
                        }
                        self.i += 1;
                    }
                    fields.push(Field {
                        name: fname,
                        ty: self.cx.render(ty_start, self.i),
                    });
                    if self.at_punct(',') {
                        self.i += 1;
                    }
                } else {
                    self.i += 1;
                }
            }
            self.i = close + 1;
        } else if self.at_punct(';') {
            self.i += 1;
        }
        let _ = ctx;
        self.model.structs.push(StructDef {
            name,
            generics,
            fields,
        });
    }

    fn item_fn(&mut self, end: usize, ctx: &ItemCtx, attrs: Attrs) {
        self.note_cfg_test(attrs);
        let fn_line = self.cx.sline(self.i);
        self.i += 1; // fn
        let name = if self.cx.skind(self.i) == TokKind::Ident {
            let n = self.cx.st(self.i).to_string();
            self.i += 1;
            n
        } else {
            return;
        };
        let mut generics = ctx.impl_generics.clone();
        if self.at_punct('<') {
            generics.extend(self.generic_params(end));
        }
        if !self.at_punct('(') {
            return;
        }
        let params_close = self.cx.matching(self.i);
        let params = self.params(self.i + 1, params_close, ctx);
        self.i = params_close + 1;
        let mut ret = String::new();
        if self.at_punct('-') && self.cx.is_punct(self.i + 1, '>') {
            self.i += 2;
            let ret_start = self.i;
            while self.i < end && !self.at_punct('{') && !self.at_punct(';') && !self.at("where") {
                if self.at_punct('<') {
                    self.skip_angles(end);
                    continue;
                }
                self.i += 1;
            }
            ret = self.cx.render(ret_start, self.i);
        }
        if self.at("where") {
            while self.i < end && !self.at_punct('{') && !self.at_punct(';') {
                self.i += 1;
            }
        }
        let body = if self.at_punct('{') {
            let close = self.cx.matching(self.i);
            let span = (self.i, close);
            self.i = close + 1;
            Some(span)
        } else {
            if self.at_punct(';') {
                self.i += 1;
            }
            None
        };
        self.model.fns.push(FnItem {
            name,
            impl_type: ctx.impl_type.clone(),
            generics,
            params,
            ret,
            body,
            in_test: ctx.in_test
                || attrs.cfg_test
                || self.model.test_from_line.is_some_and(|t| fn_line >= t),
        });
    }

    /// Parses the comma-separated parameter list in `[from, to)`.
    fn params(&mut self, from: usize, to: usize, ctx: &ItemCtx) -> Vec<Param> {
        let mut out = Vec::new();
        let mut start = from;
        let mut depth = 0usize;
        let mut si = from;
        while si <= to {
            let at_end = si == to;
            let splits = at_end
                || (depth == 0
                    && self.cx.is_punct(si, ',')
                    && !self.cx.is_punct(si.wrapping_sub(1), '<'));
            if !at_end {
                if self.cx.is_punct(si, '<') {
                    depth += 1;
                } else if self.cx.is_punct(si, '>') && !self.cx.is_punct(si.wrapping_sub(1), '-') {
                    depth = depth.saturating_sub(1);
                } else if self.cx.is_punct(si, '(')
                    || self.cx.is_punct(si, '[')
                    || self.cx.is_punct(si, '{')
                {
                    si = self.cx.matching(si);
                }
            }
            if splits {
                if start < si {
                    out.extend(self.one_param(start, si, ctx));
                }
                start = si + 1;
            }
            si += 1;
        }
        out
    }

    fn one_param(&self, from: usize, to: usize, ctx: &ItemCtx) -> Option<Param> {
        // a `self` receiver: `self`, `&self`, `&mut self`, `&'a self`
        if (from..to).any(|si| self.cx.is_ident(si, "self"))
            && !(from..to).any(|si| self.cx.is_punct(si, ':'))
        {
            return Some(Param {
                name: "self".to_string(),
                ty: ctx.impl_type.clone().unwrap_or_else(|| "Self".to_string()),
            });
        }
        let colon = (from..to).find(|&si| self.cx.is_punct(si, ':'))?;
        // simple ident patterns only; `(a, b): (X, Y)` records an empty name
        let mut name = String::new();
        let mut pat = from;
        if self.cx.is_ident(pat, "mut") {
            pat += 1;
        }
        if pat + 1 == colon && self.cx.skind(pat) == TokKind::Ident {
            name = self.cx.st(pat).to_string();
        }
        Some(Param {
            name,
            ty: self.cx.render(colon + 1, to),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::new("crates/x/src/m.rs", src)
    }

    #[test]
    fn structs_record_named_fields_with_types() {
        let cx = ctx("pub struct Progress {\n    pub state: Mutex<ProgressState>,\n    advanced: Condvar,\n}\n");
        let s = &cx.model.structs[0];
        assert_eq!(s.name, "Progress");
        assert_eq!(s.fields[0].name, "state");
        assert_eq!(s.fields[0].ty, "Mutex<ProgressState>");
        assert_eq!(s.fields[1].ty, "Condvar");
    }

    #[test]
    fn fns_record_impl_type_params_and_bodies() {
        let cx = ctx(
            "impl<T> Shard<T> {\n    fn push(&self, item: Option<ShardDurability>) -> Result<(), E> { work(item) }\n}\n\
             fn free(a: &Mutex<EngineSlot>, max_batch: usize) {}\n",
        );
        let push = &cx.model.fns[0];
        assert_eq!(push.name, "push");
        assert_eq!(push.impl_type.as_deref(), Some("Shard"));
        assert_eq!(push.generics, vec!["T".to_string()]);
        assert_eq!(push.params[0].name, "self");
        assert_eq!(push.params[1].ty, "Option<ShardDurability>");
        assert!(push.body.is_some());
        let free = &cx.model.fns[1];
        assert_eq!(free.impl_type, None);
        assert_eq!(free.params[0].ty, "&Mutex<EngineSlot>");
        assert_eq!(free.params[1].name, "max_batch");
    }

    #[test]
    fn trait_impls_record_the_self_type_after_for() {
        let cx = ctx("impl Drop for ExitNotice {\n    fn drop(&mut self) {}\n}\n");
        assert_eq!(cx.model.fns[0].impl_type.as_deref(), Some("ExitNotice"));
    }

    #[test]
    fn cfg_test_marks_the_suffix_region() {
        let cx = ctx("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n");
        assert_eq!(cx.model.test_from_line, Some(2));
        assert!(!cx.model.fns[0].in_test);
        assert!(cx.model.fns[1].in_test);
        assert!(!cx.in_tests(1));
        assert!(cx.in_tests(2));
    }

    #[test]
    fn cfg_test_in_strings_or_comments_is_invisible() {
        let cx =
            ctx("// #[cfg(test)] in a comment\nconst S: &str = \"#[cfg(test)]\";\nfn lib() {}\n");
        assert_eq!(cx.model.test_from_line, None);
        assert!(!cx.model.fns[0].in_test);
    }

    #[test]
    fn return_types_and_angle_arrows_parse() {
        let cx = ctx("fn lock<'a>(&'a self) -> Guard<'a> { self.state.lock() }\n\
                      fn apply(f: impl Fn(usize) -> bool) -> bool { f(1) }\n");
        assert_eq!(cx.model.fns[0].ret, "Guard<'a>");
        assert_eq!(cx.model.fns[1].ret, "bool");
    }
}
