//! The lint rules, re-ported onto the token stream.
//!
//! The six original rules (`forbid-unsafe`, `ordering-comment`,
//! `no-raw-sync`, `no-unwrap`, `no-raw-fs`, `kernel-no-alloc`) keep their
//! exact scoping, messages and exception grammar from the line-scanner era —
//! the equivalence test in `legacy_tests` pins zero diffs over the real tree
//! — but now match *significant tokens*, so occurrences inside string
//! literals and (nested) block comments can no longer produce findings.
//!
//! New token-level rules ride on the same engine:
//!
//! * **hash-iter** — no iteration over `HashMap`/`HashSet` contents in
//!   library code of the crates that feed canonical output or replay
//!   (`crates/core`, `crates/engine`, `crates/service`, `crates/topk`,
//!   `crates/skyline`). Keyed lookup is fine; iteration order is not
//!   deterministic across processes, which silently diverges replicas under
//!   deterministic log replay (ROADMAP item 2). Escape hatch:
//!   `// lint: allow(hash-iter) -- <sortedness justification>`.
//! * **durability-order** — in `crates/service/src/shard.rs` and
//!   `durability.rs`, a function that receives the shard's durability handle
//!   and publishes a snapshot must have its WAL append (`log_batch`) and
//!   fsync (`sync_for_ack`) call sites precede the first `publish` call:
//!   acknowledged-but-unlogged state must be unrepresentable in the source,
//!   not just unobserved by the fault-injection battery.
//! * **no-raw-net** — sockets are `crates/net`'s job: no `std::net` outside
//!   it, so every byte that crosses a process boundary goes through the one
//!   length-prefixed, checksummed framing layer (and its admission control).
//!   Plain address *types* (`SocketAddr` & co.) are fine anywhere — they are
//!   how callers name a `pref_net` endpoint. Escape hatch:
//!   `// lint: allow(no-raw-net) -- <reason>`.
//! * `crates/net` itself is held to the `no-raw-sync` and `no-unwrap`
//!   discipline of `crates/service`, as a separate pass (`net_discipline`)
//!   so `classic` stays byte-equivalent to the pre-`crates/net` line
//!   scanner the equivalence sweep pins.
//!
//! The exception/justification comment grammar stays line-oriented on
//! purpose (comments are trivia in the token stream): an annotation applies
//! on its own line or the line above the finding, exactly as before.

use crate::model::{FileCtx, FnItem};
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

pub const RULE_FORBID_UNSAFE: &str = "forbid-unsafe";
pub const RULE_ORDERING_COMMENT: &str = "ordering-comment";
pub const RULE_NO_RAW_SYNC: &str = "no-raw-sync";
pub const RULE_NO_UNWRAP: &str = "no-unwrap";
pub const RULE_NO_RAW_FS: &str = "no-raw-fs";
pub const RULE_KERNEL_NO_ALLOC: &str = "kernel-no-alloc";
pub const RULE_HASH_ITER: &str = "hash-iter";
pub const RULE_DURABILITY_ORDER: &str = "durability-order";
pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_NO_RAW_NET: &str = "no-raw-net";

/// Files allowed to touch `std::fs` wholesale: the storage backends and the
/// WAL are the durable layer, and the linter itself must read the tree.
const RAW_FS_ALLOWED: [&str; 3] = [
    "crates/storage/src/backend.rs",
    "crates/storage/src/wal.rs",
    "tools/xtask/src/main.rs",
];

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Raw primitives `crates/service` must route through the shim, as
/// (diagnostic name, path segments). `std::sync::Arc` is deliberately absent
/// (it has no blocking or ordering behaviour for the model scheduler to
/// interpose on).
const RAW_SYNC_PATHS: [(&str, &[&str]); 5] = [
    ("std::sync::atomic", &["std", "sync", "atomic"]),
    ("std::sync::Mutex", &["std", "sync", "Mutex"]),
    ("std::sync::Condvar", &["std", "sync", "Condvar"]),
    ("std::sync::RwLock", &["std", "sync", "RwLock"]),
    ("std::thread", &["std", "thread"]),
];

/// Crates whose library code feeds canonical output or deterministic replay:
/// the hash-iteration rule's scope.
const HASH_ITER_SCOPES: [&str; 5] = [
    "crates/core",
    "crates/engine",
    "crates/service",
    "crates/topk",
    "crates/skyline",
];

/// Iteration methods whose order depends on the hasher.
const HASH_ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// `std::net` items that are plain address/port values with no socket
/// behaviour: allowed everywhere, because they are the vocabulary callers
/// use to talk to `pref_net`'s own API.
const RAW_NET_ADDR_TYPES: [&str; 8] = [
    "SocketAddr",
    "SocketAddrV4",
    "SocketAddrV6",
    "IpAddr",
    "Ipv4Addr",
    "Ipv6Addr",
    "AddrParseError",
    "ToSocketAddrs",
];

/// One linter finding, rendered `path:line: rule: message`.
pub struct Diagnostic {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// All per-file rules: the six classic ones plus `hash-iter` and
/// `durability-order`. (`lock-order` is whole-program; see `lockorder`.)
pub fn lint_file_ctx(cx: &FileCtx) -> Vec<Diagnostic> {
    let mut out = classic(cx);
    out.extend(hash_iter(cx));
    out.extend(durability_order(cx));
    out.extend(raw_net(cx));
    out.extend(net_discipline(cx));
    out
}

/// The six pre-existing rules on the token engine, with line-scanner-era
/// scoping and messages.
pub fn classic(cx: &FileCtx) -> Vec<Diagnostic> {
    let path = &cx.path;
    let mut out = Vec::new();

    if is_crate_root(path) && !has_forbid_unsafe(cx) {
        out.push(diag(
            path,
            1,
            RULE_FORBID_UNSAFE,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }

    let service_lib = path_in(path, "crates/service") && !is_test_file(path);
    let kernel_scoped = is_kernel_file(path) && !is_test_file(path);
    let unwrap_scoped =
        (path_in(path, "crates/service") || path_in(path, "crates/engine")) && !is_test_file(path);
    let raw_fs_scoped =
        !RAW_FS_ALLOWED.iter().any(|allowed| path.ends_with(allowed)) && !is_test_file(path);
    let in_tests = |line: u32| is_test_file(path) || cx.in_tests(line);

    // ordering-comment applies everywhere, tests included: a memory ordering
    // needs a justification no matter where it appears
    let mut seen_ordering: BTreeSet<(u32, &str)> = BTreeSet::new();
    for si in 0..cx.sig_len() {
        if !cx.is_ident(si, "Ordering") || !is_path_sep(cx, si + 1) {
            continue;
        }
        let Some(variant) = ATOMIC_ORDERINGS.iter().find(|v| cx.is_ident(si + 3, v)) else {
            continue;
        };
        let line = cx.sline(si);
        if !seen_ordering.insert((line, variant)) {
            continue;
        }
        if !has_adjacent_ordering_comment(&cx.lines, line)
            && !has_exception(&cx.lines, line, RULE_ORDERING_COMMENT)
        {
            out.push(diag(
                path,
                line,
                RULE_ORDERING_COMMENT,
                format!(
                    "`Ordering::{variant}` has no adjacent `// ordering:` justification comment"
                ),
            ));
        }
    }

    if service_lib {
        let mut seen: BTreeSet<(u32, &str)> = BTreeSet::new();
        for si in 0..cx.sig_len() {
            for (name, segs) in RAW_SYNC_PATHS {
                if !matches_path(cx, si, segs) {
                    continue;
                }
                let line = cx.sline(si);
                if in_tests(line) || !seen.insert((line, name)) {
                    continue;
                }
                if !has_exception(&cx.lines, line, RULE_NO_RAW_SYNC) {
                    out.push(diag(
                        path,
                        line,
                        RULE_NO_RAW_SYNC,
                        format!(
                            "`{name}` in crates/service library code — use the `pref_sync` shim"
                        ),
                    ));
                }
            }
        }
    }

    if raw_fs_scoped {
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        for si in 0..cx.sig_len() {
            if !matches_path(cx, si, &["std", "fs"]) {
                continue;
            }
            let line = cx.sline(si);
            if in_tests(line) || !seen.insert(line) {
                continue;
            }
            if !has_exception(&cx.lines, line, RULE_NO_RAW_FS) {
                out.push(diag(
                    path,
                    line,
                    RULE_NO_RAW_FS,
                    // lint: allow(no-raw-fs) -- diagnostic message text, not an fs call
                    "`std::fs` outside the storage backend/WAL — go through `pref_storage`, or \
                     annotate a deliberate non-durable write with \
                     `// lint: allow(no-raw-fs) -- <reason>`"
                        .to_string(),
                ));
            }
        }
    }

    if kernel_scoped {
        // at most one finding per line, in the line scanner's precedence
        // order: path constructors before method allocators
        let mut hits: Vec<(u32, usize, &str)> = Vec::new();
        for si in 0..cx.sig_len() {
            let line = cx.sline(si);
            if matches_path(cx, si, &["Vec", "new"]) {
                hits.push((line, 0, "Vec::new"));
            }
            if cx.is_ident(si, "vec") && cx.is_punct(si + 1, '!') {
                hits.push((line, 1, "vec!"));
            }
            if matches_path(cx, si, &["Box", "new"]) {
                hits.push((line, 2, "Box::new"));
            }
            if method_call(cx, si, "to_vec") && cx.is_punct(si + 3, ')') {
                hits.push((line, 3, ".to_vec()"));
            }
            if method_call(cx, si, "collect") && cx.is_punct(si + 3, ')') {
                hits.push((line, 4, ".collect()"));
            }
            if method_call(cx, si, "to_owned") && cx.is_punct(si + 3, ')') {
                hits.push((line, 5, ".to_owned()"));
            }
        }
        hits.sort();
        let mut last_line = 0u32;
        for (line, _, token) in hits {
            if line == last_line || in_tests(line) {
                continue;
            }
            last_line = line;
            if !has_exception(&cx.lines, line, RULE_KERNEL_NO_ALLOC) {
                out.push(diag(
                    path,
                    line,
                    RULE_KERNEL_NO_ALLOC,
                    format!(
                        "`{token}` in kernel hot-path code — reuse caller-owned scratch, or \
                         annotate a setup-path allocation with \
                         `// lint: allow(kernel-no-alloc) -- <reason>`"
                    ),
                ));
            }
        }
    }

    if unwrap_scoped {
        let mut seen: BTreeSet<(u32, &str)> = BTreeSet::new();
        for si in 0..cx.sig_len() {
            let pattern = if method_call(cx, si, "unwrap") && cx.is_punct(si + 3, ')') {
                ".unwrap()"
            } else if method_call(cx, si, "expect") {
                ".expect("
            } else {
                continue;
            };
            let line = cx.sline(si);
            if in_tests(line) || !seen.insert((line, pattern)) {
                continue;
            }
            if !has_exception(&cx.lines, line, RULE_NO_UNWRAP) {
                out.push(diag(
                    path,
                    line,
                    RULE_NO_UNWRAP,
                    format!(
                        "`{pattern}` in library code — propagate the error or annotate the \
                         invariant with `// lint: allow(no-unwrap) -- <reason>`"
                    ),
                ));
            }
        }
    }

    out
}

/// No iteration over hash collections in canonical/replay-adjacent library
/// code (see module docs).
pub fn hash_iter(cx: &FileCtx) -> Vec<Diagnostic> {
    let path = &cx.path;
    if is_test_file(path) || !HASH_ITER_SCOPES.iter().any(|s| path_in(path, s)) {
        return Vec::new();
    }
    let names = hash_names(cx);
    if names.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
    let mut flag = |cx: &FileCtx, line: u32, name: &str, how: &str, out: &mut Vec<Diagnostic>| {
        if cx.in_tests(line)
            || has_exception(&cx.lines, line, RULE_HASH_ITER)
            || !seen.insert((line, name.to_string()))
        {
            return;
        }
        out.push(diag(
            path,
            line,
            RULE_HASH_ITER,
            format!(
                "{how} iterates hash collection `{name}` — hasher-dependent order diverges \
                 canonical output/replay; iterate a sorted or dense-ID structure, or annotate \
                 with `// lint: allow(hash-iter) -- <sortedness justification>`"
            ),
        ));
    };

    for si in 0..cx.sig_len() {
        // `name.iter()` / `name.keys()` / `name.drain(..)` …
        if cx.is_punct(si, '.') && cx.is_punct(si + 2, '(') {
            if let Some(m) = HASH_ITER_METHODS.iter().find(|m| cx.is_ident(si + 1, m)) {
                if si > 0
                    && cx.skind(si - 1) == crate::lexer::TokKind::Ident
                    && names.contains(cx.st(si - 1))
                {
                    let name = cx.st(si - 1).to_string();
                    flag(cx, cx.sline(si + 1), &name, &format!("`.{m}()`"), &mut out);
                }
            }
        }
        // `for pat in name` / `for pat in &mut name`
        if cx.is_ident(si, "for") && !cx.is_punct(si + 1, '<') {
            let mut j = si + 1;
            let mut depth = 0usize;
            let mut in_at = None;
            while j < cx.sig_len() {
                if cx.is_punct(j, '(') || cx.is_punct(j, '[') {
                    j = cx.matching(j);
                } else if cx.is_punct(j, '<') {
                    depth += 1;
                } else if cx.is_punct(j, '>') {
                    depth = depth.saturating_sub(1);
                } else if cx.is_punct(j, '{') || cx.is_punct(j, ';') {
                    break;
                } else if cx.is_ident(j, "in") && depth == 0 {
                    in_at = Some(j);
                    break;
                }
                j += 1;
            }
            if let Some(in_at) = in_at {
                // the loop expression: up to the body's `{`
                let mut k = in_at + 1;
                let mut last_ident: Option<usize> = None;
                let mut has_call = false;
                while k < cx.sig_len() && !cx.is_punct(k, '{') {
                    if cx.is_punct(k, '(') {
                        has_call = true;
                        k = cx.matching(k);
                    } else if cx.skind(k) == crate::lexer::TokKind::Ident {
                        last_ident = Some(k);
                    }
                    k += 1;
                }
                if let (Some(li), false) = (last_ident, has_call) {
                    if names.contains(cx.st(li)) {
                        let name = cx.st(li).to_string();
                        flag(cx, cx.sline(li), &name, "`for … in`", &mut out);
                    }
                }
            }
        }
    }
    out
}

/// Names (fields, params, locals) declared with a `HashMap`/`HashSet` type
/// or constructed from one.
fn hash_names(cx: &FileCtx) -> BTreeSet<String> {
    let is_hash_ty = |ty: &str| ty.contains("HashMap<") || ty.contains("HashSet<");
    let mut names = BTreeSet::new();
    for s in &cx.model.structs {
        for f in &s.fields {
            if is_hash_ty(&f.ty) {
                names.insert(f.name.clone());
            }
        }
    }
    for f in &cx.model.fns {
        for p in &f.params {
            if !p.name.is_empty() && is_hash_ty(&p.ty) {
                names.insert(p.name.clone());
            }
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        let mut si = open;
        while si < close {
            if cx.is_ident(si, "let") {
                let mut j = si + 1;
                if cx.is_ident(j, "mut") {
                    j += 1;
                }
                if cx.skind(j) == crate::lexer::TokKind::Ident {
                    let name = cx.st(j).to_string();
                    if cx.is_punct(j + 1, ':') {
                        // explicit type up to `=` or `;`
                        let ty_start = j + 2;
                        let mut k = ty_start;
                        while k < close && !cx.is_punct(k, '=') && !cx.is_punct(k, ';') {
                            if cx.is_punct(k, '(') || cx.is_punct(k, '[') || cx.is_punct(k, '{') {
                                k = cx.matching(k);
                            }
                            k += 1;
                        }
                        if is_hash_ty(&cx.render(ty_start, k)) {
                            names.insert(name);
                        }
                    } else if cx.is_punct(j + 1, '=')
                        && (cx.is_ident(j + 2, "HashMap") || cx.is_ident(j + 2, "HashSet"))
                    {
                        names.insert(name);
                    }
                }
            }
            si += 1;
        }
    }
    names
}

/// Sockets live behind the front door: `std::net` outside `crates/net` is a
/// second wire path with no framing, checksums or admission control (see
/// module docs). Address types pass; test code is exempt like the other
/// scoped rules (unit tests that want a real socket should still exercise
/// the real server, but the rule does not force it).
pub fn raw_net(cx: &FileCtx) -> Vec<Diagnostic> {
    let path = &cx.path;
    if path_in(path, "crates/net") || is_test_file(path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    for si in 0..cx.sig_len() {
        if !matches_path(cx, si, &["std", "net"]) {
            continue;
        }
        // `std::net::SocketAddr` and friends carry no I/O
        if is_path_sep(cx, si + 4) && RAW_NET_ADDR_TYPES.iter().any(|t| cx.is_ident(si + 6, t)) {
            continue;
        }
        let line = cx.sline(si);
        if cx.in_tests(line) || !seen.insert(line) {
            continue;
        }
        if !has_exception(&cx.lines, line, RULE_NO_RAW_NET) {
            out.push(diag(
                path,
                line,
                RULE_NO_RAW_NET,
                "`std::net` outside crates/net — every wire byte goes through the framed, \
                 admission-controlled front door (`pref_net`); address types like \
                 `std::net::SocketAddr` are allowed, sockets are not. Annotate a deliberate \
                 exception with `// lint: allow(no-raw-net) -- <reason>`"
                    .to_string(),
            ));
        }
    }
    out
}

/// `no-raw-sync` + `no-unwrap` for `crates/net` library code. A separate
/// pass rather than a scope change in [`classic`]: the legacy line scanner
/// predates the crate, and the equivalence sweep pins `classic` to it
/// byte-for-byte.
pub fn net_discipline(cx: &FileCtx) -> Vec<Diagnostic> {
    let path = &cx.path;
    if !path_in(path, "crates/net") || is_test_file(path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut seen: BTreeSet<(u32, &str)> = BTreeSet::new();
    for si in 0..cx.sig_len() {
        for (name, segs) in RAW_SYNC_PATHS {
            if !matches_path(cx, si, segs) {
                continue;
            }
            let line = cx.sline(si);
            if cx.in_tests(line) || !seen.insert((line, name)) {
                continue;
            }
            if !has_exception(&cx.lines, line, RULE_NO_RAW_SYNC) {
                out.push(diag(
                    path,
                    line,
                    RULE_NO_RAW_SYNC,
                    format!(
                        "`{name}` in crates/net library code — use the `pref_sync` shim \
                         (admission and shutdown must stay model-checkable)"
                    ),
                ));
            }
        }
        let pattern = if method_call(cx, si, "unwrap") && cx.is_punct(si + 3, ')') {
            ".unwrap()"
        } else if method_call(cx, si, "expect") {
            ".expect("
        } else {
            continue;
        };
        let line = cx.sline(si);
        if cx.in_tests(line) || !seen.insert((line, pattern)) {
            continue;
        }
        if !has_exception(&cx.lines, line, RULE_NO_UNWRAP) {
            out.push(diag(
                path,
                line,
                RULE_NO_UNWRAP,
                format!(
                    "`{pattern}` in library code — propagate the error or annotate the \
                     invariant with `// lint: allow(no-unwrap) -- <reason>`"
                ),
            ));
        }
    }
    out
}

/// WAL-before-publish, statically (see module docs).
pub fn durability_order(cx: &FileCtx) -> Vec<Diagnostic> {
    let scoped = cx.path.ends_with("crates/service/src/shard.rs")
        || cx.path.ends_with("crates/service/src/durability.rs");
    if !scoped {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &cx.model.fns {
        if f.in_test {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        if !f.params.iter().any(|p| p.ty.contains("ShardDurability")) {
            continue;
        }
        let call_at = |name: &str, upto: usize| (open..upto).find(|&si| method_call(cx, si, name));
        let Some(publish_at) = call_at("publish", close) else {
            continue;
        };
        let line = cx.sline(publish_at + 1);
        let logged = call_at("log_batch", publish_at).is_some();
        let synced = call_at("sync_for_ack", publish_at).is_some();
        if (!logged || !synced) && !has_exception(&cx.lines, line, RULE_DURABILITY_ORDER) {
            let missing = if !logged { "log_batch" } else { "sync_for_ack" };
            out.push(diag(
                &cx.path,
                line,
                RULE_DURABILITY_ORDER,
                format!(
                    "`{}` publishes a snapshot without a preceding `.{missing}(…)` call — the \
                     WAL append + fsync must dominate every publish on a durable path \
                     (acks follow publication)",
                    f.name
                ),
            ));
        }
    }
    out
}

// ---- shared matching helpers ---------------------------------------------

fn diag(path: &str, line: u32, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line,
        rule,
        message,
    }
}

/// `#![forbid(unsafe_code)]` as real tokens (a string literal spelling it
/// cannot satisfy the rule, unlike under the line scanner).
fn has_forbid_unsafe(cx: &FileCtx) -> bool {
    (0..cx.sig_len()).any(|si| {
        cx.is_punct(si, '#')
            && cx.is_punct(si + 1, '!')
            && cx.is_punct(si + 2, '[')
            && cx.is_ident(si + 3, "forbid")
            && cx.is_punct(si + 4, '(')
            && cx.is_ident(si + 5, "unsafe_code")
            && cx.is_punct(si + 6, ')')
            && cx.is_punct(si + 7, ']')
    })
}

/// `::` starting at significant index `si`.
fn is_path_sep(cx: &FileCtx, si: usize) -> bool {
    cx.is_punct(si, ':') && cx.is_punct(si + 1, ':')
}

/// `segs[0]::segs[1]::…` as consecutive significant tokens starting at `si`.
/// Token granularity gives the line scanner's `contains_token` boundary
/// check (an identifier `MyVec` never matches the segment `Vec`) for free.
pub fn matches_path(cx: &FileCtx, si: usize, segs: &[&str]) -> bool {
    if !cx.is_ident(si, segs[0]) {
        return false;
    }
    let mut pos = si;
    for seg in &segs[1..] {
        if !is_path_sep(cx, pos + 1) || !cx.is_ident(pos + 3, seg) {
            return false;
        }
        pos += 3;
    }
    true
}

/// `.name(` starting at significant index `si` (which must be the `.`).
pub fn method_call(cx: &FileCtx, si: usize, name: &str) -> bool {
    cx.is_punct(si, '.') && cx.is_ident(si + 1, name) && cx.is_punct(si + 2, '(')
}

pub fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || (path.contains("src/bin/") && path.ends_with(".rs"))
}

/// Scoring-kernel modules by workspace convention: `kernel.rs`,
/// `kernels.rs`, or a `_kernel(s)` suffix. Deliberately narrower than
/// "contains `kernel`" — harness files *about* kernels (`kernel_perf.rs`,
/// `kernel_bench.rs`) are measurement code, not hot loops.
pub fn is_kernel_file(path: &str) -> bool {
    let stem = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    stem == "kernel" || stem == "kernels" || stem.ends_with("_kernel") || stem.ends_with("_kernels")
}

/// Whole-file test modules (declared `#[cfg(test)] mod x;` at the crate
/// root) carry it in their name by workspace convention.
pub fn is_test_file(path: &str) -> bool {
    let stem = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    stem == "tests" || stem.ends_with("_tests")
}

pub fn path_in(path: &str, prefix: &str) -> bool {
    path.starts_with(prefix) || path.contains(&format!("/{prefix}/"))
}

/// Lines that do not break a contiguous comment block above a flagged line:
/// comments and attributes (an attribute may sit between the justification
/// and the expression).
fn is_comment_line(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("#[")
}

/// True when 1-based `line` has a `// ordering:` comment on the same line or
/// in the contiguous run of comment/attribute lines directly above it.
pub fn has_adjacent_ordering_comment(lines: &[String], line: u32) -> bool {
    let idx = (line as usize).saturating_sub(1);
    if lines.get(idx).is_some_and(|l| l.contains("// ordering:")) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        if !is_comment_line(&lines[i]) {
            return false;
        }
        if lines[i].contains("// ordering:") {
            return true;
        }
    }
    false
}

/// True when 1-based `line` (or the line above) carries
/// `// lint: allow(<rule>)`.
pub fn has_exception(lines: &[String], line: u32, rule: &str) -> bool {
    let marker = format!("// lint: allow({rule})");
    let idx = (line as usize).saturating_sub(1);
    lines.get(idx).is_some_and(|l| l.contains(&marker))
        || (idx > 0 && lines[idx - 1].contains(&marker))
}

/// Used by `lockorder` to look up function items by (impl type, name).
pub fn fn_key(f: &FnItem) -> (Option<String>, String) {
    (f.impl_type.clone(), f.name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, source: &str) -> Vec<String> {
        let cx = FileCtx::new(path, source);
        lint_file_ctx(&cx).iter().map(|d| d.to_string()).collect()
    }

    // -- the six classic rules, ported behavior pins ----------------------

    #[test]
    fn crate_roots_must_forbid_unsafe() {
        let found = findings("crates/x/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(found.len(), 1);
        assert!(found[0].starts_with("crates/x/src/lib.rs:1: forbid-unsafe:"));
        assert!(findings(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n"
        )
        .is_empty());
        // non-root modules are not required to repeat the attribute
        assert!(findings("crates/x/src/util.rs", "pub fn f() {}\n").is_empty());
        // bin targets are crate roots too
        assert_eq!(
            findings("crates/x/src/bin/tool.rs", "fn main() {}\n").len(),
            1
        );
        // a string literal spelling the attribute does not satisfy it
        let spoofed = "const S: &str = \"#![forbid(unsafe_code)]\";\n";
        assert_eq!(findings("crates/x/src/lib.rs", spoofed).len(), 1);
    }

    #[test]
    fn bare_orderings_are_flagged_with_file_and_line() {
        // lint: allow(ordering-comment) -- lint self-test fixture
        let src = "fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Acquire)\n}\n";
        let found = findings("crates/x/src/m.rs", src);
        assert_eq!(found.len(), 1);
        assert!(
            found[0].starts_with("crates/x/src/m.rs:2: ordering-comment:"),
            "{}",
            found[0]
        );
    }

    #[test]
    fn ordering_comments_may_be_inline_or_in_the_block_above() {
        let inline = "let v = a.load(Ordering::Relaxed); // ordering: tally only\n";
        assert!(findings("crates/x/src/m.rs", inline).is_empty());
        let above = "// ordering: Release pairs with the reader's Acquire;\n\
                     // the slot write above must be visible first\n\
                     a.store(1, Ordering::Release);\n"; // lint: allow(ordering-comment) -- fixture
        assert!(findings("crates/x/src/m.rs", above).is_empty());
        // a non-comment line breaks the contiguous block
        // lint: allow(ordering-comment) -- lint self-test fixture
        let detached =
            "// ordering: stale justification\nlet x = 1;\na.store(x, Ordering::Release);\n";
        assert_eq!(findings("crates/x/src/m.rs", detached).len(), 1);
    }

    #[test]
    fn cmp_ordering_never_trips_the_atomic_rule() {
        let src = "fn f(a: i32, b: i32) -> std::cmp::Ordering {\n\
                       a.cmp(&b).then(std::cmp::Ordering::Less)\n}\n";
        assert!(findings("crates/x/src/m.rs", src).is_empty());
    }

    #[test]
    fn orderings_must_be_justified_even_in_test_modules() {
        // lint: allow(ordering-comment) -- lint self-test fixture
        let src = "#[cfg(test)]\nmod tests {\n    fn f(a: &A) { a.load(Ordering::SeqCst); }\n}\n";
        assert_eq!(findings("crates/x/src/m.rs", src).len(), 1);
    }

    #[test]
    fn raw_sync_is_rejected_in_service_library_code_only() {
        let src = "use std::sync::Mutex;\n";
        let found = findings("crates/service/src/m.rs", src);
        assert_eq!(found.len(), 1);
        assert!(
            found[0].starts_with("crates/service/src/m.rs:1: no-raw-sync:"),
            "{}",
            found[0]
        );
        // other crates may use std::sync directly (the shim itself must)
        assert!(findings("crates/sync/src/m.rs", src).is_empty());
        // Arc is not a blocking/ordering primitive — allowed
        assert!(findings("crates/service/src/m.rs", "use std::sync::Arc;\n").is_empty());
        // test code drives real threads on purpose
        let test_src = "#[cfg(test)]\nmod tests {\n    use std::thread;\n}\n";
        assert!(findings("crates/service/src/m.rs", test_src).is_empty());
        let named_test_file = "use std::thread;\n";
        assert!(findings("crates/service/src/model_tests.rs", named_test_file).is_empty());
    }

    #[test]
    fn unwrap_and_expect_are_rejected_in_service_and_engine() {
        for path in ["crates/service/src/m.rs", "crates/engine/src/m.rs"] {
            let found = findings(path, "fn f() { g().unwrap(); }\n");
            assert_eq!(found.len(), 1, "{path}");
            assert!(found[0].contains(": no-unwrap:"), "{}", found[0]);
            assert_eq!(findings(path, "fn f() { g().expect(\"x\"); }\n").len(), 1);
        }
        // out-of-scope crates may unwrap
        assert!(findings("crates/geom/src/m.rs", "fn f() { g().unwrap(); }\n").is_empty());
        // doc-comment examples are comments, not code
        assert!(findings(
            "crates/service/src/m.rs",
            "/// let x = g().unwrap();\nfn f() {}\n"
        )
        .is_empty());
    }

    #[test]
    fn raw_fs_is_confined_to_the_storage_backend_and_wal() {
        let src = "use std::fs;\nfn f() { std::fs::remove_file(\"x\").ok(); }\n";
        // the durable layer and the linter itself are allowed wholesale
        assert!(findings("crates/storage/src/backend.rs", src).is_empty());
        assert!(findings("crates/storage/src/wal.rs", src).is_empty());
        // the linter itself is a crate root, so satisfy forbid-unsafe too
        let root_src = format!("#![forbid(unsafe_code)]\n{src}");
        assert!(findings("tools/xtask/src/main.rs", &root_src).is_empty());
        // everything else is flagged, line by line
        let found = findings("crates/service/src/m.rs", src);
        assert_eq!(found.len(), 2);
        assert!(
            found[0].starts_with("crates/service/src/m.rs:1: no-raw-fs:"),
            "{}",
            found[0]
        );
        // the rest of the storage crate is NOT allow-listed: buffer-manager
        // code must go through its own backend abstraction too
        assert_eq!(findings("crates/storage/src/store.rs", src).len(), 2);
        // an annotated deliberate use is accepted
        let annotated = "// lint: allow(no-raw-fs) -- bench report, not durable state\n\
             let file = std::fs::File::create(&out)?;\n";
        assert!(findings("crates/bench/src/report.rs", annotated).is_empty());
        // test code cleans up scratch dirs freely
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f() { std::fs::remove_file(\"x\").ok(); }\n}\n";
        assert!(findings("crates/service/src/m.rs", test_src).is_empty());
        // comments and doc examples are not code
        assert!(findings("crates/service/src/m.rs", "//! touches `std::fs` never\n").is_empty());
    }

    #[test]
    fn allocation_is_rejected_in_kernel_modules() {
        let src = "fn f() { let v: Vec<f64> = Vec::new(); }\n";
        let found = findings("crates/geom/src/kernel.rs", src);
        assert_eq!(found.len(), 1);
        assert!(
            found[0].starts_with("crates/geom/src/kernel.rs:1: kernel-no-alloc:"),
            "{}",
            found[0]
        );
        // scoped by module name, not by crate — and harness files about
        // kernels are measurement code, not hot loops
        assert!(findings("crates/geom/src/util.rs", src).is_empty());
        assert!(findings("crates/bench/src/kernel_perf.rs", src).is_empty());
        let bin_src = format!("#![forbid(unsafe_code)]\n{src}");
        assert!(findings("crates/bench/src/bin/kernel_bench.rs", &bin_src).is_empty());
        // a `_kernel` suffix is in scope
        assert_eq!(findings("crates/x/src/score_kernel.rs", src).len(), 1);
        // method-call allocators are caught too
        for bad in [
            "fn f(w: &[f64]) { let _ = w.to_vec(); }\n",
            "fn f() { let _: Vec<u32> = (0..4).collect(); }\n",
            "fn f(s: &str) { let _ = s.to_owned(); }\n",
            "fn f() { let _ = vec![0.0; 8]; }\n",
        ] {
            assert_eq!(findings("crates/geom/src/kernel.rs", bad).len(), 1, "{bad}");
        }
        // a longer path is not bisected into a false positive
        assert!(findings("crates/geom/src/kernel.rs", "fn f() { MyVec::new(); }\n").is_empty());
        // annotated setup-path allocations are accepted
        let annotated = "// lint: allow(kernel-no-alloc) -- table construction, not a scan\n\
                         let rows: Vec<f64> = it.collect();\n";
        assert!(findings("crates/geom/src/kernel.rs", annotated).is_empty());
        // test code allocates freely
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f() { let v = Vec::new(); }\n}\n";
        assert!(findings("crates/geom/src/kernel.rs", test_src).is_empty());
    }

    #[test]
    fn exception_comments_suppress_a_single_finding() {
        let same_line = "fn f() { g().unwrap() } // lint: allow(no-unwrap) -- startup only\n";
        assert!(findings("crates/service/src/m.rs", same_line).is_empty());
        let line_above = "// lint: allow(no-unwrap) -- internal invariant: id interned above\n\
                          fn f() { g().unwrap() }\n";
        assert!(findings("crates/service/src/m.rs", line_above).is_empty());
        // the exception names a rule; a different rule's marker does not leak
        let wrong_rule = "// lint: allow(no-raw-sync) -- reason\nfn f() { g().unwrap() }\n";
        assert_eq!(findings("crates/service/src/m.rs", wrong_rule).len(), 1);
        // and it only reaches one line
        let too_far = "// lint: allow(no-unwrap) -- reason\n\nfn f() { g().unwrap() }\n";
        assert_eq!(findings("crates/service/src/m.rs", too_far).len(), 1);
    }

    #[test]
    fn commented_out_code_is_not_linted() {
        let src = "// let x = g().unwrap();\n//     a.load(Ordering::Acquire);\n";
        assert!(findings("crates/service/src/m.rs", src).is_empty());
    }

    // -- the false-positive class the lexer closes ------------------------

    #[test]
    fn tokens_inside_strings_no_longer_trip_rules() {
        // lint: allow(ordering-comment) -- fixture: the string must stay invisible
        let in_string = "fn f() -> &'static str { \"Ordering::Relaxed\" }\n";
        assert!(findings("crates/x/src/m.rs", in_string).is_empty());
        let sync_in_string = "const HELP: &str = \"std::sync::Mutex is banned here\";\n";
        assert!(findings("crates/service/src/m.rs", sync_in_string).is_empty());
        let fs_in_string = "const HELP: &str = \"std::fs is banned here\";\n";
        assert!(findings("crates/service/src/m.rs", fs_in_string).is_empty());
        let unwrap_in_string = "const HELP: &str = \"never .unwrap() in here\";\n";
        assert!(findings("crates/service/src/m.rs", unwrap_in_string).is_empty());
    }

    #[test]
    fn tokens_inside_block_comments_no_longer_trip_rules() {
        let fs_in_comment = "/* std::fs */ fn f() {}\n";
        assert!(findings("crates/service/src/m.rs", fs_in_comment).is_empty());
        // nested block comments too — the line scanner could not even see
        // where they end
        let nested = "/* outer /* std::fs inner */ std::thread outer */ fn f() {}\n";
        assert!(findings("crates/service/src/m.rs", nested).is_empty());
        // lint: allow(ordering-comment) -- fixture: the comment must stay invisible
        let ordering_in_comment = "/* a.load(Ordering::Acquire) */ fn f() {}\n";
        assert!(findings("crates/x/src/m.rs", ordering_in_comment).is_empty());
        // …while the same token as code on the same line is still caught
        // lint: allow(ordering-comment) -- lint self-test fixture
        let mixed = "fn f(a: &A) { /* std::fs */ a.load(Ordering::SeqCst); }\n";
        let found = findings("crates/service/src/m.rs", mixed);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("ordering-comment"));
    }

    // -- hash-iter --------------------------------------------------------

    #[test]
    fn hash_iteration_is_flagged_in_scoped_library_code() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, f64>) -> f64 {\n\
                       let mut sum = 0.0;\n\
                       for (_k, v) in m.iter() {\n\
                           sum += v;\n\
                       }\n\
                       sum\n\
                   }\n";
        for path in ["crates/engine/src/m.rs", "crates/core/src/m.rs"] {
            let found = findings(path, src);
            assert_eq!(found.len(), 1, "{path}: {found:?}");
            assert!(found[0].contains(":4: hash-iter:"), "{}", found[0]);
        }
        // out of scope: the bench harness may use hash order freely
        assert!(findings("crates/bench/src/m.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_forms() {
        let header = "use std::collections::{HashMap, HashSet};\n";
        for (body, line) in [
            ("fn f(m: &HashMap<u32, u32>) { for k in m.keys() {} }", 2),
            (
                "fn f(m: &mut HashMap<u32, u32>) { m.values_mut().for_each(|v| *v += 1); }",
                2,
            ),
            (
                "fn f(s: HashSet<u32>) -> Vec<u32> { s.into_iter().collect() }",
                2,
            ),
            (
                "fn f(m: &mut HashMap<u32, u32>) { for kv in m.drain() {} }",
                2,
            ),
            ("fn f() { let m = HashMap::new(); for x in &m {} }", 2),
            (
                "fn g() { let mut s: HashSet<u8> = HashSet::new(); for x in &mut s {} }",
                2,
            ),
        ] {
            let src = format!("{header}{body}\n");
            let found = findings("crates/engine/src/m.rs", &src);
            assert_eq!(found.len(), 1, "{body}: {found:?}");
            assert!(
                found[0].contains(&format!(":{line}: hash-iter:")),
                "{}",
                found[0]
            );
        }
    }

    #[test]
    fn keyed_hash_lookup_stays_allowed() {
        let src = "use std::collections::HashMap;\n\
                   struct Index { obj_index: HashMap<u64, usize> }\n\
                   impl Index {\n\
                       fn get(&self, id: u64) -> Option<usize> { self.obj_index.get(&id).copied() }\n\
                       fn put(&mut self, id: u64, at: usize) { self.obj_index.insert(id, at); }\n\
                   }\n";
        assert!(findings("crates/engine/src/m.rs", src).is_empty());
        // iterating a *Vec* named like anything is fine: the rule tracks
        // declared hash names, not method names alone
        let vec_iter = "fn f(v: &Vec<u32>) -> u32 { v.iter().sum() }\n";
        assert!(findings("crates/engine/src/m.rs", vec_iter).is_empty());
    }

    #[test]
    fn hash_iter_exception_and_test_exemptions() {
        let annotated = "use std::collections::HashMap;\n\
                         fn f(m: &HashMap<u32, u32>) {\n\
                             // lint: allow(hash-iter) -- results are re-sorted by dense id below\n\
                             for k in m.keys() { let _ = k; }\n\
                         }\n";
        assert!(findings("crates/engine/src/m.rs", annotated).is_empty());
        let in_tests = "use std::collections::HashMap;\n\
                        #[cfg(test)]\n\
                        mod tests {\n\
                            fn f(m: &HashMap<u32, u32>) { for k in m.keys() {} }\n\
                        }\n";
        assert!(findings("crates/engine/src/m.rs", in_tests).is_empty());
    }

    // -- durability-order -------------------------------------------------

    const DUR_PATH: &str = "crates/service/src/shard.rs";

    #[test]
    fn publish_before_log_is_flagged_with_file_and_line() {
        let src = "fn writer(cell: &SnapshotCell, dur: &mut ShardDurability, b: &B) {\n\
                       cell.publish(snap(b));\n\
                       dur.log_batch(b).ok();\n\
                       dur.sync_for_ack().ok();\n\
                   }\n";
        let found = findings(DUR_PATH, src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(
            found[0].starts_with("crates/service/src/shard.rs:2: durability-order:"),
            "{}",
            found[0]
        );
    }

    #[test]
    fn publish_without_fsync_is_flagged() {
        let src = "fn writer(cell: &SnapshotCell, dur: &mut ShardDurability, b: &B) {\n\
                       dur.log_batch(b).ok();\n\
                       cell.publish(snap(b));\n\
                   }\n";
        let found = findings(DUR_PATH, src);
        assert_eq!(found.len(), 1);
        assert!(found[0].contains("sync_for_ack"), "{}", found[0]);
    }

    #[test]
    fn log_then_fsync_then_publish_passes() {
        let src = "fn writer(cell: &SnapshotCell, dur: &mut Option<ShardDurability>, b: &B) {\n\
                       if let Some(d) = dur.as_mut() { d.log_batch(b).ok(); d.sync_for_ack().ok(); }\n\
                       cell.publish(snap(b));\n\
                   }\n";
        assert!(findings(DUR_PATH, src).is_empty());
    }

    // -- no-raw-net -------------------------------------------------------

    #[test]
    fn raw_sockets_outside_the_front_door_are_flagged() {
        let src = "use std::net::TcpStream;\n\
                   fn f() { let _ = std::net::TcpListener::bind(\"127.0.0.1:0\"); }\n";
        let found = findings("crates/service/src/m.rs", src);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(
            found[0].starts_with("crates/service/src/m.rs:1: no-raw-net:"),
            "{}",
            found[0]
        );
        // the front door itself is the allowed home for sockets
        assert!(findings("crates/net/src/server.rs", src).is_empty());
        // brace imports mixing an address type with a socket type still flag
        let mixed = "use std::net::{SocketAddr, TcpStream};\n";
        assert_eq!(findings("crates/bench/src/m.rs", mixed).len(), 1);
    }

    #[test]
    fn address_types_are_not_sockets() {
        for ty in ["SocketAddr", "Ipv4Addr", "IpAddr", "ToSocketAddrs"] {
            let src = format!("use std::net::{ty};\nfn f(a: std::net::{ty}) {{ let _ = a; }}\n");
            assert!(
                findings("crates/bench/src/m.rs", &src).is_empty(),
                "std::net::{ty} is a value type, not a socket"
            );
        }
    }

    #[test]
    fn raw_net_exception_and_test_exemptions() {
        let annotated = "// lint: allow(no-raw-net) -- probe the listener without a client\n\
                         use std::net::TcpStream;\n";
        assert!(findings("crates/service/src/m.rs", annotated).is_empty());
        let in_tests =
            "#[cfg(test)]\nmod tests {\n    fn f() { std::net::TcpStream::connect(\"x\").ok(); }\n}\n";
        assert!(findings("crates/service/src/m.rs", in_tests).is_empty());
        assert!(findings(
            "crates/service/src/net_tests.rs",
            "use std::net::TcpStream;\n"
        )
        .is_empty());
        // a string literal naming the module is not a use of it
        let in_string = "const HELP: &str = \"std::net is banned here\";\n";
        assert!(findings("crates/service/src/m.rs", in_string).is_empty());
    }

    // -- net-discipline (no-raw-sync / no-unwrap in crates/net) -----------

    #[test]
    fn the_front_door_is_held_to_the_shim_and_unwrap_discipline() {
        let sync_src = "use std::thread;\n";
        let found = findings("crates/net/src/server.rs", sync_src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(
            found[0].starts_with("crates/net/src/server.rs:1: no-raw-sync:"),
            "{}",
            found[0]
        );
        let unwrap_src = "fn f() { g().unwrap(); }\n";
        let found = findings("crates/net/src/client.rs", unwrap_src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains(": no-unwrap:"), "{}", found[0]);
        // Arc stays allowed, as in crates/service
        assert!(findings("crates/net/src/server.rs", "use std::sync::Arc;\n").is_empty());
        // test modules and test files drive real threads and unwrap freely
        let test_src =
            "#[cfg(test)]\nmod tests {\n    use std::thread;\n    fn f() { g().unwrap(); }\n}\n";
        assert!(findings("crates/net/src/server.rs", test_src).is_empty());
        assert!(findings("crates/net/src/model_tests.rs", sync_src).is_empty());
        // and the exception grammar names the same rules
        let annotated = "// lint: allow(no-unwrap) -- poisoned registry is unreachable\n\
                         fn f() { g().unwrap(); }\n";
        assert!(findings("crates/net/src/server.rs", annotated).is_empty());
    }

    #[test]
    fn durability_rule_is_scoped_to_the_durable_path() {
        // a function that never sees the durability handle may publish
        // freely (the compactor: compaction never changes the matching)
        let src = "fn compactor(cell: &SnapshotCell, b: &B) { cell.publish(snap(b)); }\n";
        assert!(findings(DUR_PATH, src).is_empty());
        // and other files are out of scope entirely
        let bad = "fn writer(cell: &SnapshotCell, dur: &mut ShardDurability, b: &B) {\n\
                       cell.publish(snap(b));\n\
                   }\n";
        assert!(findings("crates/service/src/cell.rs", bad).is_empty());
    }
}
