//! Workspace automation. Currently one subcommand:
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! A source-level invariant linter for the concurrency rules this workspace
//! commits to. It is a deliberate *token scanner* — line-by-line, no parser,
//! no dependencies — which keeps it trivially auditable and fast, at the cost
//! of heuristics documented on each rule:
//!
//! * **forbid-unsafe** — every crate root (`src/lib.rs`, `src/main.rs`,
//!   `src/bin/*.rs`) carries `#![forbid(unsafe_code)]`.
//! * **ordering-comment** — every use of an atomic memory ordering
//!   (`Ordering::Relaxed` / `Acquire` / `Release` / `AcqRel` / `SeqCst`)
//!   carries an adjacent `// ordering:` comment justifying it: on the same
//!   line, or in the contiguous comment block directly above. The variant
//!   names are disjoint from `cmp::Ordering`'s (`Less` / `Equal` /
//!   `Greater`), so comparison code never trips this rule.
//! * **no-raw-sync** — `crates/service` goes through the `pref_sync` shim:
//!   no direct `std::sync::atomic` / `std::sync::Mutex` /
//!   `std::sync::Condvar` / `std::sync::RwLock` / `std::thread` in its
//!   non-test library code (`std::sync::Arc` is fine — the shim does not
//!   wrap it, and it needs no wrapping: it has no blocking or ordering
//!   behaviour of its own for the model scheduler to interpose on).
//! * **no-unwrap** — no `.unwrap()` / `.expect(` in non-test library code of
//!   `crates/service` and `crates/engine`; service/engine code must surface
//!   errors, not abort a writer thread.
//! * **no-raw-fs** — durable I/O is the storage crate's job: no `std::fs` in
//!   non-test library code outside `crates/storage/src/backend.rs` and
//!   `crates/storage/src/wal.rs` (plus `tools/xtask`, which must read the
//!   tree to lint it). Anything else going to disk — trace dumps, bench
//!   reports — carries an explicit
//!   `// lint: allow(no-raw-fs) -- <reason>` so durability-relevant writes
//!   cannot slip in unreviewed next to the WAL discipline.
//! * **kernel-no-alloc** — scoring-kernel modules (files named `kernel.rs` /
//!   `kernels.rs` / `*_kernel.rs`) are hot-loop code whose steady state must
//!   not allocate: no `Vec::new` / `vec!` / `Box::new` / `.to_vec()` /
//!   `.collect()` / `.to_owned()` in their non-test code. Setup-path
//!   allocations (table construction, one-time lane growth) carry
//!   `// lint: allow(kernel-no-alloc) -- <reason>`; the `kernel_bench`
//!   harness additionally pins scratch pointers at runtime, so the lint and
//!   the bench cover the contract from both ends.
//!
//! Suppress a finding where it is genuinely intended with an exception
//! comment on the same line or the line above:
//!
//! ```text
//! // lint: allow(no-unwrap) -- internal invariant: ids are interned above
//! ```
//!
//! Test code is exempt from `no-raw-sync`, `no-unwrap` and `no-raw-fs`
//! (tests may panic, race real threads, and clean up scratch directories on
//! purpose): everything after the first
//! `#[cfg(test)]` in a file, and whole files named `tests.rs` / `*_tests.rs`.
//! `forbid-unsafe` and `ordering-comment` apply everywhere.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_workspace(),
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`");
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

fn lint_workspace() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for member_dir in ["crates", "tools"] {
        collect_rs_files(&root.join(member_dir), &mut files);
    }
    files.sort();

    let mut diagnostics = Vec::new();
    let mut checked = 0usize;
    for path in &files {
        let Ok(source) = std::fs::read_to_string(path) else {
            eprintln!("xtask: cannot read {}", path.display());
            return ExitCode::FAILURE;
        };
        let rel = path.strip_prefix(&root).unwrap_or(path);
        diagnostics.extend(lint_file(&rel.display().to_string(), &source));
        checked += 1;
    }

    if diagnostics.is_empty() {
        println!("xtask lint: {checked} files clean");
        ExitCode::SUCCESS
    } else {
        for d in &diagnostics {
            println!("{d}");
        }
        println!(
            "xtask lint: {} violation(s) in {checked} files",
            diagnostics.len()
        );
        ExitCode::FAILURE
    }
}

/// `tools/xtask` lives two levels below the workspace root.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask manifest has a workspace root two levels up")
        .to_path_buf()
}

/// Recursively collects `.rs` files under `dir`, looking only inside `src/`
/// trees (integration `tests/`, `benches/` and build outputs are out of
/// scope for the library-code rules).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == "vendor" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs")
            && path.components().any(|c| c.as_os_str() == "src")
        {
            out.push(path);
        }
    }
}

// ---- rules ---------------------------------------------------------------

const RULE_FORBID_UNSAFE: &str = "forbid-unsafe";
const RULE_ORDERING_COMMENT: &str = "ordering-comment";
const RULE_NO_RAW_SYNC: &str = "no-raw-sync";
const RULE_NO_UNWRAP: &str = "no-unwrap";
const RULE_NO_RAW_FS: &str = "no-raw-fs";
const RULE_KERNEL_NO_ALLOC: &str = "kernel-no-alloc";

/// Files allowed to touch `std::fs` wholesale: the storage backends and the
/// WAL are the durable layer, and the linter itself must read the tree.
const RAW_FS_ALLOWED: [&str; 3] = [
    "crates/storage/src/backend.rs",
    "crates/storage/src/wal.rs",
    "tools/xtask/src/main.rs",
];

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Raw primitives `crates/service` must route through the shim.
/// `std::sync::Arc` is deliberately absent (see the module docs).
const RAW_SYNC_TOKENS: [&str; 5] = [
    "std::sync::atomic",
    "std::sync::Mutex",
    "std::sync::Condvar",
    "std::sync::RwLock",
    "std::thread",
];

/// Allocation constructors denied in kernel modules, matched as standalone
/// path tokens (so `MyVec::new` does not trip the rule).
const KERNEL_ALLOC_PATH_TOKENS: [&str; 3] = ["Vec::new", "vec!", "Box::new"];
/// Allocating method calls denied in kernel modules, matched verbatim.
const KERNEL_ALLOC_METHOD_TOKENS: [&str; 3] = [".to_vec()", ".collect()", ".to_owned()"];

/// One linter finding, rendered `path:line: rule: message`.
struct Diagnostic {
    path: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Lints one file's source. `path` is used for rule scoping (which crate the
/// file belongs to, whether it is a crate root) and diagnostics.
fn lint_file(path: &str, source: &str) -> Vec<Diagnostic> {
    let lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();

    if is_crate_root(path) && !lines.iter().any(|l| l.trim() == "#![forbid(unsafe_code)]") {
        out.push(Diagnostic {
            path: path.to_string(),
            line: 1,
            rule: RULE_FORBID_UNSAFE,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }

    // the line index where test code starts, if any: library-code rules stop
    // there (the token scan cannot see module boundaries, so the heuristic is
    // "first `#[cfg(test)]` onwards" — in this workspace test modules are
    // trailing, and a misplaced test module would re-expose library code to
    // the stricter rules, never the reverse)
    let test_start = if is_test_file(path) {
        Some(0)
    } else {
        lines.iter().position(|l| l.contains("#[cfg(test)]"))
    };

    let service_lib = path_in(path, "crates/service") && !is_test_file(path);
    let kernel_scoped = is_kernel_file(path) && !is_test_file(path);
    let unwrap_scoped =
        (path_in(path, "crates/service") || path_in(path, "crates/engine")) && !is_test_file(path);
    let raw_fs_scoped =
        !RAW_FS_ALLOWED.iter().any(|allowed| path.ends_with(allowed)) && !is_test_file(path);

    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        let in_tests = test_start.is_some_and(|t| idx >= t);
        let code = code_part(raw);

        // ordering-comment applies everywhere, tests included: a memory
        // ordering needs a justification no matter where it appears
        for variant in ATOMIC_ORDERINGS {
            let needle = format!("Ordering::{variant}");
            if contains_token(code, &needle)
                && !has_adjacent_ordering_comment(&lines, idx)
                && !has_exception(&lines, idx, RULE_ORDERING_COMMENT)
            {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: line_no,
                    rule: RULE_ORDERING_COMMENT,
                    message: format!(
                        "`{needle}` has no adjacent `// ordering:` justification comment"
                    ),
                });
            }
        }

        if in_tests {
            continue;
        }

        if service_lib {
            for token in RAW_SYNC_TOKENS {
                if code.contains(token) && !has_exception(&lines, idx, RULE_NO_RAW_SYNC) {
                    out.push(Diagnostic {
                        path: path.to_string(),
                        line: line_no,
                        rule: RULE_NO_RAW_SYNC,
                        message: format!(
                            "`{token}` in crates/service library code — use the `pref_sync` shim"
                        ),
                    });
                }
            }
        }

        if raw_fs_scoped
            && contains_token(code, "std::fs")
            && !has_exception(&lines, idx, RULE_NO_RAW_FS)
        {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line_no,
                rule: RULE_NO_RAW_FS,
                message: "`std::fs` outside the storage backend/WAL — go through \
                          `pref_storage`, or annotate a deliberate non-durable write with \
                          `// lint: allow(no-raw-fs) -- <reason>`"
                    .to_string(),
            });
        }

        if kernel_scoped {
            let path_hit = KERNEL_ALLOC_PATH_TOKENS
                .iter()
                .find(|t| contains_token(code, t));
            let method_hit = KERNEL_ALLOC_METHOD_TOKENS
                .iter()
                .find(|t| code.contains(*t));
            if let Some(token) = path_hit.or(method_hit) {
                if !has_exception(&lines, idx, RULE_KERNEL_NO_ALLOC) {
                    out.push(Diagnostic {
                        path: path.to_string(),
                        line: line_no,
                        rule: RULE_KERNEL_NO_ALLOC,
                        message: format!(
                            "`{token}` in kernel hot-path code — reuse caller-owned scratch, or \
                             annotate a setup-path allocation with \
                             `// lint: allow(kernel-no-alloc) -- <reason>`"
                        ),
                    });
                }
            }
        }

        if unwrap_scoped {
            for pattern in [".unwrap()", ".expect("] {
                if code.contains(pattern) && !has_exception(&lines, idx, RULE_NO_UNWRAP) {
                    out.push(Diagnostic {
                        path: path.to_string(),
                        line: line_no,
                        rule: RULE_NO_UNWRAP,
                        message: format!(
                            "`{pattern}` in library code — propagate the error or annotate the \
                             invariant with `// lint: allow(no-unwrap) -- <reason>`"
                        ),
                    });
                }
            }
        }
    }
    out
}

fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || (path.contains("src/bin/") && path.ends_with(".rs"))
}

/// Scoring-kernel modules by workspace convention: `kernel.rs`,
/// `kernels.rs`, or a `_kernel(s)` suffix. Deliberately narrower than
/// "contains `kernel`" — harness files *about* kernels (`kernel_perf.rs`,
/// `kernel_bench.rs`) are measurement code, not hot loops.
fn is_kernel_file(path: &str) -> bool {
    let stem = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    stem == "kernel" || stem == "kernels" || stem.ends_with("_kernel") || stem.ends_with("_kernels")
}

/// Whole-file test modules (declared `#[cfg(test)] mod x;` at the crate
/// root) carry it in their name by workspace convention.
fn is_test_file(path: &str) -> bool {
    let stem = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    stem == "tests" || stem.ends_with("_tests")
}

fn path_in(path: &str, prefix: &str) -> bool {
    path.starts_with(prefix) || path.contains(&format!("/{prefix}/"))
}

/// The code part of a line: everything before the first `//`. A heuristic —
/// `//` inside a string literal is cut too — but none of the scanned tokens
/// can be bisected by it into a false positive, only masked, and masking
/// requires a literal `//` mid-expression.
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Lines that do not break a contiguous comment block above a flagged line:
/// comments and attributes (an attribute may sit between the justification
/// and the expression).
fn is_comment_line(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("#[")
}

/// `needle` occurs in `code` as a standalone path token (not as a suffix of
/// a longer identifier, e.g. `MyOrdering::Relaxed`). A preceding `:` is a
/// path separator — `atomic::Ordering::Relaxed` still matches.
fn contains_token(code: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before = code[..at].chars().next_back();
        if !before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// True when line `idx` has a `// ordering:` comment on the same line or in
/// the contiguous run of comment/attribute lines directly above it.
fn has_adjacent_ordering_comment(lines: &[&str], idx: usize) -> bool {
    if lines[idx].contains("// ordering:") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        if !is_comment_line(lines[i]) {
            return false;
        }
        if lines[i].contains("// ordering:") {
            return true;
        }
    }
    false
}

/// True when line `idx` (or the line above) carries
/// `// lint: allow(<rule>)`.
fn has_exception(lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("// lint: allow({rule})");
    lines[idx].contains(&marker) || (idx > 0 && lines[idx - 1].contains(&marker))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(path: &str, source: &str) -> Vec<String> {
        lint_file(path, source)
            .into_iter()
            .map(|d| d.to_string())
            .collect()
    }

    #[test]
    fn crate_roots_must_forbid_unsafe() {
        let found = rules("crates/x/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(found.len(), 1);
        assert!(found[0].starts_with("crates/x/src/lib.rs:1: forbid-unsafe:"));
        assert!(rules(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n"
        )
        .is_empty());
        // non-root modules are not required to repeat the attribute
        assert!(rules("crates/x/src/util.rs", "pub fn f() {}\n").is_empty());
        // bin targets are crate roots too
        assert_eq!(rules("crates/x/src/bin/tool.rs", "fn main() {}\n").len(), 1);
    }

    #[test]
    fn bare_orderings_are_flagged_with_file_and_line() {
        // lint: allow(ordering-comment) -- lint self-test fixture
        let src = "fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Acquire)\n}\n";
        let found = rules("crates/x/src/m.rs", src);
        assert_eq!(found.len(), 1);
        assert!(
            found[0].starts_with("crates/x/src/m.rs:2: ordering-comment:"),
            "{}",
            found[0]
        );
    }

    #[test]
    fn ordering_comments_may_be_inline_or_in_the_block_above() {
        let inline = "let v = a.load(Ordering::Relaxed); // ordering: tally only\n";
        assert!(rules("crates/x/src/m.rs", inline).is_empty());
        let above = "// ordering: Release pairs with the reader's Acquire;\n\
                     // the slot write above must be visible first\n\
                     a.store(1, Ordering::Release);\n"; // lint: allow(ordering-comment) -- fixture
        assert!(rules("crates/x/src/m.rs", above).is_empty());
        // a non-comment line breaks the contiguous block
        // lint: allow(ordering-comment) -- lint self-test fixture
        let detached =
            "// ordering: stale justification\nlet x = 1;\na.store(x, Ordering::Release);\n";
        assert_eq!(rules("crates/x/src/m.rs", detached).len(), 1);
    }

    #[test]
    fn cmp_ordering_never_trips_the_atomic_rule() {
        let src = "fn f(a: i32, b: i32) -> std::cmp::Ordering {\n\
                       a.cmp(&b).then(std::cmp::Ordering::Less)\n}\n";
        assert!(rules("crates/x/src/m.rs", src).is_empty());
    }

    #[test]
    fn orderings_must_be_justified_even_in_test_modules() {
        // lint: allow(ordering-comment) -- lint self-test fixture
        let src = "#[cfg(test)]\nmod tests {\n    fn f(a: &A) { a.load(Ordering::SeqCst); }\n}\n";
        assert_eq!(rules("crates/x/src/m.rs", src).len(), 1);
    }

    #[test]
    fn raw_sync_is_rejected_in_service_library_code_only() {
        let src = "use std::sync::Mutex;\n";
        let found = rules("crates/service/src/m.rs", src);
        assert_eq!(found.len(), 1);
        assert!(
            found[0].starts_with("crates/service/src/m.rs:1: no-raw-sync:"),
            "{}",
            found[0]
        );
        // other crates may use std::sync directly (the shim itself must)
        assert!(rules("crates/sync/src/m.rs", src).is_empty());
        // Arc is not a blocking/ordering primitive — allowed
        assert!(rules("crates/service/src/m.rs", "use std::sync::Arc;\n").is_empty());
        // test code drives real threads on purpose
        let test_src = "#[cfg(test)]\nmod tests {\n    use std::thread;\n}\n";
        assert!(rules("crates/service/src/m.rs", test_src).is_empty());
        let named_test_file = "use std::thread;\n";
        assert!(rules("crates/service/src/model_tests.rs", named_test_file).is_empty());
    }

    #[test]
    fn unwrap_and_expect_are_rejected_in_service_and_engine() {
        for path in ["crates/service/src/m.rs", "crates/engine/src/m.rs"] {
            let found = rules(path, "fn f() { g().unwrap(); }\n");
            assert_eq!(found.len(), 1, "{path}");
            assert!(found[0].contains(": no-unwrap:"), "{}", found[0]);
            assert_eq!(rules(path, "fn f() { g().expect(\"x\"); }\n").len(), 1);
        }
        // out-of-scope crates may unwrap
        assert!(rules("crates/geom/src/m.rs", "fn f() { g().unwrap(); }\n").is_empty());
        // doc-comment examples are comments, not code
        assert!(rules(
            "crates/service/src/m.rs",
            "/// let x = g().unwrap();\nfn f() {}\n"
        )
        .is_empty());
    }

    #[test]
    fn raw_fs_is_confined_to_the_storage_backend_and_wal() {
        let src = "use std::fs;\nfn f() { std::fs::remove_file(\"x\").ok(); }\n";
        // the durable layer and the linter itself are allowed wholesale
        assert!(rules("crates/storage/src/backend.rs", src).is_empty());
        assert!(rules("crates/storage/src/wal.rs", src).is_empty());
        // the linter itself is a crate root, so satisfy forbid-unsafe too
        let root_src = format!("#![forbid(unsafe_code)]\n{src}");
        assert!(rules("tools/xtask/src/main.rs", &root_src).is_empty());
        // everything else is flagged, line by line
        let found = rules("crates/service/src/m.rs", src);
        assert_eq!(found.len(), 2);
        assert!(
            found[0].starts_with("crates/service/src/m.rs:1: no-raw-fs:"),
            "{}",
            found[0]
        );
        // the rest of the storage crate is NOT allow-listed: buffer-manager
        // code must go through its own backend abstraction too
        assert_eq!(rules("crates/storage/src/store.rs", src).len(), 2);
        // an annotated deliberate use is accepted
        let annotated = "// lint: allow(no-raw-fs) -- bench report, not durable state\n\
             let file = std::fs::File::create(&out)?;\n";
        assert!(rules("crates/bench/src/report.rs", annotated).is_empty());
        // test code cleans up scratch dirs freely
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f() { std::fs::remove_file(\"x\").ok(); }\n}\n";
        assert!(rules("crates/service/src/m.rs", test_src).is_empty());
        // comments and doc examples are not code
        assert!(rules("crates/service/src/m.rs", "//! touches `std::fs` never\n").is_empty());
    }

    #[test]
    fn allocation_is_rejected_in_kernel_modules() {
        let src = "fn f() { let v: Vec<f64> = Vec::new(); }\n";
        let found = rules("crates/geom/src/kernel.rs", src);
        assert_eq!(found.len(), 1);
        assert!(
            found[0].starts_with("crates/geom/src/kernel.rs:1: kernel-no-alloc:"),
            "{}",
            found[0]
        );
        // scoped by module name, not by crate — and harness files about
        // kernels are measurement code, not hot loops
        assert!(rules("crates/geom/src/util.rs", src).is_empty());
        assert!(rules("crates/bench/src/kernel_perf.rs", src).is_empty());
        let bin_src = format!("#![forbid(unsafe_code)]\n{src}");
        assert!(rules("crates/bench/src/bin/kernel_bench.rs", &bin_src).is_empty());
        // a `_kernel` suffix is in scope
        assert_eq!(rules("crates/x/src/score_kernel.rs", src).len(), 1);
        // method-call allocators are caught too
        for bad in [
            "fn f(w: &[f64]) { let _ = w.to_vec(); }\n",
            "fn f() { let _: Vec<u32> = (0..4).collect(); }\n",
            "fn f(s: &str) { let _ = s.to_owned(); }\n",
            "fn f() { let _ = vec![0.0; 8]; }\n",
        ] {
            assert_eq!(rules("crates/geom/src/kernel.rs", bad).len(), 1, "{bad}");
        }
        // a longer path is not bisected into a false positive
        assert!(rules("crates/geom/src/kernel.rs", "fn f() { MyVec::new(); }\n").is_empty());
        // annotated setup-path allocations are accepted
        let annotated = "// lint: allow(kernel-no-alloc) -- table construction, not a scan\n\
                         let rows: Vec<f64> = it.collect();\n";
        assert!(rules("crates/geom/src/kernel.rs", annotated).is_empty());
        // test code allocates freely
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f() { let v = Vec::new(); }\n}\n";
        assert!(rules("crates/geom/src/kernel.rs", test_src).is_empty());
    }

    #[test]
    fn exception_comments_suppress_a_single_finding() {
        let same_line = "fn f() { g().unwrap() } // lint: allow(no-unwrap) -- startup only\n";
        assert!(rules("crates/service/src/m.rs", same_line).is_empty());
        let line_above = "// lint: allow(no-unwrap) -- internal invariant: id interned above\n\
                          fn f() { g().unwrap() }\n";
        assert!(rules("crates/service/src/m.rs", line_above).is_empty());
        // the exception names a rule; a different rule's marker does not leak
        let wrong_rule = "// lint: allow(no-raw-sync) -- reason\nfn f() { g().unwrap() }\n";
        assert_eq!(rules("crates/service/src/m.rs", wrong_rule).len(), 1);
        // and it only reaches one line
        let too_far = "// lint: allow(no-unwrap) -- reason\n\nfn f() { g().unwrap() }\n";
        assert_eq!(rules("crates/service/src/m.rs", too_far).len(), 1);
    }

    #[test]
    fn commented_out_code_is_not_linted() {
        let src = "// let x = g().unwrap();\n//     a.load(Ordering::Acquire);\n";
        assert!(rules("crates/service/src/m.rs", src).is_empty());
    }
}
