//! Workspace automation. Currently one subcommand:
//!
//! ```text
//! cargo run -p xtask -- lint [--json <path>]
//! ```
//!
//! A source-level static-analysis pass for the concurrency and determinism
//! rules this workspace commits to. Still zero-dependency, but no longer a
//! line scanner: `lexer` produces a full trivia-preserving Rust token stream
//! (strings, raw strings, char literals, nested block comments, lifetimes,
//! doc comments — with byte spans), `model` recovers the item skeleton
//! (structs and fields, fn items with parameter/return types, impl blocks,
//! `#[cfg(test)]` regions), and the rules match token sequences instead of
//! substrings — text inside string literals and comments can no longer trip
//! them.
//!
//! Single-file rules (`rules`):
//!
//! * **forbid-unsafe** — every crate root (`src/lib.rs`, `src/main.rs`,
//!   `src/bin/*.rs`) carries `#![forbid(unsafe_code)]`.
//! * **ordering-comment** — every use of an atomic memory ordering
//!   (`Ordering::Relaxed` / `Acquire` / `Release` / `AcqRel` / `SeqCst`)
//!   carries an adjacent `// ordering:` justification comment: on the same
//!   line, or in the contiguous comment block directly above. The variant
//!   names are disjoint from `cmp::Ordering`'s, so comparison code never
//!   trips this rule.
//! * **no-raw-sync** — `crates/service` goes through the `pref_sync` shim:
//!   no direct `std::sync::atomic` / `std::sync::Mutex` /
//!   `std::sync::Condvar` / `std::sync::RwLock` / `std::thread` in its
//!   non-test library code (`std::sync::Arc` is fine — it has no blocking or
//!   ordering behaviour for the model scheduler to interpose on).
//! * **no-unwrap** — no `.unwrap()` / `.expect(` in non-test library code of
//!   `crates/service` and `crates/engine`.
//! * **no-raw-fs** — durable I/O is the storage crate's job: no `std::fs` in
//!   non-test library code outside the storage backend/WAL and this tool.
//! * **kernel-no-alloc** — scoring-kernel modules are hot-loop code whose
//!   steady state must not allocate.
//! * **hash-iter** — no order-dependent iteration (`.iter()` / `.keys()` /
//!   `.values()` / `for … in`) over `HashMap` / `HashSet` in solver, engine
//!   and service library code: ROADMAP item 2 (deterministic log replay)
//!   makes hash-order iteration on an output or replay path a replica
//!   divergence. Keyed lookup stays allowed.
//! * **durability-order** — in `crates/service/src/{shard,durability}.rs`,
//!   any function that takes the shard durability handle and publishes a
//!   snapshot must call `log_batch` and `sync_for_ack` before the publish:
//!   WAL append + fsync dominate the visibility point.
//! * **no-raw-net** — sockets are `crates/net`'s job: no `std::net` in
//!   non-test library code outside the front door, so every wire byte goes
//!   through the one framed, checksummed, admission-controlled path. Plain
//!   address types (`std::net::SocketAddr` & co.) are allowed anywhere.
//!   `crates/net` itself is held to the `no-raw-sync` / `no-unwrap`
//!   discipline of `crates/service` (as a separate pass, so the legacy
//!   equivalence oracle for the six classic rules stays intact).
//!
//! Whole-program analysis (`lockorder`): every mutex acquisition site in
//! `crates/service` + `crates/sync` + `crates/net`, with held-lock sets propagated through
//! the intra-workspace call graph. The resulting static lock-order graph is
//! written to `target/lint/lock-order.dot` on every run and any cycle is a
//! finding — a potential deadlock no bounded model-checking schedule needs
//! to have hit.
//!
//! Suppress a single-file finding where it is genuinely intended with an
//! exception comment on the same line or the line above:
//!
//! ```text
//! // lint: allow(no-unwrap) -- internal invariant: ids are interned above
//! ```
//!
//! Test code is exempt from the scoped rules (`no-raw-sync`, `no-unwrap`,
//! `no-raw-fs`, `kernel-no-alloc`, `hash-iter`): everything after the first
//! `#[cfg(test)]` item in a file, and whole files named `tests.rs` /
//! `*_tests.rs`. `forbid-unsafe` and `ordering-comment` apply everywhere.

#![forbid(unsafe_code)]

mod lexer;
mod lockorder;
mod model;
mod rules;

#[cfg(test)]
mod legacy_tests;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let json = match args.get(1).map(String::as_str) {
                Some("--json") => match args.get(2) {
                    Some(path) => Some(PathBuf::from(path)),
                    None => {
                        eprintln!("xtask: --json needs a path");
                        return ExitCode::FAILURE;
                    }
                },
                Some(other) => {
                    eprintln!("xtask: unknown lint flag `{other}`");
                    return ExitCode::FAILURE;
                }
                None => None,
            };
            lint_workspace(json.as_deref())
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`");
            eprintln!("usage: cargo run -p xtask -- lint [--json <path>]");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint [--json <path>]");
            ExitCode::FAILURE
        }
    }
}

fn lint_workspace(json: Option<&Path>) -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for member_dir in ["crates", "tools"] {
        collect_rs_files(&root.join(member_dir), &mut files);
    }
    files.sort();

    let mut diagnostics = Vec::new();
    let mut checked = 0usize;
    let mut lock_files = Vec::new();
    for path in &files {
        let Ok(source) = std::fs::read_to_string(path) else {
            eprintln!("xtask: cannot read {}", path.display());
            return ExitCode::FAILURE;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .display()
            .to_string();
        let cx = model::FileCtx::new(&rel, &source);
        diagnostics.extend(rules::lint_file_ctx(&cx));
        checked += 1;
        if (rel.starts_with("crates/service/src")
            || rel.starts_with("crates/sync/src")
            || rel.starts_with("crates/net/src"))
            && !rules::is_test_file(&rel)
        {
            lock_files.push(cx);
        }
    }

    let report = lockorder::analyze(&lock_files);
    let dot_path = root.join("target").join("lint").join("lock-order.dot");
    if let Some(parent) = dot_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&dot_path, lockorder::to_dot(&report)) {
        eprintln!("xtask: cannot write {}: {e}", dot_path.display());
        return ExitCode::FAILURE;
    }
    if report.acquire_sites == 0 {
        // an empty graph means the resolver silently stopped seeing locks —
        // fail loudly instead of reporting a vacuously acyclic workspace
        diagnostics.push(rules::Diagnostic {
            path: "crates/service/src".to_string(),
            line: 0,
            rule: rules::RULE_LOCK_ORDER,
            message: "lock-order analysis found no acquisition sites — the resolver has gone \
                      blind, not the workspace lock-free"
                .to_string(),
        });
    }
    diagnostics.extend(report.diagnostics);
    diagnostics.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });

    if let Some(json_path) = json {
        if let Some(parent) = json_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(json_path, render_json(&diagnostics)) {
            eprintln!("xtask: cannot write {}: {e}", json_path.display());
            return ExitCode::FAILURE;
        }
    }

    println!(
        "xtask lint: lock-order graph ({} edges, {} acquisition sites, {} cycles) -> {}",
        report.edges.len(),
        report.acquire_sites,
        report.cycles.len(),
        dot_path.display()
    );
    if diagnostics.is_empty() {
        println!("xtask lint: {checked} files clean");
        ExitCode::SUCCESS
    } else {
        for d in &diagnostics {
            println!("{d}");
        }
        println!(
            "xtask lint: {} violation(s) in {checked} files",
            diagnostics.len()
        );
        ExitCode::FAILURE
    }
}

/// Machine-readable diagnostics: a JSON array of
/// `{"rule", "path", "line", "message"}` objects, hand-rendered (the
/// zero-dependency constraint covers serialization too).
fn render_json(diagnostics: &[rules::Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diagnostics.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            json_escape(d.rule),
            json_escape(&d.path),
            d.line,
            json_escape(&d.message),
            if i + 1 < diagnostics.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `tools/xtask` lives two levels below the workspace root.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask manifest has a workspace root two levels up")
        .to_path_buf()
}

/// Recursively collects `.rs` files under `dir`, looking only inside `src/`
/// trees (integration `tests/`, `benches/` and build outputs are out of
/// scope for the library-code rules).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == "vendor" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs")
            && path.components().any(|c| c.as_os_str() == "src")
        {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_is_well_formed_and_escaped() {
        let diags = vec![
            rules::Diagnostic {
                path: "crates/x/src/a.rs".to_string(),
                line: 3,
                rule: rules::RULE_NO_UNWRAP,
                message: "uses `.unwrap()` with a \"quote\"".to_string(),
            },
            rules::Diagnostic {
                path: "crates/x/src/b.rs".to_string(),
                line: 9,
                rule: rules::RULE_HASH_ITER,
                message: "back\\slash".to_string(),
            },
        ];
        let json = render_json(&diags);
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        assert!(
            json.contains(r#""rule": "no-unwrap", "path": "crates/x/src/a.rs", "line": 3"#),
            "{json}"
        );
        assert!(json.contains(r#"a \"quote\""#), "{json}");
        assert!(json.contains(r#"back\\slash"#), "{json}");
        assert_eq!(render_json(&[]), "[\n]\n");
    }

    #[test]
    fn the_real_workspace_lints_clean() {
        // the end-to-end gate the CI job enforces, runnable locally: every
        // rule, over every file, zero findings
        let root = workspace_root();
        let mut files = Vec::new();
        for member_dir in ["crates", "tools"] {
            collect_rs_files(&root.join(member_dir), &mut files);
        }
        files.sort();
        assert!(files.len() > 20, "workspace walk found {}", files.len());
        let mut findings = Vec::new();
        for path in &files {
            let source = std::fs::read_to_string(path).unwrap();
            let rel = path
                .strip_prefix(&root)
                .unwrap_or(path)
                .display()
                .to_string();
            let cx = model::FileCtx::new(&rel, &source);
            findings.extend(rules::lint_file_ctx(&cx).into_iter().map(|d| d.to_string()));
        }
        assert!(
            findings.is_empty(),
            "lint findings:\n{}",
            findings.join("\n")
        );
    }
}
