//! Whole-program static lock-order analysis over `crates/service` +
//! `crates/sync` + `crates/net`.
//!
//! The model checker proves the shard protocols deadlock-free per scenario;
//! this pass complements it with *whole-program* coverage: every
//! lock-acquisition site, in every function, under every call path the
//! intra-workspace call graph can resolve — no schedule enumeration, no
//! scenario authoring.
//!
//! How it works, in one pass-shaped paragraph: each `Mutex`-typed struct
//! field (`Progress.state`, `SnapshotCell.slot`) and each non-field mutex
//! named by its content type (`Mutex<EngineSlot>` — the engine slot shared
//! by writer and compactor) becomes a lock node. A lexical walk of every
//! function body tracks which guards are live (guard `let`-bindings, brace
//! scopes, `drop(guard)`, guard-returning helpers like the model
//! scheduler's `fn lock(&self) -> Guard<'_>`), records each acquisition with
//! the set of locks held at that point, and records each resolvable
//! intra-workspace call with the held set too. A fixpoint then propagates
//! transitive acquisitions over the call graph, every (held, acquired) pair
//! becomes an edge labeled with its `file:line` site, and a DFS reports
//! every cycle — a static lock-order cycle is a potential deadlock even if
//! no explored schedule has hit it yet.
//!
//! Conservative choices (all misses, never false cycles): calls whose
//! receiver cannot be typed (trait objects, closures, `match`-arm bindings
//! like the shim's routed scheduler handles) contribute no edges; mutexes
//! with generic content (`Mutex<T>` inside the shim itself) are containers,
//! not program locks, and are skipped; an array of same-typed mutexes
//! (`Shared.queues`) unifies into ONE node, so ordered same-type acquisition
//! (work-stealing) would be reported — the pool deliberately never holds two
//! queue locks, and the analysis proves that stays true.

use crate::model::{FileCtx, FnItem, StructDef};
use crate::rules::{Diagnostic, RULE_LOCK_ORDER};
use std::collections::{BTreeMap, BTreeSet};

/// `(impl type, fn name)` — `None` for free functions.
pub type FnKey = (Option<String>, String);

/// One lock-acquisition or call site.
#[derive(Clone)]
pub struct Site {
    pub path: String,
    pub line: u32,
}

/// The analysis result for one workspace.
pub struct LockOrderReport {
    /// `held → acquired`, with the first site that creates each edge.
    pub edges: BTreeMap<(String, String), Site>,
    /// Total direct acquisition sites seen (0 means the resolver broke).
    pub acquire_sites: usize,
    /// Every distinct lock-order cycle, as a node sequence.
    pub cycles: Vec<Vec<String>>,
    pub diagnostics: Vec<Diagnostic>,
}

/// Renders the lock graph as Graphviz DOT (deterministic order).
pub fn to_dot(report: &LockOrderReport) -> String {
    let mut out = String::from("digraph lock_order {\n  rankdir=LR;\n");
    for ((from, to), site) in &report.edges {
        out.push_str(&format!(
            "  \"{from}\" -> \"{to}\" [label=\"{}:{}\"];\n",
            site.path, site.line
        ));
    }
    out.push_str("}\n");
    out
}

pub fn analyze(files: &[FileCtx]) -> LockOrderReport {
    let regs = Registry::build(files);

    // Pass 1: find guard-returning helpers (`fn lock(&self) -> Guard<'_>` in
    // the model scheduler): a helper is a fn returning a guard-ish type that
    // directly acquires exactly one lock. Callers binding its result hold
    // that lock until the binding dies.
    let no_helpers = BTreeMap::new();
    let first = walk_all(files, &regs, &no_helpers);
    let mut helpers: BTreeMap<FnKey, String> = BTreeMap::new();
    for (key, events) in &first {
        let f = &files[regs.fns[key].0].model.fns[regs.fns[key].1];
        if !f.ret.contains("Guard") {
            continue;
        }
        let direct: BTreeSet<&String> = events
            .iter()
            .filter_map(|e| match e {
                Event::Acquire { lock, .. } => Some(lock),
                Event::Call { .. } => None,
            })
            .collect();
        if direct.len() == 1 {
            helpers.insert(key.clone(), (*direct.iter().next().unwrap()).clone());
        }
    }

    // Pass 2: the real walk, with helper-acquired guards tracked as held.
    let events = walk_all(files, &regs, &helpers);

    // Fixpoint: transitive acquisitions over the call graph.
    let mut trans: BTreeMap<FnKey, BTreeSet<String>> = BTreeMap::new();
    for (key, evs) in &events {
        let direct = evs
            .iter()
            .filter_map(|e| match e {
                Event::Acquire { lock, .. } => Some(lock.clone()),
                Event::Call { .. } => None,
            })
            .collect();
        trans.insert(key.clone(), direct);
    }
    loop {
        let mut changed = false;
        for (key, evs) in &events {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for e in evs {
                if let Event::Call { key: callee, .. } = e {
                    if let Some(t) = trans.get(callee) {
                        add.extend(t.iter().cloned());
                    }
                }
            }
            let cur = trans.entry(key.clone()).or_default();
            for l in add {
                changed |= cur.insert(l);
            }
        }
        if !changed {
            break;
        }
    }

    // Edges: (held, acquired) from both direct acquisitions and calls.
    let mut edges: BTreeMap<(String, String), Site> = BTreeMap::new();
    let mut acquire_sites = 0usize;
    for (fi, cx) in files.iter().enumerate() {
        for key in regs.fns_in_file(fi) {
            let Some(evs) = events.get(&key) else {
                continue;
            };
            for e in evs {
                match e {
                    Event::Acquire { lock, line, held } => {
                        acquire_sites += 1;
                        for h in held {
                            edge(&mut edges, h, lock, cx, *line);
                        }
                    }
                    Event::Call {
                        key: callee,
                        line,
                        held,
                    } => {
                        if held.is_empty() {
                            continue;
                        }
                        if let Some(acquired) = trans.get(callee) {
                            for h in held {
                                for l in acquired {
                                    if h != l {
                                        edge(&mut edges, h, l, cx, *line);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    let cycles = find_cycles(&edges);
    let mut diagnostics = Vec::new();
    for cycle in &cycles {
        let mut legs = Vec::new();
        for i in 0..cycle.len() {
            let from = &cycle[i];
            let to = &cycle[(i + 1) % cycle.len()];
            if let Some(site) = edges.get(&(from.clone(), to.clone())) {
                legs.push(format!("{from} -> {to} at {}:{}", site.path, site.line));
            }
        }
        let first_site = edges
            .get(&(cycle[0].clone(), cycle[(1) % cycle.len()].clone()))
            .cloned()
            .unwrap_or(Site {
                path: String::new(),
                line: 0,
            });
        diagnostics.push(Diagnostic {
            path: first_site.path,
            line: first_site.line,
            rule: RULE_LOCK_ORDER,
            message: format!(
                "static lock-order cycle ({}): {}",
                cycle.join(" -> "),
                legs.join("; ")
            ),
        });
    }

    LockOrderReport {
        edges,
        acquire_sites,
        cycles,
        diagnostics,
    }
}

fn edge(
    edges: &mut BTreeMap<(String, String), Site>,
    from: &str,
    to: &str,
    cx: &FileCtx,
    line: u32,
) {
    edges
        .entry((from.to_string(), to.to_string()))
        .or_insert(Site {
            path: cx.path.clone(),
            line,
        });
}

/// DFS cycle enumeration; each cycle reported once, rotated to start at its
/// smallest node.
fn find_cycles(edges: &BTreeMap<(String, String), Site>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
        adj.entry(to).or_default();
    }
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut state: BTreeMap<&str, u8> = BTreeMap::new(); // 1 = on stack, 2 = done
    let mut stack: Vec<&str> = Vec::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();

    fn dfs<'a>(
        n: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        state: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
        seen: &mut BTreeSet<Vec<String>>,
    ) {
        state.insert(n, 1);
        stack.push(n);
        for &m in adj.get(n).into_iter().flatten() {
            match state.get(m).copied().unwrap_or(0) {
                0 => dfs(m, adj, state, stack, seen),
                1 => {
                    let start = stack.iter().position(|&x| x == m).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[start..].iter().map(|s| s.to_string()).collect();
                    // rotate to the smallest node for a canonical form
                    let min = cycle
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min);
                    seen.insert(cycle);
                }
                _ => {}
            }
        }
        stack.pop();
        state.insert(n, 2);
    }

    for n in nodes {
        if state.get(n).copied().unwrap_or(0) == 0 {
            dfs(n, &adj, &mut state, &mut stack, &mut seen);
        }
    }
    seen.into_iter().collect()
}

// ---- registry -------------------------------------------------------------

struct Registry<'a> {
    structs: BTreeMap<&'a str, &'a StructDef>,
    /// `(impl type, name)` → (file index, fn index); first definition wins
    /// (the shim and passthrough builds define identically-shaped types).
    fns: BTreeMap<FnKey, (usize, usize)>,
}

impl<'a> Registry<'a> {
    fn build(files: &'a [FileCtx]) -> Registry<'a> {
        let mut structs = BTreeMap::new();
        let mut fns = BTreeMap::new();
        for (fi, cx) in files.iter().enumerate() {
            for s in &cx.model.structs {
                structs.entry(s.name.as_str()).or_insert(s);
            }
            for (gi, f) in cx.model.fns.iter().enumerate() {
                if f.in_test || f.body.is_none() {
                    continue;
                }
                fns.entry(crate::rules::fn_key(f)).or_insert((fi, gi));
            }
        }
        Registry { structs, fns }
    }

    fn fns_in_file(&self, fi: usize) -> Vec<FnKey> {
        let mut keys: Vec<(usize, FnKey)> = self
            .fns
            .iter()
            .filter(|(_, &(f, _))| f == fi)
            .map(|(k, &(_, gi))| (gi, k.clone()))
            .collect();
        keys.sort();
        keys.into_iter().map(|(_, k)| k).collect()
    }
}

/// `Mutex<…>` / `StdMutex<…>` content type, if the type is a mutex.
/// `MutexGuard<…>` is not (its base name ends in `Guard`).
fn mutex_content(ty: &str) -> Option<String> {
    let base = base_name(ty);
    if !(base == "Mutex" || base.ends_with("Mutex")) {
        return None;
    }
    let open = ty.find('<')?;
    let mut depth = 0usize;
    for (i, c) in ty[open..].char_indices() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return Some(ty[open + 1..open + i].trim().to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Strips references, lifetimes and transparent wrappers
/// (`Arc`/`Rc`/`Box`/`Option`), keeping the payload's own generics:
/// `&'a Arc<Mutex<EngineSlot>>` → `Mutex<EngineSlot>`.
fn ty_base(ty: &str) -> String {
    let mut t = ty.trim();
    loop {
        t = t.trim_start_matches('&').trim();
        if let Some(rest) = t.strip_prefix("mut ") {
            t = rest.trim();
            continue;
        }
        if t.starts_with('\'') {
            match t.find(' ') {
                Some(sp) => {
                    t = t[sp..].trim();
                    continue;
                }
                None => break,
            }
        }
        let mut unwrapped = false;
        for w in ["Arc<", "Rc<", "Box<", "Option<"] {
            if t.starts_with(w) && t.ends_with('>') {
                t = t[w.len()..t.len() - 1].trim();
                unwrapped = true;
                break;
            }
        }
        if !unwrapped {
            break;
        }
    }
    // last path segment (`std::sync::Mutex<T>` → `Mutex<T>`), path-sep
    // search limited to before the generics
    let cut = t.find('<').unwrap_or(t.len());
    match t[..cut].rfind("::") {
        Some(at) => t[at + 2..].to_string(),
        None => t.to_string(),
    }
}

/// The struct-registry name of a type: base, generics cut.
fn base_name(ty: &str) -> String {
    let b = ty_base(ty);
    match b.find('<') {
        Some(at) => b[..at].to_string(),
        None => b,
    }
}

fn is_plain_ident(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

// ---- per-function walk ----------------------------------------------------

enum Event {
    Acquire {
        lock: String,
        line: u32,
        held: Vec<String>,
    },
    Call {
        key: FnKey,
        line: u32,
        held: Vec<String>,
    },
}

#[derive(Clone)]
enum Binding {
    Val(String),
    Guard { content: String },
}

fn walk_all<'a>(
    files: &'a [FileCtx],
    regs: &Registry<'a>,
    helpers: &BTreeMap<FnKey, String>,
) -> BTreeMap<FnKey, Vec<Event>> {
    let mut out = BTreeMap::new();
    for (key, &(fi, gi)) in &regs.fns {
        let cx = &files[fi];
        let f = &cx.model.fns[gi];
        let mut w = Walker {
            cx,
            f,
            regs,
            helpers,
            scopes: vec![Vec::new()],
            held: Vec::new(),
            events: Vec::new(),
        };
        w.run();
        out.insert(key.clone(), w.events);
    }
    out
}

struct Walker<'a, 'r> {
    cx: &'a FileCtx,
    f: &'a FnItem,
    regs: &'r Registry<'a>,
    helpers: &'r BTreeMap<FnKey, String>,
    /// Innermost scope last; each holds (name, binding).
    scopes: Vec<Vec<(String, Binding)>>,
    /// Live guards: (binding name, lock id).
    held: Vec<(String, String)>,
    events: Vec<Event>,
}

impl Walker<'_, '_> {
    fn run(&mut self) {
        for p in &self.f.params {
            if !p.name.is_empty() {
                self.bind(p.name.clone(), Binding::Val(p.ty.clone()));
            }
        }
        let Some((open, close)) = self.f.body else {
            return;
        };
        let mut si = open;
        while si <= close {
            si = self.step(si, close);
        }
    }

    fn bind(&mut self, name: String, b: Binding) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.push((name, b));
        }
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some((_, b)) = scope.iter().rev().find(|(n, _)| n == name) {
                return Some(b);
            }
        }
        None
    }

    fn held_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.held.iter().map(|(_, l)| l.clone()).collect();
        ids.dedup();
        ids
    }

    fn release(&mut self, name: &str) {
        if let Some(at) = self.held.iter().rposition(|(n, _)| n == name) {
            self.held.remove(at);
        }
    }

    /// Processes the token at `si`; returns the next index to process.
    fn step(&mut self, si: usize, close: usize) -> usize {
        let cx = self.cx;
        if cx.is_punct(si, '{') {
            self.scopes.push(Vec::new());
            return si + 1;
        }
        if cx.is_punct(si, '}') {
            if let Some(scope) = self.scopes.pop() {
                for (name, b) in &scope {
                    if matches!(b, Binding::Guard { .. }) {
                        self.release(name);
                    }
                }
            }
            return si + 1;
        }
        if cx.is_ident(si, "let") {
            return self.handle_let(si, close);
        }
        // drop(guard) releases before scope end
        if cx.is_ident(si, "drop")
            && cx.is_punct(si + 1, '(')
            && cx.skind(si + 2) == crate::lexer::TokKind::Ident
            && cx.is_punct(si + 3, ')')
        {
            let name = cx.st(si + 2).to_string();
            self.release(&name);
            return si + 4;
        }
        // `recv.method(` — acquisition when method is `lock`, else a call
        if cx.is_punct(si, '.')
            && cx.skind(si + 1) == crate::lexer::TokKind::Ident
            && cx.is_punct(si + 2, '(')
        {
            let method = cx.st(si + 1).to_string();
            let line = cx.sline(si + 1);
            if method == "lock" {
                if let Some((lock, _)) = self.resolve_lock(si) {
                    self.events.push(Event::Acquire {
                        lock,
                        line,
                        held: self.held_ids(),
                    });
                }
                return si + 3;
            }
            if let Some(ty) = self.receiver_ty(si) {
                let key = (Some(base_name(&ty)), method);
                if self.regs.fns.contains_key(&key) {
                    self.events.push(Event::Call {
                        key,
                        line,
                        held: self.held_ids(),
                    });
                }
            }
            return si + 3;
        }
        // `Type::method(…)` and free `name(…)` calls
        if cx.skind(si) == crate::lexer::TokKind::Ident {
            let prev_dotted = si > 0 && (cx.is_punct(si - 1, '.') || cx.is_punct(si - 1, ':'));
            if !prev_dotted {
                if cx.is_punct(si + 1, ':')
                    && cx.is_punct(si + 2, ':')
                    && cx.skind(si + 3) == crate::lexer::TokKind::Ident
                    && cx.is_punct(si + 4, '(')
                {
                    let owner = if cx.st(si) == "Self" {
                        self.f.impl_type.clone()
                    } else {
                        Some(cx.st(si).to_string())
                    };
                    let key = (owner, cx.st(si + 3).to_string());
                    if self.regs.fns.contains_key(&key) {
                        self.events.push(Event::Call {
                            key,
                            line: cx.sline(si + 3),
                            held: self.held_ids(),
                        });
                    }
                    return si + 5;
                }
                if cx.is_punct(si + 1, '(') {
                    let key = (None, cx.st(si).to_string());
                    if self.regs.fns.contains_key(&key) {
                        self.events.push(Event::Call {
                            key,
                            line: cx.sline(si),
                            held: self.held_ids(),
                        });
                    }
                    return si + 2;
                }
            }
        }
        si + 1
    }

    /// `let [mut] name [: ty] = init ;` plus `if let` / `while let`.
    fn handle_let(&mut self, si: usize, close: usize) -> usize {
        let cx = self.cx;
        if si > 0 && (cx.is_ident(si - 1, "if") || cx.is_ident(si - 1, "while")) {
            return self.handle_cond_let(si, close);
        }
        let mut j = si + 1;
        if cx.is_ident(j, "mut") {
            j += 1;
        }
        if cx.skind(j) != crate::lexer::TokKind::Ident {
            return si + 1; // destructuring pattern: no binding tracked
        }
        let name = cx.st(j).to_string();
        let mut k = j + 1;
        let mut explicit_ty = None;
        if cx.is_punct(k, ':') {
            let ty_start = k + 1;
            let mut depth = 0usize;
            k = ty_start;
            while k < close {
                if cx.is_punct(k, '<') {
                    depth += 1;
                } else if cx.is_punct(k, '>') && !cx.is_punct(k - 1, '-') {
                    depth = depth.saturating_sub(1);
                } else if cx.is_punct(k, '(') || cx.is_punct(k, '[') {
                    k = cx.matching(k);
                } else if depth == 0 && (cx.is_punct(k, '=') || cx.is_punct(k, ';')) {
                    break;
                }
                k += 1;
            }
            explicit_ty = Some(cx.render(ty_start, k));
        }
        if cx.is_punct(k, ';') {
            if let Some(ty) = explicit_ty {
                self.bind(name, Binding::Val(ty));
            }
            return k + 1;
        }
        if !cx.is_punct(k, '=') {
            return si + 1;
        }
        let init = k + 1;

        // a pure guard chain: `<chain>.lock()` (+ tolerated residuals) `;`
        if let Some((chain, after)) = self.chain_forward(init, close) {
            // `<chain>.lock()` …
            if cx.is_punct(after, '.')
                && cx.is_ident(after + 1, "lock")
                && cx.is_punct(after + 2, '(')
            {
                let call_close = cx.matching(after + 2);
                if let Some(semi) = self.residuals_then_semi(call_close + 1, close) {
                    if let Some((lock, content)) = self.resolve_chain_lock(&chain) {
                        self.events.push(Event::Acquire {
                            lock: lock.clone(),
                            line: cx.sline(after + 1),
                            held: self.held_ids(),
                        });
                        self.held.push((name.clone(), lock));
                        self.bind(name, Binding::Guard { content });
                        return semi + 1;
                    }
                }
            }
            // `<chain>.helper()` where the helper returns a guard
            if cx.is_punct(after, '.')
                && cx.skind(after + 1) == crate::lexer::TokKind::Ident
                && cx.is_punct(after + 2, '(')
            {
                let call_close = cx.matching(after + 2);
                if let Some(semi) = self.residuals_then_semi(call_close + 1, close) {
                    if let Some(ty) = self.chain_ty(&chain) {
                        let key = (Some(base_name(&ty)), cx.st(after + 1).to_string());
                        if let Some(lock) = self.helpers.get(&key).cloned() {
                            self.events.push(Event::Call {
                                key,
                                line: cx.sline(after + 1),
                                held: self.held_ids(),
                            });
                            let content = mutex_content(&lock).unwrap_or_default();
                            self.held.push((name.clone(), lock));
                            self.bind(name, Binding::Guard { content });
                            return semi + 1;
                        }
                    }
                }
            }
            // a pure value chain (`let lock = guard.lock;`): type the binding
            if cx.is_punct(after, ';') {
                if let Some(ty) = explicit_ty.clone().or_else(|| self.chain_ty(&chain)) {
                    self.bind(name, Binding::Val(ty));
                }
                return after + 1;
            }
        }

        // general initializer: record the binding's type (explicit annotation
        // or constructor inference) and scan the initializer normally
        let ty = explicit_ty.or_else(|| self.infer_init_ty(init, close));
        if let Some(ty) = ty {
            self.bind(name, Binding::Val(ty));
        }
        init
    }

    /// `if let` / `while let`: binds `Some(name) = <chain>[.as_mut()/as_ref()]`
    /// by unwrapping one `Option`; other patterns bind nothing.
    fn handle_cond_let(&mut self, si: usize, close: usize) -> usize {
        let cx = self.cx;
        if !(cx.is_ident(si + 1, "Some")
            && cx.is_punct(si + 2, '(')
            && cx.skind(si + 3) == crate::lexer::TokKind::Ident
            && cx.is_punct(si + 4, ')')
            && cx.is_punct(si + 5, '='))
        {
            return si + 1;
        }
        let name = cx.st(si + 3).to_string();
        let expr = si + 6;
        if let Some((chain, mut after)) = self.chain_forward(expr, close) {
            // tolerate one `.as_mut()` / `.as_ref()` / `.as_deref()`
            if cx.is_punct(after, '.')
                && ["as_mut", "as_ref", "as_deref"]
                    .iter()
                    .any(|m| cx.is_ident(after + 1, m))
                && cx.is_punct(after + 2, '(')
            {
                after = cx.matching(after + 2) + 1;
            }
            if cx.is_punct(after, '{') {
                if let Some(ty) = self.chain_ty(&chain) {
                    let b = ty_base(&ty); // unwraps Option (and Arc/&)
                    self.bind(name, Binding::Val(b));
                }
                return after; // the `{` opens the body scope normally
            }
        }
        si + 6
    }

    /// Reads `[&][mut] ident (.ident | [index])*` starting at `si`; returns
    /// the chain names and the index just past it.
    fn chain_forward(&self, si: usize, close: usize) -> Option<(Vec<String>, usize)> {
        let cx = self.cx;
        let mut j = si;
        while cx.is_punct(j, '&') || cx.is_ident(j, "mut") {
            j += 1;
        }
        if cx.skind(j) != crate::lexer::TokKind::Ident || j >= close {
            return None;
        }
        let mut chain = vec![cx.st(j).to_string()];
        j += 1;
        loop {
            if cx.is_punct(j, '[') {
                j = cx.matching(j) + 1;
                continue;
            }
            if cx.is_punct(j, '.')
                && cx.skind(j + 1) == crate::lexer::TokKind::Ident
                && !cx.is_punct(j + 2, '(')
            {
                chain.push(cx.st(j + 1).to_string());
                j += 2;
                continue;
            }
            break;
        }
        Some((chain, j))
    }

    /// Zero or more `.unwrap_or_else(…)` / `.unwrap()` / `.expect(…)` then `;`.
    fn residuals_then_semi(&self, si: usize, close: usize) -> Option<usize> {
        let cx = self.cx;
        let mut j = si;
        while j < close {
            if cx.is_punct(j, ';') {
                return Some(j);
            }
            if cx.is_punct(j, '.')
                && ["unwrap_or_else", "unwrap", "expect"]
                    .iter()
                    .any(|m| cx.is_ident(j + 1, m))
                && cx.is_punct(j + 2, '(')
            {
                j = cx.matching(j + 2) + 1;
                continue;
            }
            return None;
        }
        None
    }

    /// The lock acquired by `<chain>.lock(` with the `.` at `si_dot`
    /// (receiver collected backwards).
    fn resolve_lock(&self, si_dot: usize) -> Option<(String, String)> {
        let chain = self.chain_backward(si_dot)?;
        self.resolve_chain_lock(&chain)
    }

    /// Receiver chain ending just before `si_dot`, walking back through
    /// `.field` hops and `[index]` strips. A `)` (call result) or `::`
    /// (path) receiver is unresolvable.
    fn chain_backward(&self, si_dot: usize) -> Option<Vec<String>> {
        let cx = self.cx;
        let mut chain = Vec::new();
        let mut k = si_dot;
        loop {
            let mut p = k.checked_sub(1)?;
            if cx.is_punct(p, ']') {
                // backward-matching bracket scan
                let mut depth = 0usize;
                loop {
                    if cx.is_punct(p, ']') {
                        depth += 1;
                    } else if cx.is_punct(p, '[') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    p = p.checked_sub(1)?;
                }
                p = p.checked_sub(1)?;
            }
            if cx.skind(p) != crate::lexer::TokKind::Ident {
                return None;
            }
            chain.push(cx.st(p).to_string());
            if p > 0 && cx.is_punct(p - 1, '.') {
                if p > 1 && cx.is_punct(p - 2, ')') {
                    return None; // receiver is a call result
                }
                k = p - 1;
                continue;
            }
            if p > 0 && cx.is_punct(p - 1, ':') {
                return None; // path-qualified receiver
            }
            break;
        }
        chain.reverse();
        Some(chain)
    }

    /// Resolves a chain to `(lock id, content type)` when its type is a
    /// non-generic mutex. Field locks are `Owner.field`; others unify by
    /// content as `Mutex<Content>`.
    fn resolve_chain_lock(&self, chain: &[String]) -> Option<(String, String)> {
        let (ty, last_field) = self.chain_ty_with_field(chain)?;
        let base = ty_base(&ty);
        let content = mutex_content(&base)?;
        match last_field {
            Some((owner, field, owner_generics)) => {
                if owner_generics.contains(&content) {
                    return None; // a generic container, not a program lock
                }
                Some((format!("{owner}.{field}"), content))
            }
            None => {
                if !is_plain_ident(&content) || self.f.generics.contains(&content) {
                    return None;
                }
                Some((format!("Mutex<{content}>"), content))
            }
        }
    }

    fn chain_ty(&self, chain: &[String]) -> Option<String> {
        self.chain_ty_with_field(chain).map(|(ty, _)| ty)
    }

    /// Walks a chain through the struct registry; returns the final type and
    /// the last `.field` hop (owner base name, field, owner generics).
    #[allow(clippy::type_complexity)]
    fn chain_ty_with_field(
        &self,
        chain: &[String],
    ) -> Option<(String, Option<(String, String, Vec<String>)>)> {
        let head = chain.first()?;
        let mut cur: String = if head == "self" {
            self.f.impl_type.clone()?
        } else {
            match self.lookup(head)? {
                Binding::Val(ty) => ty.clone(),
                Binding::Guard { content, .. } => content.clone(),
            }
        };
        let mut last_field = None;
        for part in &chain[1..] {
            let owner = base_name(&cur);
            let s = self.regs.structs.get(owner.as_str())?;
            let field = s.fields.iter().find(|f| f.name == *part)?;
            last_field = Some((owner, part.clone(), s.generics.clone()));
            cur = field.ty.clone();
        }
        Some((cur, last_field))
    }

    /// Method-call receiver type (for `recv.method(…)` resolution).
    fn receiver_ty(&self, si_dot: usize) -> Option<String> {
        let chain = self.chain_backward(si_dot)?;
        self.chain_ty(&chain)
    }

    /// Constructor-shape inference for `let` initializers:
    /// `Arc::new(inner)` recurses, `Mutex::new(X …)` → `Mutex<X>`,
    /// `X { …` → `X`, `a::b::X::ctor(…)` → `X`.
    fn infer_init_ty(&self, si: usize, close: usize) -> Option<String> {
        let cx = self.cx;
        let mut j = si;
        while cx.is_punct(j, '&') || cx.is_ident(j, "mut") {
            j += 1;
        }
        if cx.skind(j) != crate::lexer::TokKind::Ident || j >= close {
            return None;
        }
        // collect the leading `a::b::C` path
        let mut segs = vec![cx.st(j).to_string()];
        let mut k = j + 1;
        while cx.is_punct(k, ':')
            && cx.is_punct(k + 1, ':')
            && cx.skind(k + 2) == crate::lexer::TokKind::Ident
        {
            segs.push(cx.st(k + 2).to_string());
            k += 3;
        }
        if cx.is_punct(k, '<') {
            // turbofish or generic ctor — take the path head as the type
            return Some(segs[segs.len().saturating_sub(2)].clone());
        }
        if cx.is_punct(k, '{') {
            return Some(segs.last().cloned().unwrap_or_default());
        }
        if !cx.is_punct(k, '(') || segs.len() < 2 {
            return None;
        }
        let ty_seg = segs[segs.len() - 2].clone();
        if ty_seg == "Arc" || ty_seg == "Rc" || ty_seg == "Box" {
            return self.infer_init_ty(k + 1, cx.matching(k));
        }
        if ty_seg == "Mutex" || ty_seg.ends_with("Mutex") {
            // Mutex::new(Content …)
            let inner = k + 1;
            if cx.skind(inner) == crate::lexer::TokKind::Ident {
                return Some(format!("Mutex<{}>", cx.st(inner)));
            }
            return None;
        }
        Some(ty_seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_src(srcs: &[(&str, &str)]) -> LockOrderReport {
        let files: Vec<FileCtx> = srcs
            .iter()
            .map(|(path, src)| FileCtx::new(path, src))
            .collect();
        analyze(&files)
    }

    fn edge_set(report: &LockOrderReport) -> Vec<(String, String)> {
        report.edges.keys().cloned().collect()
    }

    #[test]
    fn planted_three_mutex_cycle_through_the_call_graph_is_found() {
        // The seeded violation the acceptance criteria require: a 3-mutex
        // cycle where one leg (b -> c) exists only because `second` calls
        // `third` while holding b — no single function contains it.
        let src = "struct Planted { a: Mutex<Alpha>, b: Mutex<Beta>, c: Mutex<Gamma> }\n\
                   impl Planted {\n\
                       fn first(&self) {\n\
                           let ga = self.a.lock();\n\
                           let gb = self.b.lock();\n\
                           drop(gb);\n\
                           drop(ga);\n\
                       }\n\
                       fn second(&self) {\n\
                           let gb = self.b.lock();\n\
                           self.third();\n\
                       }\n\
                       fn third(&self) {\n\
                           let gc = self.c.lock();\n\
                       }\n\
                       fn fourth(&self) {\n\
                           let gc = self.c.lock();\n\
                           let ga = self.a.lock();\n\
                       }\n\
                   }\n";
        let report = analyze_src(&[("crates/service/src/planted.rs", src)]);
        let edges = edge_set(&report);
        let e = |a: &str, b: &str| (a.to_string(), b.to_string());
        assert!(edges.contains(&e("Planted.a", "Planted.b")), "{edges:?}");
        assert!(edges.contains(&e("Planted.b", "Planted.c")), "{edges:?}");
        assert!(edges.contains(&e("Planted.c", "Planted.a")), "{edges:?}");
        // the call-graph leg is sited at the `third()` call, line 11
        let site = &report.edges[&e("Planted.b", "Planted.c")];
        assert_eq!(
            (site.path.as_str(), site.line),
            ("crates/service/src/planted.rs", 11)
        );
        assert!(
            report.cycles.iter().any(|c| c.len() == 3),
            "expected the 3-lock cycle, got {:?}",
            report.cycles
        );
        assert_eq!(report.diagnostics.len(), 1);
        let rendered = report.diagnostics[0].to_string();
        assert!(
            rendered.starts_with("crates/service/src/planted.rs:")
                && rendered.contains("lock-order"),
            "{rendered}"
        );
        assert!(rendered.contains("Planted.a -> Planted.b"), "{rendered}");
    }

    #[test]
    fn scope_end_and_drop_both_release_guards() {
        let scoped = "struct S { a: Mutex<Alpha>, b: Mutex<Beta> }\n\
                      impl S {\n\
                          fn f(&self) {\n\
                              { let ga = self.a.lock(); }\n\
                              let gb = self.b.lock();\n\
                          }\n\
                      }\n";
        let report = analyze_src(&[("crates/service/src/x.rs", scoped)]);
        assert!(report.edges.is_empty(), "{:?}", edge_set(&report));
        assert_eq!(report.acquire_sites, 2);

        let dropped = "struct S { a: Mutex<Alpha>, b: Mutex<Beta> }\n\
                       impl S {\n\
                           fn f(&self) {\n\
                               let ga = self.a.lock();\n\
                               drop(ga);\n\
                               let gb = self.b.lock();\n\
                           }\n\
                       }\n";
        let report = analyze_src(&[("crates/service/src/x.rs", dropped)]);
        assert!(report.edges.is_empty(), "{:?}", edge_set(&report));

        let nested = "struct S { a: Mutex<Alpha>, b: Mutex<Beta> }\n\
                      impl S {\n\
                          fn f(&self) {\n\
                              let ga = self.a.lock();\n\
                              let gb = self.b.lock();\n\
                          }\n\
                      }\n";
        let report = analyze_src(&[("crates/service/src/x.rs", nested)]);
        assert_eq!(
            edge_set(&report),
            vec![("S.a".to_string(), "S.b".to_string())]
        );
    }

    #[test]
    fn non_field_mutexes_unify_by_content_type() {
        // the engine-slot shape: a standalone Mutex created by the owner,
        // passed to two loops by reference — same lock either way
        let src = "struct Cell { slot: Mutex<Snap> }\n\
                   impl Cell {\n\
                       fn publish(&self) { let s = self.slot.lock(); }\n\
                   }\n\
                   fn writer(m: &Mutex<Engine>, cell: &Cell) {\n\
                       let g = m.lock();\n\
                       cell.publish();\n\
                       drop(g);\n\
                   }\n\
                   fn compactor(m: &Mutex<Engine>, cell: &Cell) {\n\
                       let g = m.lock();\n\
                       cell.publish();\n\
                       drop(g);\n\
                   }\n";
        let report = analyze_src(&[("crates/service/src/x.rs", src)]);
        assert_eq!(
            edge_set(&report),
            vec![("Mutex<Engine>".to_string(), "Cell.slot".to_string())]
        );
        assert!(report.cycles.is_empty());
        // first site wins: writer's call, line 7
        assert_eq!(report.edges.values().next().unwrap().line, 7);
    }

    #[test]
    fn generic_mutex_containers_are_not_program_locks() {
        // the shim shape: Mutex<T> wrapping std::sync::Mutex<T>
        let src = "struct Mutex<T> { inner: StdMutex<T> }\n\
                   impl<T> Mutex<T> {\n\
                       fn lock(&self) { let g = self.inner.lock(); }\n\
                   }\n";
        let report = analyze_src(&[("crates/sync/src/x.rs", src)]);
        assert_eq!(report.acquire_sites, 0);
        assert!(report.edges.is_empty());
    }

    #[test]
    fn guard_returning_helpers_track_heldness_at_the_caller() {
        // the model scheduler shape: lock() returns the guard, callers hold
        // it across calls
        let src = "struct Sched { state: Mutex<State>, journal: Mutex<Journal> }\n\
                   impl Sched {\n\
                       fn lock(&self) -> Guard<'_> { self.state.lock() }\n\
                       fn log(&self) { let j = self.journal.lock(); }\n\
                       fn step(&self) {\n\
                           let st = self.lock();\n\
                           self.log();\n\
                       }\n\
                   }\n";
        let report = analyze_src(&[("crates/sync/src/x.rs", src)]);
        assert_eq!(
            edge_set(&report),
            vec![("Sched.state".to_string(), "Sched.journal".to_string())]
        );
    }

    #[test]
    fn unresolvable_receivers_contribute_nothing() {
        // match-arm bindings (the shim's routed scheduler handle) cannot be
        // typed: conservatively no events, never a false edge
        let src = "struct S { a: Mutex<Alpha> }\n\
                   impl S {\n\
                       fn f(&self, o: Option<Helper>) {\n\
                           let ga = self.a.lock();\n\
                           match o {\n\
                               Some(h) => h.go(),\n\
                               None => {}\n\
                           }\n\
                       }\n\
                   }\n";
        let report = analyze_src(&[("crates/service/src/x.rs", src)]);
        assert!(report.edges.is_empty());
        assert_eq!(report.acquire_sites, 1);
    }

    #[test]
    fn dot_output_is_deterministic_and_labeled() {
        let src = "struct S { a: Mutex<Alpha>, b: Mutex<Beta> }\n\
                   impl S {\n\
                       fn f(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n\
                   }\n";
        let report = analyze_src(&[("crates/service/src/x.rs", src)]);
        let dot = to_dot(&report);
        assert!(dot.starts_with("digraph lock_order {"), "{dot}");
        assert!(
            dot.contains("\"S.a\" -> \"S.b\" [label=\"crates/service/src/x.rs:3\"];"),
            "{dot}"
        );
    }

    #[test]
    fn real_workspace_graph_is_nonempty_acyclic_and_pins_the_shard_protocol() {
        let root = crate::workspace_root();
        let mut files = Vec::new();
        for dir in ["crates/service/src", "crates/sync/src", "crates/net/src"] {
            let mut paths = Vec::new();
            collect(&root.join(dir), &mut paths);
            paths.sort();
            for p in paths {
                let rel = p
                    .strip_prefix(&root)
                    .unwrap_or(&p)
                    .to_string_lossy()
                    .replace('\\', "/");
                if crate::rules::is_test_file(&rel) {
                    continue;
                }
                let src = std::fs::read_to_string(&p).unwrap();
                files.push(FileCtx::new(&rel, &src));
            }
        }
        let report = analyze(&files);
        assert!(report.acquire_sites > 0, "the lock resolver went blind");
        assert!(!report.edges.is_empty(), "no lock ordering found at all");
        assert!(
            report.cycles.is_empty(),
            "lock-order cycle in the real workspace: {:?}",
            report.cycles
        );
        // The two-publisher snapshot protocol (PR 8) must be visible: both
        // publishers install snapshots while holding the engine slot, and
        // stats() reads the cell while holding the progress lock.
        let e = |a: &str, b: &str| (a.to_string(), b.to_string());
        let edges = edge_set(&report);
        assert!(
            edges.contains(&e("Mutex<EngineSlot>", "SnapshotCell.slot")),
            "missing the publish-under-slot edge: {edges:?}"
        );
        assert!(
            edges.contains(&e("Progress.state", "SnapshotCell.slot")),
            "missing the stats-under-progress edge: {edges:?}"
        );
    }

    fn collect(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                collect(&path, out);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
}
