//! The paper's running example (Figure 1 and Table 1): three students fill in
//! a preference form over internship positions; the system translates the
//! forms into normalized linear functions and computes the fair assignment.
//!
//! ```text
//! cargo run --release --example internship
//! ```

use fair_assignment::geom::{normalize_weights, LinearFunction, Point};
use fair_assignment::{solve, ObjectRecord, PreferenceFunction, Problem};

/// A filled-in preference form (Table 1): marks from 1 (lowest) to 5 (highest)
/// per attribute.
struct PreferenceForm {
    student: &'static str,
    salary_mark: u8,
    standing_mark: u8,
}

fn main() {
    let forms = [
        PreferenceForm {
            student: "Ada",
            salary_mark: 4,
            standing_mark: 1,
        }, // 0.8X + 0.2Y
        PreferenceForm {
            student: "Ben",
            salary_mark: 1,
            standing_mark: 4,
        }, // 0.2X + 0.8Y
        PreferenceForm {
            student: "Cleo",
            salary_mark: 1,
            standing_mark: 1,
        }, // 0.5X + 0.5Y
    ];

    // Translate the forms into normalized preference functions.
    let functions: Vec<PreferenceFunction> = forms
        .iter()
        .enumerate()
        .map(|(i, form)| {
            let weights = normalize_weights(&[form.salary_mark as f64, form.standing_mark as f64])
                .expect("marks are positive");
            println!(
                "{}'s form (salary {}, standing {}) becomes f{} = {:.1}·salary + {:.1}·standing",
                form.student, form.salary_mark, form.standing_mark, i, weights[0], weights[1]
            );
            PreferenceFunction::new(i, LinearFunction::from_normalized(weights).unwrap())
        })
        .collect();

    // The four open positions of Figure 1 (salary, company standing) in [0,1].
    let positions = [
        ("a: fintech analyst", [0.5, 0.6]),
        ("b: research lab", [0.2, 0.7]),
        ("c: trading desk", [0.8, 0.2]),
        ("d: web agency", [0.4, 0.4]),
    ];
    let objects: Vec<ObjectRecord> = positions
        .iter()
        .enumerate()
        .map(|(i, (_, attrs))| ObjectRecord::new(i as u64, Point::from_slice(attrs)))
        .collect();

    let problem = Problem::new(functions, objects).expect("valid instance");
    let assignment = solve(&problem);

    println!("\nfair (stable) assignment:");
    for pair in assignment.pairs() {
        let student = forms[pair.function.0].student;
        let (position, _) = positions[pair.object.0 as usize];
        println!("  {student:<5} -> {position:<22} (score {:.2})", pair.score);
    }
    // Matches the paper's walkthrough: Ada gets c, Ben gets b, Cleo gets a;
    // position d stays open.
    assert_eq!(
        assignment
            .object_of(fair_assignment::FunctionId(0))
            .unwrap()
            .0,
        2
    );
    assert_eq!(
        assignment
            .object_of(fair_assignment::FunctionId(1))
            .unwrap()
            .0,
        1
    );
    assert_eq!(
        assignment
            .object_of(fair_assignment::FunctionId(2))
            .unwrap()
            .0,
        0
    );
    println!("\nposition d is left unassigned — no student preferred it over their match.");
}
