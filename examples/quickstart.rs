//! Quick start: generate a synthetic workload, compute the fair assignment,
//! and verify that it is stable.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fair_assignment::datagen::{anti_correlated_objects, uniform_weight_functions};
use fair_assignment::{sb, verify_stable, Problem, SbOptions};

fn main() {
    // 200 users with independently drawn preference weights over 4 attributes,
    // competing for 5,000 anti-correlated objects.
    let functions = uniform_weight_functions(200, 4, 42);
    let objects = anti_correlated_objects(5_000, 4, 43);
    let problem = Problem::from_parts(functions, objects).expect("valid workload");

    // Index the objects with a disk-style R-tree (4 KiB pages, 2% LRU buffer)
    // and run the paper's SB algorithm with all optimizations enabled.
    let mut tree = problem.build_tree(None, 0.02);
    let result = sb(&problem, &mut tree, &SbOptions::default());

    println!("assigned {} pairs", result.assignment.len());
    println!(
        "I/O accesses: {}   CPU: {:.3}s   peak search memory: {:.2} MiB   loops: {}",
        result.metrics.total_io(),
        result.metrics.cpu_seconds(),
        result.metrics.peak_memory_mib(),
        result.metrics.loops,
    );

    // The first few pairs come out in descending score order.
    for pair in result.assignment.pairs().iter().take(5) {
        println!(
            "  user {:>4} <- object {:>5}   score {:.4}",
            pair.function.0, pair.object.0, pair.score
        );
    }

    // Every user got their best still-available choice: the matching is stable.
    verify_stable(&problem, &result.assignment).expect("SB produces a stable matching");
    println!("stability verified: no user/object pair prefers each other over their partners");
}
