//! Classroom allocation (Section 1): instructors declare preferences over
//! rooms (capacity, location, equipment); identical rooms are merged into a
//! single capacitated object (Section 6.1), and identical requests into a
//! single capacitated function.
//!
//! ```text
//! cargo run --release --example classroom
//! ```

use fair_assignment::datagen::uniform_weight_functions;
use fair_assignment::geom::Point;
use fair_assignment::{sb, verify_stable, ObjectRecord, PreferenceFunction, Problem, SbOptions};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 120 instructors; attribute order: seats, projector quality, centrality.
    let functions: Vec<PreferenceFunction> = uniform_weight_functions(120, 3, 99)
        .into_iter()
        .enumerate()
        .map(|(i, f)| PreferenceFunction::new(i, f))
        .collect();

    // 30 distinct room *types*; each type exists in several identical copies,
    // modelled as one object with a capacity (Section 6.1).
    let rooms: Vec<ObjectRecord> = (0..30)
        .map(|i| {
            let seats = rng.gen_range(0.2..1.0);
            let projector = rng.gen_range(0.0..1.0);
            let central = rng.gen_range(0.0..1.0);
            let copies = rng.gen_range(1..=8);
            ObjectRecord::new(i, Point::from_slice(&[seats, projector, central]))
                .with_capacity(copies)
        })
        .collect();

    let total_rooms: u64 = rooms.iter().map(|r| r.capacity as u64).sum();
    let problem = Problem::new(functions, rooms).expect("valid instance");
    println!(
        "{} instructors compete for {} rooms of {} distinct types",
        problem.num_functions(),
        total_rooms,
        problem.num_objects()
    );

    let mut tree = problem.build_tree(None, 0.02);
    let result = sb(&problem, &mut tree, &SbOptions::default());
    verify_stable(&problem, &result.assignment).expect("stable allocation");

    println!(
        "allocated {} rooms in {} loops ({} I/O accesses, {:.3}s CPU)",
        result.assignment.len(),
        result.metrics.loops,
        result.metrics.total_io(),
        result.metrics.cpu_seconds()
    );

    // How contested was each room type?
    let mut usage: Vec<(u64, usize)> = (0..problem.num_objects() as u64)
        .map(|id| {
            (
                id,
                result
                    .assignment
                    .functions_of(fair_assignment::rtree::RecordId(id))
                    .len(),
            )
        })
        .collect();
    usage.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("most contested room types:");
    for (id, taken) in usage.iter().take(5) {
        let room = problem
            .object(fair_assignment::rtree::RecordId(*id))
            .unwrap();
        println!(
            "  room type {:>2}: {taken}/{} copies taken, attributes {}",
            id, room.capacity, room.point
        );
    }
}
