//! Public-housing allocation with applicant priorities (Section 6.2): senior
//! applicants have a higher priority γ, so their scores are scaled up and they
//! are served first when competing for the same apartment. The example
//! compares the standard SB algorithm against the two-skyline variant, which
//! is the faster choice for prioritized workloads (Figure 15).
//!
//! ```text
//! cargo run --release --example housing
//! ```

use fair_assignment::datagen::{random_priorities, uniform_weight_functions, zillow_like_objects};
use fair_assignment::{sb, verify_stable, ObjectRecord, PreferenceFunction, Problem, SbOptions};

fn main() {
    // 400 applicants with preference weights over 5 apartment attributes
    // (bathrooms, bedrooms, living area, price, lot area), with priorities
    // drawn from 1..=4 (e.g. years on the waiting list).
    let base = uniform_weight_functions(400, 5, 2024);
    let prioritized = random_priorities(&base, 4, 2025);
    let functions: Vec<PreferenceFunction> = prioritized
        .into_iter()
        .enumerate()
        .map(|(i, f)| PreferenceFunction::new(i, f))
        .collect();

    // A new release of 3,000 apartments with Zillow-like attribute skew.
    let objects: Vec<ObjectRecord> = zillow_like_objects(3_000, 2026)
        .into_iter()
        .map(|(id, p)| ObjectRecord {
            id,
            point: p,
            capacity: 1,
        })
        .collect();

    let problem = Problem::new(functions, objects).expect("valid instance");
    println!(
        "{} applicants (max priority {}), {} apartments",
        problem.num_functions(),
        problem
            .functions()
            .iter()
            .map(|f| f.function.priority())
            .fold(0.0f64, f64::max),
        problem.num_objects()
    );

    // Standard SB handles priorities, but its TA threshold loosens as γ grows.
    let mut tree = problem.build_tree(None, 0.02);
    let standard = sb(&problem, &mut tree, &SbOptions::default());
    verify_stable(&problem, &standard.assignment).expect("stable");

    // The two-skyline variant additionally maintains the skyline of the
    // applicants' effective weight vectors and searches only within it.
    let mut tree = problem.build_tree(None, 0.02);
    let two_sky = sb(&problem, &mut tree, &SbOptions::two_skylines());
    verify_stable(&problem, &two_sky.assignment).expect("stable");

    assert_eq!(
        standard.assignment.canonical(),
        two_sky.assignment.canonical()
    );
    println!(
        "both variants produce the same stable allocation of {} apartments",
        standard.assignment.len()
    );
    println!(
        "standard SB     : {:>6} I/O, {:.3}s CPU, {:.2} MiB",
        standard.metrics.total_io(),
        standard.metrics.cpu_seconds(),
        standard.metrics.peak_memory_mib()
    );
    println!(
        "two-skyline SB  : {:>6} I/O, {:.3}s CPU, {:.2} MiB",
        two_sky.metrics.total_io(),
        two_sky.metrics.cpu_seconds(),
        two_sky.metrics.peak_memory_mib()
    );

    // Priorities matter: among applicants whose top choice was contested, the
    // higher-priority one wins it.
    let served_high = standard
        .assignment
        .pairs()
        .iter()
        .filter(|p| problem.function(p.function).unwrap().function.priority() >= 3.0)
        .count();
    println!("{served_high} of the assigned apartments went to priority >= 3 applicants");
}
