//! # fair-assignment
//!
//! A Rust implementation of **"A Fair Assignment Algorithm for Multiple
//! Preference Queries"** (U, Mamoulis, Mouratidis — PVLDB 2(1), 2009).
//!
//! Multiple users issue preference queries (normalized linear weights over the
//! attributes of a set of objects) *simultaneously*; because an object can be
//! given to only one user, the system must compute a fair 1-1 matching — the
//! **stable marriage** obtained by repeatedly assigning the highest-scoring
//! remaining (function, object) pair. This crate re-exports the whole
//! workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`geom`] | points, MBRs, dominance, linear preference functions |
//! | [`storage`] | simulated 4 KiB pages, LRU buffer, I/O statistics |
//! | [`rtree`] | disk-style R-tree (STR bulk load, insert, delete, queries) |
//! | [`skyline`] | BNL/SFS/BBS skylines, UpdateSkyline, DeltaSky baseline |
//! | [`topk`] | BRS ranked search, TA reverse top-1, batch best-pair search |
//! | [`assign`] | the assignment algorithms behind the [`Solver`] trait: Brute Force, Chain, **SB**, SB-alt |
//! | [`datagen`] | synthetic workloads (independent / correlated / anti-correlated, Zillow/NBA stand-ins, update streams) |
//! | [`engine`] | the long-lived [`AssignmentEngine`]: incremental re-stabilization under arrivals/departures |
//!
//! The most convenient entry points are re-exported at the top level:
//! [`Problem`], [`solve`] / [`solve_with_metrics`], [`sb`], [`verify_stable`],
//! [`AssignmentEngine`].
//!
//! ```
//! use fair_assignment::{solve, Problem, PreferenceFunction, ObjectRecord};
//! use fair_assignment::geom::{LinearFunction, Point};
//!
//! let problem = Problem::new(
//!     vec![
//!         PreferenceFunction::new(0, LinearFunction::new(vec![0.7, 0.3]).unwrap()),
//!         PreferenceFunction::new(1, LinearFunction::new(vec![0.4, 0.6]).unwrap()),
//!     ],
//!     vec![
//!         ObjectRecord::new(0, Point::from_slice(&[0.9, 0.4])),
//!         ObjectRecord::new(1, Point::from_slice(&[0.3, 0.8])),
//!     ],
//! )
//! .unwrap();
//! let assignment = solve(&problem);
//! assert_eq!(assignment.len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod io;

pub use pref_assign as assign;
pub use pref_datagen as datagen;
pub use pref_engine as engine;
pub use pref_geom as geom;
pub use pref_rtree as rtree;
pub use pref_service as service;
pub use pref_skyline as skyline;
pub use pref_storage as storage;
pub use pref_topk as topk;

pub use pref_assign::{
    brute_force, chain, oracle, sb, sb_alt, solve, solve_with_metrics, verify_stable, Assignment,
    AssignmentResult, BestPairStrategy, BruteForceSolver, ChainSolver, FunctionId,
    MaintenanceStrategy, MatchPair, ObjectRecord, PreferenceFunction, Problem, RunMetrics,
    SbAltSolver, SbOptions, SbSolver, Solver, StabilityViolation,
};
pub use pref_engine::{AssignmentEngine, EngineOptions};
pub use pref_service::{ServiceConfig, ShardedService, UpdateOp};

#[cfg(test)]
mod tests {
    use super::*;
    use geom::{LinearFunction, Point};

    #[test]
    fn umbrella_reexports_work_together() {
        let functions = datagen::uniform_weight_functions(10, 2, 1);
        let objects = datagen::independent_objects(50, 2, 2);
        let problem = Problem::from_parts(functions, objects).unwrap();
        let assignment = solve(&problem);
        assert_eq!(assignment.len(), 10);
        verify_stable(&problem, &assignment).unwrap();
    }

    #[test]
    fn solve_with_metrics_exposes_the_run_measurements() {
        let functions = datagen::uniform_weight_functions(12, 3, 5);
        let objects = datagen::independent_objects(80, 3, 6);
        let problem = Problem::from_parts(functions, objects).unwrap();
        let result = solve_with_metrics(&problem);
        assert_eq!(result.assignment.len(), 12);
        assert!(result.metrics.object_io.io_accesses() > 0);
        assert!(result.metrics.loops > 0);
        // `solve` is a thin wrapper: same matching, metrics discarded
        assert_eq!(solve(&problem).canonical(), result.assignment.canonical());
    }

    #[test]
    fn streaming_engine_is_reachable_through_the_facade() {
        let functions = datagen::uniform_weight_functions(6, 2, 7);
        let objects = datagen::independent_objects(30, 2, 8);
        let problem = Problem::from_parts(functions, objects).unwrap();
        let mut engine = AssignmentEngine::new(&problem, &EngineOptions::default()).unwrap();
        engine
            .insert_object(ObjectRecord::new(
                1_000,
                geom::Point::from_slice(&[0.95, 0.95]),
            ))
            .unwrap();
        let snapshot = engine.snapshot_problem().unwrap();
        verify_stable(&snapshot, &engine.assignment()).unwrap();
        assert_eq!(
            engine.assignment().canonical(),
            oracle(&snapshot).canonical()
        );
    }

    #[test]
    fn figure1_walkthrough() {
        let problem = Problem::new(
            vec![
                PreferenceFunction::new(0, LinearFunction::new(vec![0.8, 0.2]).unwrap()),
                PreferenceFunction::new(1, LinearFunction::new(vec![0.2, 0.8]).unwrap()),
                PreferenceFunction::new(2, LinearFunction::new(vec![0.5, 0.5]).unwrap()),
            ],
            vec![
                ObjectRecord::new(0, Point::from_slice(&[0.5, 0.6])),
                ObjectRecord::new(1, Point::from_slice(&[0.2, 0.7])),
                ObjectRecord::new(2, Point::from_slice(&[0.8, 0.2])),
                ObjectRecord::new(3, Point::from_slice(&[0.4, 0.4])),
            ],
        )
        .unwrap();
        let assignment = solve(&problem);
        assert_eq!(assignment.object_of(FunctionId(0)).unwrap().0, 2);
        assert_eq!(assignment.object_of(FunctionId(1)).unwrap().0, 1);
        assert_eq!(assignment.object_of(FunctionId(2)).unwrap().0, 0);
    }
}
