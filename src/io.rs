//! Loading and saving problem instances and assignments.
//!
//! Downstream systems rarely build [`Problem`] values in code: applicants fill
//! in forms, positions come from a catalogue. This module provides a small,
//! dependency-free interchange format:
//!
//! * **JSON** for whole problem instances ([`save_problem_json`] /
//!   [`load_problem_json`]) — functions with weights, priorities and
//!   capacities; objects with attribute vectors and capacities;
//! * **CSV** for assignment results ([`write_assignment_csv`]) — one row per
//!   matched pair, convenient for spreadsheets and grading scripts.

use crate::{Assignment, ObjectRecord, PreferenceFunction, Problem};
use pref_geom::{LinearFunction, Point};
use pref_rtree::RecordId;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Serializable form of a preference function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Identifier of the user / query.
    pub id: usize,
    /// Raw (not necessarily normalized) attribute weights.
    pub weights: Vec<f64>,
    /// Priority γ; defaults to 1.
    #[serde(default = "default_priority")]
    pub priority: f64,
    /// Capacity; defaults to 1.
    #[serde(default = "default_capacity")]
    pub capacity: u32,
}

/// Serializable form of an object.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectSpec {
    /// Identifier of the object.
    pub id: u64,
    /// Attribute values in `[0, 1]`, larger is better.
    pub attributes: Vec<f64>,
    /// Capacity; defaults to 1.
    #[serde(default = "default_capacity")]
    pub capacity: u32,
}

/// Serializable form of a whole problem instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProblemSpec {
    /// The preference functions (users).
    pub functions: Vec<FunctionSpec>,
    /// The objects.
    pub objects: Vec<ObjectSpec>,
}

fn default_priority() -> f64 {
    1.0
}
fn default_capacity() -> u32 {
    1
}

/// Errors raised while loading or saving instances.
#[derive(Debug)]
pub enum IoFormatError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The JSON could not be parsed.
    Json(serde_json::Error),
    /// The decoded data does not form a valid problem.
    Invalid(String),
}

impl std::fmt::Display for IoFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoFormatError::Io(e) => write!(f, "io error: {e}"),
            IoFormatError::Json(e) => write!(f, "json error: {e}"),
            IoFormatError::Invalid(msg) => write!(f, "invalid problem: {msg}"),
        }
    }
}

impl std::error::Error for IoFormatError {}

impl From<std::io::Error> for IoFormatError {
    fn from(e: std::io::Error) -> Self {
        IoFormatError::Io(e)
    }
}
impl From<serde_json::Error> for IoFormatError {
    fn from(e: serde_json::Error) -> Self {
        IoFormatError::Json(e)
    }
}

impl ProblemSpec {
    /// Converts a problem into its serializable form.
    pub fn from_problem(problem: &Problem) -> Self {
        Self {
            functions: problem
                .functions()
                .iter()
                .map(|f| FunctionSpec {
                    id: f.id.0,
                    weights: f.function.weights().to_vec(),
                    priority: f.function.priority(),
                    capacity: f.capacity,
                })
                .collect(),
            objects: problem
                .objects()
                .iter()
                .map(|o| ObjectSpec {
                    id: o.id.0,
                    attributes: o.point.coords().to_vec(),
                    capacity: o.capacity,
                })
                .collect(),
        }
    }

    /// Validates the spec and builds a [`Problem`].
    pub fn into_problem(self) -> Result<Problem, IoFormatError> {
        let functions = self
            .functions
            .into_iter()
            .map(|f| {
                let lf = LinearFunction::with_priority(f.weights, f.priority)
                    .map_err(|e| IoFormatError::Invalid(format!("function {}: {e}", f.id)))?;
                Ok(PreferenceFunction {
                    id: crate::FunctionId(f.id),
                    function: lf,
                    capacity: f.capacity.max(1),
                })
            })
            .collect::<Result<Vec<_>, IoFormatError>>()?;
        let objects = self
            .objects
            .into_iter()
            .map(|o| {
                let point = Point::new(o.attributes)
                    .map_err(|e| IoFormatError::Invalid(format!("object {}: {e}", o.id)))?;
                Ok(ObjectRecord {
                    id: RecordId(o.id),
                    point,
                    capacity: o.capacity.max(1),
                })
            })
            .collect::<Result<Vec<_>, IoFormatError>>()?;
        Problem::new(functions, objects).map_err(|e| IoFormatError::Invalid(e.to_string()))
    }
}

/// Serializes a problem as pretty-printed JSON into any writer.
pub fn write_problem_json<W: Write>(problem: &Problem, writer: W) -> Result<(), IoFormatError> {
    serde_json::to_writer_pretty(writer, &ProblemSpec::from_problem(problem))?;
    Ok(())
}

/// Reads a problem from JSON.
pub fn read_problem_json<R: Read>(reader: R) -> Result<Problem, IoFormatError> {
    let spec: ProblemSpec = serde_json::from_reader(reader)?;
    spec.into_problem()
}

/// Saves a problem to a JSON file.
pub fn save_problem_json(problem: &Problem, path: &Path) -> Result<(), IoFormatError> {
    let file = std::fs::File::create(path)?;
    write_problem_json(problem, std::io::BufWriter::new(file))
}

/// Loads a problem from a JSON file.
pub fn load_problem_json(path: &Path) -> Result<Problem, IoFormatError> {
    let file = std::fs::File::open(path)?;
    read_problem_json(BufReader::new(file))
}

/// Writes an assignment as CSV: `function_id,object_id,score`, one pair per
/// line, preceded by a header.
pub fn write_assignment_csv<W: Write>(
    assignment: &Assignment,
    mut writer: W,
) -> Result<(), IoFormatError> {
    writeln!(writer, "function_id,object_id,score")?;
    for pair in assignment.pairs() {
        writeln!(
            writer,
            "{},{},{}",
            pair.function.0, pair.object.0, pair.score
        )?;
    }
    Ok(())
}

/// Reads an assignment previously written by [`write_assignment_csv`].
///
/// The reader is strict: every data row must have exactly the three fields
/// `function_id,object_id,score` (rows with extra columns are rejected rather
/// than silently truncated), and line 1 is only skipped when it actually *is*
/// the header — a headerless file whose first line is data parses fully.
pub fn read_assignment_csv<R: Read>(reader: R) -> Result<Assignment, IoFormatError> {
    let mut assignment = Assignment::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue; // trailing blank
        }
        if lineno == 0 && is_assignment_csv_header(&line) {
            continue;
        }
        let mut parts = line.split(',');
        let err = || IoFormatError::Invalid(format!("malformed CSV line {}", lineno + 1));
        let function: usize = parts
            .next()
            .ok_or_else(err)?
            .trim()
            .parse()
            .map_err(|_| err())?;
        let object: u64 = parts
            .next()
            .ok_or_else(err)?
            .trim()
            .parse()
            .map_err(|_| err())?;
        let score: f64 = parts
            .next()
            .ok_or_else(err)?
            .trim()
            .parse()
            .map_err(|_| err())?;
        if parts.next().is_some() {
            return Err(IoFormatError::Invalid(format!(
                "CSV line {} has more than 3 fields",
                lineno + 1
            )));
        }
        assignment.push(crate::FunctionId(function), RecordId(object), score);
    }
    Ok(assignment)
}

/// `true` iff the line is the `function_id,object_id,score` header written by
/// [`write_assignment_csv`] (fields compared after trimming).
fn is_assignment_csv_header(line: &str) -> bool {
    let mut fields = line.split(',').map(str::trim);
    fields.next() == Some("function_id")
        && fields.next() == Some("object_id")
        && fields.next() == Some("score")
        && fields.next().is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, verify_stable};
    use pref_datagen::{independent_objects, random_priorities, uniform_weight_functions};

    fn sample_problem() -> Problem {
        let base = uniform_weight_functions(12, 3, 5);
        let prioritized = random_priorities(&base, 3, 6);
        let functions: Vec<PreferenceFunction> = prioritized
            .into_iter()
            .enumerate()
            .map(|(i, f)| PreferenceFunction::new(i, f).with_capacity(1 + (i as u32 % 2)))
            .collect();
        let objects: Vec<ObjectRecord> = independent_objects(40, 3, 7)
            .into_iter()
            .map(|(id, p)| ObjectRecord {
                id,
                point: p,
                capacity: 1,
            })
            .collect();
        Problem::new(functions, objects).unwrap()
    }

    #[test]
    fn json_round_trip_preserves_the_problem() {
        let problem = sample_problem();
        let mut buffer = Vec::new();
        write_problem_json(&problem, &mut buffer).unwrap();
        let loaded = read_problem_json(buffer.as_slice()).unwrap();
        assert_eq!(loaded.num_functions(), problem.num_functions());
        assert_eq!(loaded.num_objects(), problem.num_objects());
        for (a, b) in problem.functions().iter().zip(loaded.functions()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.capacity, b.capacity);
            assert!((a.function.priority() - b.function.priority()).abs() < 1e-12);
            for (wa, wb) in a.function.weights().iter().zip(b.function.weights()) {
                assert!((wa - wb).abs() < 1e-12);
            }
        }
        // and both solve to the same matching
        assert_eq!(solve(&problem).canonical(), solve(&loaded).canonical());
    }

    #[test]
    fn json_defaults_apply_when_fields_are_missing() {
        let json = r#"{
            "functions": [
                {"id": 0, "weights": [3.0, 1.0]},
                {"id": 1, "weights": [1.0, 1.0], "priority": 2.0, "capacity": 3}
            ],
            "objects": [
                {"id": 0, "attributes": [0.9, 0.4]},
                {"id": 1, "attributes": [0.2, 0.8], "capacity": 2}
            ]
        }"#;
        let problem = read_problem_json(json.as_bytes()).unwrap();
        assert_eq!(problem.functions()[0].capacity, 1);
        assert_eq!(problem.functions()[0].function.priority(), 1.0);
        assert_eq!(problem.functions()[0].function.weights(), &[0.75, 0.25]);
        assert_eq!(problem.functions()[1].capacity, 3);
        assert_eq!(problem.objects()[1].capacity, 2);
        let assignment = solve(&problem);
        verify_stable(&problem, &assignment).unwrap();
    }

    #[test]
    fn invalid_specs_are_rejected_with_context() {
        let bad_weights = r#"{"functions":[{"id":0,"weights":[0.0,0.0]}],
                              "objects":[{"id":0,"attributes":[0.5,0.5]}]}"#;
        let err = read_problem_json(bad_weights.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("function 0"));
        let bad_point = r#"{"functions":[{"id":0,"weights":[1.0,1.0]}],
                            "objects":[{"id":3,"attributes":[]}]}"#;
        let err = read_problem_json(bad_point.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("object 3"));
        let mismatched = r#"{"functions":[{"id":0,"weights":[1.0,1.0]}],
                             "objects":[{"id":0,"attributes":[0.5,0.5,0.5]}]}"#;
        let err = read_problem_json(mismatched.as_bytes()).unwrap_err();
        assert!(matches!(err, IoFormatError::Invalid(_)));
        let not_json = read_problem_json("not json".as_bytes()).unwrap_err();
        assert!(matches!(not_json, IoFormatError::Json(_)));
    }

    #[test]
    fn file_round_trip() {
        let problem = sample_problem();
        let dir = std::env::temp_dir().join("fair-assignment-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("problem.json");
        save_problem_json(&problem, &path).unwrap();
        let loaded = load_problem_json(&path).unwrap();
        assert_eq!(loaded.num_objects(), problem.num_objects());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn assignment_csv_round_trip() {
        let problem = sample_problem();
        let assignment = solve(&problem);
        let mut buffer = Vec::new();
        write_assignment_csv(&assignment, &mut buffer).unwrap();
        let text = String::from_utf8(buffer.clone()).unwrap();
        assert!(text.starts_with("function_id,object_id,score\n"));
        assert_eq!(text.lines().count(), assignment.len() + 1);
        let loaded = read_assignment_csv(buffer.as_slice()).unwrap();
        assert_eq!(loaded.canonical(), assignment.canonical());
        verify_stable(&problem, &loaded).unwrap();
    }

    #[test]
    fn malformed_csv_is_rejected() {
        let bad = "function_id,object_id,score\n1,notanumber,0.5\n";
        assert!(read_assignment_csv(bad.as_bytes()).is_err());
        let short = "function_id,object_id,score\n1\n";
        assert!(read_assignment_csv(short.as_bytes()).is_err());
        // blank trailing lines are fine
        let ok = "function_id,object_id,score\n1,2,0.5\n\n";
        assert_eq!(read_assignment_csv(ok.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn extra_columns_are_rejected() {
        let extra = "function_id,object_id,score\n1,2,0.5,surprise\n";
        let err = read_assignment_csv(extra.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("more than 3 fields"), "{err}");
        // a trailing comma is an (empty) fourth field too
        let trailing = "function_id,object_id,score\n1,2,0.5,\n";
        assert!(read_assignment_csv(trailing.as_bytes()).is_err());
    }

    #[test]
    fn headerless_first_line_is_parsed_as_data() {
        // line 1 is data, not the header: it must not be silently skipped
        let headerless = "3,7,0.25\n1,2,0.5\n";
        let a = read_assignment_csv(headerless.as_bytes()).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.pairs()[0].function.0, 3);
        assert_eq!(a.pairs()[0].object.0, 7);
        // a malformed non-header first line is an error, not a skipped header
        let bad_first = "not,a,header\n1,2,0.5\n";
        assert!(read_assignment_csv(bad_first.as_bytes()).is_err());
        // header with surrounding spaces still counts as the header
        let spaced = " function_id , object_id , score \n1,2,0.5\n";
        assert_eq!(read_assignment_csv(spaced.as_bytes()).unwrap().len(), 1);
    }
}
