//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Provides the API surface `benches/micro.rs` uses — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `BatchSize` and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical machinery it
//! runs a small fixed number of timed iterations and prints mean wall-clock
//! time per iteration, which is enough for quick relative comparisons and
//! for `cargo bench --no-run` CI compilation checks.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], as in real criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measures closures.
pub struct Bencher {
    iterations: u64,
    total: Duration,
}

impl Bencher {
    fn new(iterations: u64) -> Self {
        Self {
            iterations,
            total: Duration::ZERO,
        }
    }

    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.total = start.elapsed();
    }

    /// Times `routine` with a fresh `setup()` input per iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.total = measured;
    }

    /// Like [`Bencher::iter_batched`] but passes the input by mutable
    /// reference.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iterations {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            measured += start.elapsed();
        }
        self.total = measured;
    }

    fn report(&self, group: &str, id: &str) {
        let per_iter = if self.iterations > 0 {
            self.total / self.iterations as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{group}/{id}: {:>12?} per iter ({} iters)",
            per_iter, self.iterations
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup {
    /// Sets how many iterations each benchmark runs (criterion's sample
    /// count; reused here directly as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group (no-op; prints a separator for readability).
    pub fn finish(self) {
        println!();
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("benchmark group `{name}`");
        BenchmarkGroup {
            name,
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group(id.to_string())
            .bench_function("bench", f);
        self
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
