//! Vendored minimal stand-in for the `rand` crate (0.8-era API).
//!
//! Provides the surface this workspace uses: [`Rng::gen_range`] over integer
//! and float ranges, [`Rng::gen_bool`], [`rngs::StdRng`] and
//! [`SeedableRng::seed_from_u64`]. The generator is SplitMix64 — statistically
//! solid for test workloads and fully deterministic per seed, though *not*
//! the ChaCha12 generator real `StdRng` uses (sequences differ from real
//! rand for the same seed).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from OS entropy. The vendored build has no OS
    /// entropy source; this uses a fixed seed and is only meant for tests.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

/// User-facing convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// Panics if the range is empty, like real rand.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a primitive type over its full / unit range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(&mut FnRng(&mut |_| self.next_u64()))
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

struct FnRng<'a>(&'a mut dyn FnMut(()) -> u64);

impl RngCore for FnRng<'_> {
    fn next_u64(&mut self) -> u64 {
        (self.0)(())
    }
}

/// Types with a canonical "standard" distribution (full integer range, unit
/// interval for floats).
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // Uses [0, 1) scaled onto the closed interval; hitting the
                // exact upper bound has probability ~2^-53, matching rand's
                // behaviour closely enough for test workloads.
                let bits = rng.next_u64();
                let u = ((bits >> 11) as f64 / ((1u64 << 53) - 1) as f64) as $t;
                start + u * (end - start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut rng = Self { state };
            // one warm-up step so small seeds diverge immediately
            let _ = rng.next_u64();
            rng
        }
    }
}

/// A convenience thread-local-style generator; deterministic in this build.
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::seed_from_u64(0x5EED_5EED_5EED_5EED)
}

#[cfg(test)]
mod tests {
    use super::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let n: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&n));
            let m: u32 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&m));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
