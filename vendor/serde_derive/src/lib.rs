//! Vendored minimal stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize, Deserialize)]` for the shapes this
//! workspace uses — named-field structs, tuple structs (newtypes serialize
//! transparently), unit structs, and enums with unit / newtype / tuple /
//! struct variants (externally tagged) — plus the field attributes
//! `#[serde(default)]`, `#[serde(default = "path")]` and
//! `#[serde(with = "module")]`. The input is parsed directly from the token
//! stream (no `syn`/`quote` in the offline build) and generated code is
//! emitted against the vendored `serde` crate's `Content` data model.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
enum DefaultAttr {
    None,
    Std,
    Path(String),
}

#[derive(Debug, Clone)]
struct Field {
    name: Option<String>,
    default: DefaultAttr,
    with: Option<String>,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Input {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Consumes leading `#[...]` attributes, returning parsed serde options.
    fn eat_attrs(&mut self) -> (DefaultAttr, Option<String>) {
        let mut default = DefaultAttr::None;
        let mut with = None;
        loop {
            if !matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
                break;
            }
            self.pos += 1;
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("expected attribute body, found {other:?}"),
            };
            parse_serde_attr(group.stream(), &mut default, &mut with);
        }
        (default, with)
    }

    /// Consumes an optional `pub` / `pub(...)` visibility.
    fn eat_visibility(&mut self) {
        if self.peek_ident("pub") {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1;
            }
        }
    }

    /// Skips a type: consumes tokens until a top-level `,` (angle brackets
    /// tracked so `Vec<(A, B)>` and `HashMap<K, V>` survive).
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn parse_serde_attr(stream: TokenStream, default: &mut DefaultAttr, with: &mut Option<String>) {
    let mut cur = Cursor::new(stream);
    if !cur.peek_ident("serde") {
        return; // doc comment or unrelated attribute
    }
    cur.pos += 1;
    let group = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        other => panic!("expected serde(...) arguments, found {other:?}"),
    };
    let mut inner = Cursor::new(group.stream());
    while let Some(tok) = inner.next() {
        let key = match tok {
            TokenTree::Ident(i) => i.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => continue,
            other => panic!("unsupported serde attribute token {other:?}"),
        };
        let value = if inner.eat_punct('=') {
            match inner.next() {
                Some(TokenTree::Literal(l)) => Some(unquote(&l.to_string())),
                other => panic!("expected string literal after `{key} =`, found {other:?}"),
            }
        } else {
            None
        };
        match (key.as_str(), value) {
            ("default", None) => *default = DefaultAttr::Std,
            ("default", Some(path)) => *default = DefaultAttr::Path(path),
            ("with", Some(path)) => *with = Some(path),
            (key, _) => panic!("unsupported serde attribute `{key}` in vendored serde_derive"),
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let (default, with) = cur.eat_attrs();
        if cur.peek().is_none() {
            break;
        }
        cur.eat_visibility();
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        if !cur.eat_punct(':') {
            panic!("expected `:` after field `{name}`");
        }
        cur.skip_type();
        cur.eat_punct(',');
        fields.push(Field {
            name: Some(name),
            default,
            with,
        });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let (default, with) = cur.eat_attrs();
        if cur.peek().is_none() {
            break;
        }
        cur.eat_visibility();
        cur.skip_type();
        cur.eat_punct(',');
        fields.push(Field {
            name: None,
            default,
            with,
        });
    }
    fields
}

fn parse_input(input: TokenStream) -> Input {
    let mut cur = Cursor::new(input);
    cur.eat_attrs();
    cur.eat_visibility();
    let kind = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types (type `{name}`)");
    }
    match kind.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Input::TupleStruct {
                    name,
                    arity: parse_tuple_fields(g.stream()).len(),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input::UnitStruct { name },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => {
            let body = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            let mut inner = Cursor::new(body.stream());
            let mut variants = Vec::new();
            while inner.peek().is_some() {
                inner.eat_attrs();
                if inner.peek().is_none() {
                    break;
                }
                let vname = match inner.next() {
                    Some(TokenTree::Ident(i)) => i.to_string(),
                    other => panic!("expected variant name, found {other:?}"),
                };
                let shape = match inner.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        inner.pos += 1;
                        VariantShape::Struct(fields)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = parse_tuple_fields(g.stream()).len();
                        inner.pos += 1;
                        VariantShape::Tuple(arity)
                    }
                    _ => VariantShape::Unit,
                };
                if inner.eat_punct('=') {
                    // explicit discriminant: skip the expression
                    while let Some(tok) = inner.peek() {
                        if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                            break;
                        }
                        inner.pos += 1;
                    }
                }
                inner.eat_punct(',');
                variants.push(Variant { name: vname, shape });
            }
            Input::Enum { name, variants }
        }
        other => panic!("cannot derive serde traits for `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn field_to_content(access: &str, field: &Field) -> String {
    match &field.with {
        Some(module) => format!(
            "{module}::serialize(&{access}, ::serde::__private::ContentSerializer)\
             .expect(\"with-module serialization failed\")"
        ),
        None => format!("::serde::__private::to_content(&{access})"),
    }
}

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                let fname = f.name.as_ref().unwrap();
                let value = field_to_content(&format!("self.{fname}"), f);
                pushes.push_str(&format!(
                    "__map.push((\"{fname}\".to_string(), {value}));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn content(&self) -> ::serde::Content {{\n\
                         let mut __map: Vec<(String, ::serde::Content)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Content::Map(__map)\n\
                     }}\n\
                 }}"
            )
        }
        Input::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn content(&self) -> ::serde::Content {{\n\
                     ::serde::__private::to_content(&self.0)\n\
                 }}\n\
             }}"
        ),
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::__private::to_content(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Seq(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Input::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn content(&self) -> ::serde::Content {{ ::serde::Content::Null }}\n\
             }}"
        ),
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Content::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Content::Map(vec![(\
                         \"{vname}\".to_string(), ::serde::__private::to_content(__f0))]),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::__private::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Content::Map(vec![(\
                             \"{vname}\".to_string(), ::serde::Content::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone().unwrap()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let fname = f.name.as_ref().unwrap();
                                let value = field_to_content(&format!("(*{fname})"), f);
                                format!("(\"{fname}\".to_string(), {value})")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Content::Map(vec![(\
                             \"{vname}\".to_string(), ::serde::Content::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn content(&self) -> ::serde::Content {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_named_field_lets(fields: &[Field], type_label: &str) -> String {
    let mut lets = String::new();
    for f in fields {
        let fname = f.name.as_ref().unwrap();
        let some_arm = match &f.with {
            Some(module) => {
                format!("{module}::deserialize(::serde::__private::ContentDeserializer(__c))?")
            }
            None => format!(
                "::serde::__private::from_content(__c).map_err(|e| \
                 ::serde::DeError(format!(\"{type_label}.{fname}: {{}}\", e)))?"
            ),
        };
        let none_arm = match &f.default {
            DefaultAttr::None => format!(
                "return Err(::serde::DeError(\
                 \"missing field `{fname}` in {type_label}\".to_string()))"
            ),
            DefaultAttr::Std => "Default::default()".to_string(),
            DefaultAttr::Path(path) => format!("{path}()"),
        };
        lets.push_str(&format!(
            "let {fname} = match ::serde::__private::take(&mut __map, \"{fname}\") {{\n\
                 Some(__c) => {some_arm},\n\
                 None => {none_arm},\n\
             }};\n"
        ));
    }
    lets
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let lets = gen_named_field_lets(fields, name);
            let names: Vec<String> = fields.iter().map(|f| f.name.clone().unwrap()).collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_content(__content: ::serde::Content) -> \
                         Result<Self, ::serde::DeError> {{\n\
                         let mut __map = match __content {{\n\
                             ::serde::Content::Map(m) => m,\n\
                             other => return Err(::serde::DeError(format!(\
                                 \"expected map for struct {name}, found {{:?}}\", other))),\n\
                         }};\n\
                         {lets}\
                         let _ = __map;\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                names.join(", ")
            )
        }
        Input::TupleStruct { name, arity: 1 } => format!(
            "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn from_content(__content: ::serde::Content) -> \
                     Result<Self, ::serde::DeError> {{\n\
                     Ok({name}(::serde::__private::from_content(__content)?))\n\
                 }}\n\
             }}"
        ),
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|_| "::serde::__private::from_content(__it.next().unwrap())?".to_string())
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_content(__content: ::serde::Content) -> \
                         Result<Self, ::serde::DeError> {{\n\
                         match __content {{\n\
                             ::serde::Content::Seq(items) if items.len() == {arity} => {{\n\
                                 let mut __it = items.into_iter();\n\
                                 Ok({name}({}))\n\
                             }}\n\
                             other => Err(::serde::DeError(format!(\
                                 \"expected {arity}-element sequence for {name}, \
                                  found {{:?}}\", other))),\n\
                         }}\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Input::UnitStruct { name } => format!(
            "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn from_content(_: ::serde::Content) -> Result<Self, ::serde::DeError> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}"
        ),
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                        tagged_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    VariantShape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         ::serde::__private::from_content(__value)?)),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|_| {
                                "::serde::__private::from_content(__it.next().unwrap())?"
                                    .to_string()
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => match __value {{\n\
                                 ::serde::Content::Seq(items) if items.len() == {arity} => {{\n\
                                     let mut __it = items.into_iter();\n\
                                     Ok({name}::{vname}({}))\n\
                                 }}\n\
                                 other => Err(::serde::DeError(format!(\
                                     \"bad payload for {name}::{vname}: {{:?}}\", other))),\n\
                             }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let lets = gen_named_field_lets(fields, &format!("{name}::{vname}"));
                        let names: Vec<String> =
                            fields.iter().map(|f| f.name.clone().unwrap()).collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let mut __map = match __value {{\n\
                                     ::serde::Content::Map(m) => m,\n\
                                     other => return Err(::serde::DeError(format!(\
                                         \"bad payload for {name}::{vname}: {{:?}}\", other))),\n\
                                 }};\n\
                                 {lets}\
                                 let _ = __map;\n\
                                 Ok({name}::{vname} {{ {} }})\n\
                             }}\n",
                            names.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_content(__content: ::serde::Content) -> \
                         Result<Self, ::serde::DeError> {{\n\
                         match __content {{\n\
                             ::serde::Content::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => Err(::serde::DeError(format!(\
                                     \"unknown variant `{{}}` of {name}\", other))),\n\
                             }},\n\
                             ::serde::Content::Map(mut m) if m.len() == 1 => {{\n\
                                 let (__tag, __value) = m.remove(0);\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\
                                     other => Err(::serde::DeError(format!(\
                                         \"unknown variant `{{}}` of {name}\", other))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::DeError(format!(\
                                 \"expected enum {name}, found {{:?}}\", other))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
