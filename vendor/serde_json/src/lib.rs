//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Serializes and parses standard JSON over the vendored `serde` crate's
//! `Content` data model. Covers the entry points this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_writer`], [`to_writer_pretty`],
//! [`from_str`], [`from_reader`], and the [`Error`] type.

use serde::{Content, DeError, Serialize};
use std::io::{Read, Write};

/// JSON serialization / deserialization error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io error: {e}"))
    }
}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Result alias matching real serde_json.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        // JSON has no NaN/Infinity; real serde_json emits null.
        out.push_str("null");
    }
}

fn write_content(out: &mut String, content: &Content, indent: Option<usize>) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_content(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, value, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.content(), None);
    Ok(out)
}

/// Serializes a value to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.content(), Some(0));
    Ok(out)
}

/// Serializes a value as compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serializes a value as pretty JSON into a writer.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.error("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // advance one whole UTF-8 character
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.error("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| self.error("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| self.error("invalid number"))
        }
    }
}

/// Parses a JSON document into the serde content model.
fn parse(text: &str) -> Result<Content> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(text: &str) -> Result<T> {
    let content = parse(text)?;
    Ok(T::from_content(content)?)
}

/// Deserializes a value from a JSON slice.
pub fn from_slice<T: for<'de> serde::Deserialize<'de>>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

/// Deserializes a value from a reader.
pub fn from_reader<R: Read, T: for<'de> serde::Deserialize<'de>>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}
