//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a tiny serde-compatible core: the [`Serialize`] / [`Deserialize`] traits,
//! a self-describing [`Content`] data model (a superset of JSON), and the
//! derive macros re-exported from `serde_derive`. Only the API surface this
//! workspace actually uses is provided; the wire behaviour (maps keyed by
//! field names, transparent newtypes, externally-tagged enums, field
//! `default =` and `with =` attributes) matches real serde closely enough
//! that swapping the real crates back in is a one-line manifest change.

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized value: the data model every `Serialize` impl
/// lowers into and every `Deserialize` impl is rebuilt from.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Content)>),
}

/// Concrete error used by the content-based (de)serialization paths.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization error plumbing (mirrors `serde::ser`).
pub mod ser {
    /// Trait for serializer error types.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization error plumbing (mirrors `serde::de`).
pub mod de {
    /// Trait for deserializer error types.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

impl ser::Error for DeError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

impl de::Error for DeError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// A sink that consumes a [`Content`] tree.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;
    /// Consumes one fully-lowered value.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}

/// A source that yields a [`Content`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;
    /// Produces the next value as content.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// Types that can lower themselves into [`Content`].
pub trait Serialize {
    /// Lowers `self` into the data model. Infallible by construction.
    fn content(&self) -> Content;

    /// Serde-compatible entry point used by `#[serde(with = "...")]` modules.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.content())
    }
}

/// Types that can be rebuilt from [`Content`].
pub trait Deserialize<'de>: Sized {
    /// Rebuilds a value from the data model.
    fn from_content(content: Content) -> Result<Self, DeError>;

    /// Serde-compatible entry point used by `#[serde(with = "...")]` modules.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let content = deserializer.deserialize_content()?;
        Self::from_content(content).map_err(<D::Error as de::Error>::custom)
    }
}

/// Owned-deserialization alias, as in real serde.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

impl Content {
    fn type_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: Content) -> Result<Self, DeError> {
                let raw = match content {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => v as u64,
                    other => {
                        return Err(DeError(format!(
                            "expected unsigned integer, found {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError(format!("integer {} out of range for {}", raw, stringify!($t)))
                })
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: Content) -> Result<Self, DeError> {
                let raw = match content {
                    Content::I64(v) => v,
                    Content::U64(v) if v <= i64::MAX as u64 => v as i64,
                    Content::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => v as i64,
                    other => {
                        return Err(DeError(format!(
                            "expected integer, found {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError(format!("integer {} out of range for {}", raw, stringify!($t)))
                })
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: Content) -> Result<Self, DeError> {
                match content {
                    Content::F64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    other => Err(DeError(format!(
                        "expected number, found {}",
                        other.type_name()
                    ))),
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_content(content: Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(b),
            other => Err(DeError(format!(
                "expected bool, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for String {
    fn content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_content(content: Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s),
            other => Err(DeError(format!(
                "expected string, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_content(content: Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError(format!(
                "expected char, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn content(&self) -> Content {
        (**self).content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn content(&self) -> Content {
        (**self).content()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_content(content: Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<[T]> {
    fn from_content(content: Content) -> Result<Self, DeError> {
        Vec::<T>::from_content(content).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::content).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_content(content: Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.into_iter().map(T::from_content).collect(),
            other => Err(DeError(format!(
                "expected sequence, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn content(&self) -> Content {
        match self {
            Some(v) => v.content(),
            None => Content::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_content(content: Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn content(&self) -> Content {
        Content::Seq(vec![self.0.content(), self.1.content()])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn from_content(content: Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                Ok((
                    A::from_content(it.next().unwrap())?,
                    B::from_content(it.next().unwrap())?,
                ))
            }
            other => Err(DeError(format!(
                "expected 2-element sequence, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.content())).collect())
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn from_content(content: Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, V::from_content(v)?)))
                .collect(),
            other => Err(DeError(format!(
                "expected map, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn content(&self) -> Content {
        // Sorted for deterministic output, like serde_json's "preserve_order"-off mode.
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.clone(), v.content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<'de, V: Deserialize<'de>, S: std::hash::BuildHasher + Default> Deserialize<'de>
    for std::collections::HashMap<String, V, S>
{
    fn from_content(content: Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, V::from_content(v)?)))
                .collect(),
            other => Err(DeError(format!(
                "expected map, found {}",
                other.type_name()
            ))),
        }
    }
}

/// Support machinery for the derive macros; not part of the public API.
pub mod __private {
    use super::{Content, DeError, Deserialize, Deserializer, Serialize, Serializer};

    /// Serializer that simply hands back the content tree.
    pub struct ContentSerializer;

    impl Serializer for ContentSerializer {
        type Ok = Content;
        type Error = DeError;
        fn serialize_content(self, content: Content) -> Result<Content, DeError> {
            Ok(content)
        }
    }

    /// Deserializer over an already-built content tree.
    pub struct ContentDeserializer(pub Content);

    impl<'de> Deserializer<'de> for ContentDeserializer {
        type Error = DeError;
        fn deserialize_content(self) -> Result<Content, DeError> {
            Ok(self.0)
        }
    }

    /// Lowers any serializable value into content.
    pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Content {
        value.content()
    }

    /// Rebuilds any deserializable value from content.
    pub fn from_content<T: for<'de> Deserialize<'de>>(content: Content) -> Result<T, DeError> {
        T::from_content(content)
    }

    /// Removes the entry with the given key from a content map, if present.
    pub fn take(map: &mut Vec<(String, Content)>, key: &str) -> Option<Content> {
        let idx = map.iter().position(|(k, _)| k == key)?;
        Some(map.remove(idx).1)
    }
}
