//! Vendored minimal stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] test macro
//! (with `#![proptest_config(...)]`), [`Strategy`] with `prop_map` /
//! `prop_flat_map`, numeric-range and [`collection::vec`] strategies, tuple
//! strategies, [`prop_oneof!`], and the `prop_assert*` / [`prop_assume!`]
//! macros. Cases are *generated* from a deterministic per-test RNG; there is
//! no shrinking — a failing case panics with the rendered assertion message,
//! and re-running reproduces it exactly.

/// Deterministic test-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds an RNG whose stream is a pure function of the test name.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!` precondition.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing the predicate (retrying a bounded
    /// number of times, then panicking like real proptest's rejection limit).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Weighted choice between strategies of a common value type.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union from weighted boxed strategies.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Self {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.options {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weight accounting in Union::generate")
    }
}

/// Boxes a strategy; helper used by [`prop_oneof!`] to unify element types.
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let u = ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64) as $t;
                start + u * (end - start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification for [`vec`]: a fixed length or a length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut __passed: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(20).max(100);
                while __passed < __config.cases {
                    __attempts += 1;
                    if __attempts > __max_attempts {
                        panic!(
                            "proptest `{}`: too many rejected cases ({} attempts, {} passed)",
                            stringify!($name), __attempts, __passed
                        );
                    }
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        Ok(()) => __passed += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest `{}` failed: {}", stringify!($name), msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Weighted or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( ($weight as u32, $crate::boxed_strategy($strat)) ),+ ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( (1u32, $crate::boxed_strategy($strat)) ),+ ])
    };
}

/// Asserts a condition inside a property; failures are reported with the
/// generated inputs' test-case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l != __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Skips cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
