//! Queries: range search, point lookup, full scan, nearest-to-sky helpers.

use crate::entry::{DataEntry, NodeEntry, RecordId};
use crate::tree::RTree;
use pref_geom::{Mbr, Point};

impl RTree {
    /// Returns every data entry whose point lies inside `range`
    /// (boundaries included). Node accesses are charged to the I/O stats.
    pub fn range_query(&mut self, range: &Mbr) -> Vec<DataEntry> {
        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        let mut stack = vec![root];
        while let Some(page) = stack.pop() {
            let (_, entries) = self.node_entries(page);
            for entry in entries {
                match entry {
                    NodeEntry::Data(d) => {
                        if range.contains_point(&d.point) {
                            out.push(d);
                        }
                    }
                    NodeEntry::Child { mbr, page } => {
                        if mbr.intersects(range) {
                            stack.push(page);
                        }
                    }
                }
            }
        }
        out
    }

    /// Looks up a specific record at a specific location; charges I/O.
    pub fn lookup(&mut self, record: RecordId, point: &Point) -> Option<DataEntry> {
        let range = Mbr::from_point(point);
        self.range_query(&range)
            .into_iter()
            .find(|d| d.record == record)
    }

    /// `true` iff the record exists at `point`; charges I/O.
    pub fn contains(&mut self, record: RecordId, point: &Point) -> bool {
        self.lookup(record, point).is_some()
    }

    /// Returns every data entry by scanning the whole tree; charges I/O.
    pub fn scan(&mut self) -> Vec<DataEntry> {
        let whole = Mbr::new(vec![f64::MIN; self.dims()], vec![f64::MAX; self.dims()])
            .expect("full-space MBR is valid");
        self.range_query(&whole)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeConfig;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn build(n: u64, dims: usize, seed: u64, fanout: usize) -> (RTree, Vec<(RecordId, Point)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let recs: Vec<(RecordId, Point)> = (0..n)
            .map(|i| {
                (
                    RecordId(i),
                    Point::from_slice(
                        &(0..dims)
                            .map(|_| rng.gen_range(0.0..1.0))
                            .collect::<Vec<_>>(),
                    ),
                )
            })
            .collect();
        let tree = RTree::bulk_load(
            RTreeConfig::for_dims(dims).with_fanout(fanout),
            recs.clone(),
        )
        .unwrap();
        (tree, recs)
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let (mut tree, recs) = build(2000, 3, 12, 16);
        let range = Mbr::new(vec![0.2, 0.3, 0.1], vec![0.7, 0.9, 0.6]).unwrap();
        let mut got: Vec<u64> = tree
            .range_query(&range)
            .iter()
            .map(|d| d.record.0)
            .collect();
        got.sort_unstable();
        let mut want: Vec<u64> = recs
            .iter()
            .filter(|(_, p)| range.contains_point(p))
            .map(|(r, _)| r.0)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(
            !got.is_empty(),
            "the range should not be empty for this seed"
        );
    }

    #[test]
    fn empty_range_returns_nothing() {
        let (mut tree, _) = build(500, 2, 13, 8);
        let range = Mbr::new(vec![2.0, 2.0], vec![3.0, 3.0]).unwrap();
        assert!(tree.range_query(&range).is_empty());
    }

    #[test]
    fn range_query_on_empty_tree() {
        let mut tree = RTree::with_dims(2);
        let range = Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert!(tree.range_query(&range).is_empty());
    }

    #[test]
    fn lookup_and_contains() {
        let (mut tree, recs) = build(300, 2, 14, 8);
        let (r, p) = &recs[123];
        assert!(tree.contains(*r, p));
        assert_eq!(tree.lookup(*r, p).unwrap().record, *r);
        assert!(!tree.contains(RecordId(999_999), p));
    }

    #[test]
    fn scan_returns_everything() {
        let (mut tree, recs) = build(700, 4, 15, 20);
        let scanned = tree.scan();
        assert_eq!(scanned.len(), recs.len());
    }

    #[test]
    fn range_query_charges_fewer_ios_than_scan() {
        let (mut tree, _) = build(5000, 2, 16, 32);
        tree.reset_stats();
        let small = Mbr::new(vec![0.4, 0.4], vec![0.45, 0.45]).unwrap();
        tree.range_query(&small);
        let small_io = tree.stats().logical_reads;
        tree.reset_stats();
        tree.scan();
        let scan_io = tree.stats().logical_reads;
        assert!(
            small_io < scan_io,
            "selective range ({small_io}) should touch fewer nodes than a scan ({scan_io})"
        );
        assert_eq!(scan_io as usize, tree.num_pages());
    }

    #[test]
    fn buffer_reduces_physical_reads_on_repeated_queries() {
        let (mut tree, _) = build(3000, 2, 17, 16);
        tree.set_buffer_fraction(0.5);
        tree.reset_stats();
        let range = Mbr::new(vec![0.1, 0.1], vec![0.3, 0.3]).unwrap();
        tree.range_query(&range);
        let first = tree.stats().physical_reads;
        tree.range_query(&range);
        let second = tree.stats().physical_reads - first;
        assert!(
            second < first,
            "warm buffer should absorb repeated accesses"
        );
    }
}
