//! The R-tree structure, configuration, low-level node access and validation.

use crate::entry::{DataEntry, Node, NodeEntry, RecordId};
use pref_geom::{Mbr, Point, SoaBlock};
use pref_storage::{entries_per_page, IoStats, PageId, PagedStore};

/// Configuration of an [`RTree`].
#[derive(Debug, Clone)]
pub struct RTreeConfig {
    /// Dimensionality of the indexed points.
    pub dims: usize,
    /// Maximum number of entries per node. Defaults to the page fanout
    /// derived from the 4 KiB page size ([`pref_storage::entries_per_page`]).
    pub max_entries: usize,
    /// Minimum number of entries per non-root node. Defaults to 40% of
    /// `max_entries`.
    pub min_entries: usize,
    /// Number of LRU buffer frames. Defaults to zero (no buffer); the
    /// experiment harness sets it as a fraction of the built tree size.
    pub buffer_frames: usize,
}

impl RTreeConfig {
    /// The default configuration for a given dimensionality: page-derived
    /// fanout, 40% minimum fill, no buffer.
    pub fn for_dims(dims: usize) -> Self {
        let max_entries = entries_per_page(dims);
        Self {
            dims,
            max_entries,
            min_entries: (max_entries * 2 / 5).max(2),
            buffer_frames: 0,
        }
    }

    /// Overrides the fanout (useful in tests to force deep trees).
    pub fn with_fanout(mut self, max_entries: usize) -> Self {
        assert!(max_entries >= 4, "fanout must be at least 4");
        self.max_entries = max_entries;
        self.min_entries = (max_entries * 2 / 5).max(2);
        self
    }

    /// Overrides the buffer size in frames.
    pub fn with_buffer_frames(mut self, frames: usize) -> Self {
        self.buffer_frames = frames;
        self
    }
}

/// Errors reported by R-tree operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RTreeError {
    /// A point with the wrong dimensionality was supplied.
    DimensionMismatch {
        /// Dimensionality of the tree.
        expected: usize,
        /// Dimensionality of the supplied point.
        got: usize,
    },
    /// The record to delete was not found at the given location.
    RecordNotFound(RecordId),
    /// An invariant check failed (message describes the violation).
    CorruptTree(String),
}

impl std::fmt::Display for RTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RTreeError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: tree has {expected}, point has {got}"
                )
            }
            RTreeError::RecordNotFound(r) => write!(f, "record {r} not found"),
            RTreeError::CorruptTree(msg) => write!(f, "corrupt tree: {msg}"),
        }
    }
}

impl std::error::Error for RTreeError {}

/// A disk-style R-tree storing one node per simulated 4 KiB page.
///
/// Not `Clone`: under an on-disk backend ([`RTree::new_on_disk`]) a deep
/// clone would have to copy or alias a page file. Use
/// [`RTree::fork_in_memory`] for an explicit in-memory copy.
#[derive(Debug)]
pub struct RTree {
    pub(crate) store: PagedStore<Node>,
    pub(crate) root: Option<PageId>,
    pub(crate) config: RTreeConfig,
    pub(crate) height: u32,
    pub(crate) len: usize,
}

impl RTree {
    /// Creates an empty tree.
    pub fn new(config: RTreeConfig) -> Self {
        Self::validate_config(&config);
        let buffer = config.buffer_frames;
        Self {
            store: PagedStore::new(buffer),
            root: None,
            config,
            height: 0,
            len: 0,
        }
    }

    /// Creates an empty tree whose pages live in a real page file at `path`
    /// (created/truncated). The buffer capacity in `config.buffer_frames` is
    /// *real* here: pages evicted from the buffer are written to the file and
    /// faulted back on demand, so the tree can exceed the buffer — and RAM.
    /// [`IoStats::page_writes`]/[`IoStats::sync_calls`] report the resulting
    /// file I/O.
    ///
    /// The page file is a capacity mechanism, not a durability one (see
    /// [`pref_storage::FileBackend`]); it is only meaningful while this tree
    /// is alive.
    pub fn new_on_disk(
        config: RTreeConfig,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, pref_storage::StorageError> {
        Self::validate_config(&config);
        let slot = crate::codec::node_slot_size(config.dims, config.max_entries);
        let backend = pref_storage::FileBackend::<Node>::create(path, slot)?;
        let buffer = config.buffer_frames.max(1);
        Ok(Self {
            store: PagedStore::with_backend(Box::new(backend), buffer),
            root: None,
            config,
            height: 0,
            len: 0,
        })
    }

    fn validate_config(config: &RTreeConfig) {
        assert!(config.dims > 0, "dimensionality must be positive");
        assert!(
            config.min_entries * 2 <= config.max_entries,
            "min_entries must be at most half of max_entries"
        );
    }

    /// Materializes an explicit in-memory copy of this tree (the replacement
    /// for the old derived `Clone`): every node page is cloned — faulted in
    /// from the backend if evicted — into a fresh in-memory store preserving
    /// page ids, buffer state and I/O statistics.
    pub fn fork_in_memory(&mut self) -> RTree {
        RTree {
            store: self.store.fork_in_memory(),
            root: self.root,
            config: self.config.clone(),
            height: self.height,
            len: self.len,
        }
    }

    /// Writes every dirty page back to the backend and issues a durability
    /// barrier. A no-op for in-memory trees.
    pub fn flush(&mut self) -> Result<(), pref_storage::StorageError> {
        self.store.flush()
    }

    /// `true` when the tree's pages live in a persistent backend (a page
    /// file) rather than the in-memory simulation.
    pub fn is_on_disk(&self) -> bool {
        self.store.is_persistent()
    }

    /// Convenience constructor with the default configuration for `dims`.
    pub fn with_dims(dims: usize) -> Self {
        Self::new(RTreeConfig::for_dims(dims))
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 when empty, 1 for a single leaf root).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Dimensionality of the indexed points.
    pub fn dims(&self) -> usize {
        self.config.dims
    }

    /// Maximum entries per node.
    pub fn max_entries(&self) -> usize {
        self.config.max_entries
    }

    /// Minimum entries per non-root node.
    pub fn min_entries(&self) -> usize {
        self.config.min_entries
    }

    /// Number of live pages (= number of nodes).
    pub fn num_pages(&self) -> usize {
        self.store.len()
    }

    /// The root page, if the tree is non-empty.
    pub fn root_page(&self) -> Option<PageId> {
        self.root
    }

    /// I/O statistics of the underlying store.
    pub fn stats(&self) -> IoStats {
        self.store.stats()
    }

    /// Resets the I/O statistics.
    pub fn reset_stats(&mut self) {
        self.store.reset_stats();
    }

    /// Clears the LRU buffer (all pages become cold).
    pub fn clear_buffer(&mut self) {
        self.store.clear_buffer();
    }

    /// Sets the LRU buffer size as a fraction of the current tree size,
    /// mirroring the paper's "buffer size X% of the tree size".
    pub fn set_buffer_fraction(&mut self, fraction: f64) {
        self.store.set_buffer_fraction(fraction);
    }

    /// Sets the LRU buffer size in frames.
    pub fn set_buffer_frames(&mut self, frames: usize) {
        self.store.set_buffer_frames(frames);
    }

    /// Current buffer capacity in frames.
    pub fn buffer_frames(&self) -> usize {
        self.store.buffer_frames()
    }

    /// Reads a node and returns a copy of its level and entries, charging one
    /// logical access (and a physical read on a buffer miss). This is the
    /// access path used by the BBS / BRS traversals.
    pub fn node_entries(&mut self, page: PageId) -> (u32, Vec<NodeEntry>) {
        let node = self.store.read(page);
        (node.level, node.entries.clone())
    }

    /// Reads the root node's entries (charging I/O); `None` for an empty tree.
    pub fn root_entries(&mut self) -> Option<(u32, Vec<NodeEntry>)> {
        self.root.map(|r| self.node_entries(r))
    }

    /// Columnar variant of [`RTree::node_entries`]: in addition to the entry
    /// copies, fills `block` (cleared first) with one point per entry in entry
    /// order — the data point for data entries, the MBR's best corner for
    /// child entries — so a caller can batch-score the whole page with the
    /// [`pref_geom::kernel`] lanes. Charges exactly the same single logical
    /// access as `node_entries`; the columnar view is a free by-product of the
    /// page read, not an extra I/O.
    pub fn node_entries_columnar(
        &mut self,
        page: PageId,
        block: &mut SoaBlock,
    ) -> (u32, Vec<NodeEntry>) {
        let node = self.store.read(page);
        block.clear();
        for entry in &node.entries {
            match entry {
                NodeEntry::Data(d) => block.push_coords(d.point.coords()),
                NodeEntry::Child { mbr, .. } => block.push_coords(mbr.upper()),
            }
        }
        (node.level, node.entries.clone())
    }

    /// Columnar variant of [`RTree::root_entries`]; `None` for an empty tree.
    pub fn root_entries_columnar(&mut self, block: &mut SoaBlock) -> Option<(u32, Vec<NodeEntry>)> {
        self.root.map(|r| self.node_entries_columnar(r, block))
    }

    /// The MBR of the whole tree (no I/O charged; for diagnostics).
    pub fn bounding_mbr(&self) -> Option<Mbr> {
        self.root.and_then(|r| self.store.peek(r)).map(Node::mbr)
    }

    /// Validates the point's dimensionality against the tree's.
    pub(crate) fn check_dims(&self, point: &Point) -> Result<(), RTreeError> {
        if point.dims() != self.config.dims {
            Err(RTreeError::DimensionMismatch {
                expected: self.config.dims,
                got: point.dims(),
            })
        } else {
            Ok(())
        }
    }

    /// Checks the structural invariants of the tree. Used extensively by
    /// tests; returns a description of the first violation found.
    ///
    /// Walks resident pages only: for an on-disk tree (whose cold pages are
    /// not resident) call [`RTree::fork_in_memory`] and validate the fork.
    pub fn check_invariants(&self) -> Result<(), RTreeError> {
        let Some(root) = self.root else {
            if self.len != 0 || self.height != 0 {
                return Err(RTreeError::CorruptTree(
                    "empty tree with non-zero len or height".into(),
                ));
            }
            return Ok(());
        };
        let root_node = self
            .store
            .peek(root)
            .ok_or_else(|| RTreeError::CorruptTree("root page is not live".into()))?;
        if root_node.level + 1 != self.height {
            return Err(RTreeError::CorruptTree(format!(
                "root level {} inconsistent with height {}",
                root_node.level, self.height
            )));
        }
        let mut data_count = 0usize;
        let mut page_count = 0usize;
        self.check_node(root, None, true, &mut data_count, &mut page_count)?;
        if data_count != self.len {
            return Err(RTreeError::CorruptTree(format!(
                "tree reports len {} but contains {} data entries",
                self.len, data_count
            )));
        }
        if page_count != self.store.len() {
            return Err(RTreeError::CorruptTree(format!(
                "tree reaches {page_count} pages but the store holds {}",
                self.store.len()
            )));
        }
        Ok(())
    }

    fn check_node(
        &self,
        page: PageId,
        parent_mbr: Option<&Mbr>,
        is_root: bool,
        data_count: &mut usize,
        page_count: &mut usize,
    ) -> Result<(), RTreeError> {
        let node = self
            .store
            .peek(page)
            .ok_or_else(|| RTreeError::CorruptTree(format!("dangling page {page}")))?;
        *page_count += 1;
        if node.is_empty() {
            return Err(RTreeError::CorruptTree(format!("empty node at {page}")));
        }
        if !is_root && node.len() < self.config.min_entries {
            return Err(RTreeError::CorruptTree(format!(
                "underfull node at {page}: {} < {}",
                node.len(),
                self.config.min_entries
            )));
        }
        if node.len() > self.config.max_entries {
            return Err(RTreeError::CorruptTree(format!(
                "overfull node at {page}: {} > {}",
                node.len(),
                self.config.max_entries
            )));
        }
        if let Some(parent) = parent_mbr {
            if !parent.contains_mbr(&node.mbr()) {
                return Err(RTreeError::CorruptTree(format!(
                    "node {page} MBR not contained in parent entry MBR"
                )));
            }
        }
        for entry in &node.entries {
            match entry {
                NodeEntry::Data(d) => {
                    if node.level != 0 {
                        return Err(RTreeError::CorruptTree(format!(
                            "data entry in non-leaf node {page}"
                        )));
                    }
                    if d.point.dims() != self.config.dims {
                        return Err(RTreeError::CorruptTree(format!(
                            "data entry {} has wrong dimensionality",
                            d.record
                        )));
                    }
                    *data_count += 1;
                }
                NodeEntry::Child { mbr, page: child } => {
                    if node.level == 0 {
                        return Err(RTreeError::CorruptTree(format!(
                            "child pointer in leaf node {page}"
                        )));
                    }
                    let child_node = self.store.peek(*child).ok_or_else(|| {
                        RTreeError::CorruptTree(format!("dangling child {child} of {page}"))
                    })?;
                    if child_node.level + 1 != node.level {
                        return Err(RTreeError::CorruptTree(format!(
                            "child {child} level {} under parent level {}",
                            child_node.level, node.level
                        )));
                    }
                    if child_node.mbr() != *mbr {
                        return Err(RTreeError::CorruptTree(format!(
                            "stale MBR for child {child} of {page}"
                        )));
                    }
                    self.check_node(*child, Some(mbr), false, data_count, page_count)?;
                }
            }
        }
        Ok(())
    }

    /// Collects every data entry without charging I/O (test/diagnostic path).
    /// Resident pages only — see [`RTree::check_invariants`] for the on-disk
    /// caveat.
    pub fn all_data_unaccounted(&self) -> Vec<DataEntry> {
        let mut out = Vec::with_capacity(self.len);
        if let Some(root) = self.root {
            self.collect_data(root, &mut out);
        }
        out
    }

    fn collect_data(&self, page: PageId, out: &mut Vec<DataEntry>) {
        let node = self.store.peek(page).expect("live page");
        for entry in &node.entries {
            match entry {
                NodeEntry::Data(d) => out.push(d.clone()),
                NodeEntry::Child { page: child, .. } => self.collect_data(*child, out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_properties() {
        let t = RTree::with_dims(3);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 0);
        assert_eq!(t.dims(), 3);
        assert!(t.root_page().is_none());
        assert!(t.bounding_mbr().is_none());
        assert!(t.check_invariants().is_ok());
        assert_eq!(t.num_pages(), 0);
    }

    #[test]
    fn config_defaults_follow_page_size() {
        let c = RTreeConfig::for_dims(4);
        assert_eq!(c.max_entries, 56);
        assert_eq!(c.min_entries, 22);
        let c = c.with_fanout(10);
        assert_eq!(c.max_entries, 10);
        assert_eq!(c.min_entries, 4);
        let c = c.with_buffer_frames(7);
        assert_eq!(c.buffer_frames, 7);
    }

    #[test]
    #[should_panic(expected = "fanout must be at least 4")]
    fn tiny_fanout_rejected() {
        let _ = RTreeConfig::for_dims(2).with_fanout(3);
    }

    #[test]
    fn dimension_check() {
        let t = RTree::with_dims(2);
        assert!(t.check_dims(&Point::from_slice(&[0.1, 0.2])).is_ok());
        let err = t
            .check_dims(&Point::from_slice(&[0.1, 0.2, 0.3]))
            .unwrap_err();
        assert!(matches!(
            err,
            RTreeError::DimensionMismatch {
                expected: 2,
                got: 3
            }
        ));
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn error_display() {
        assert!(RTreeError::RecordNotFound(RecordId(5))
            .to_string()
            .contains("r5"));
        assert!(RTreeError::CorruptTree("boom".into())
            .to_string()
            .contains("boom"));
    }
}
