//! Sort-Tile-Recursive (STR) bulk loading.

use crate::entry::{DataEntry, Node, NodeEntry, RecordId};
use crate::tree::{RTree, RTreeConfig, RTreeError};
use pref_geom::Point;

impl RTree {
    /// Builds an R-tree from a batch of records using the STR
    /// (Sort-Tile-Recursive) packing algorithm.
    ///
    /// Construction does **not** charge I/O: the paper's experiments build the
    /// object index up front and measure only the assignment algorithms.
    /// The LRU buffer starts cold; call [`RTree::set_buffer_fraction`]
    /// afterwards to configure it relative to the built tree size.
    pub fn bulk_load(
        config: RTreeConfig,
        records: Vec<(RecordId, Point)>,
    ) -> Result<Self, RTreeError> {
        let mut tree = RTree::new(config);
        if records.is_empty() {
            return Ok(tree);
        }
        for (_, p) in &records {
            tree.check_dims(p)?;
        }
        let entries: Vec<DataEntry> = records
            .into_iter()
            .map(|(r, p)| DataEntry::new(r, p))
            .collect();
        let count = entries.len();
        tree.store.with_accounting_paused(|_| {});
        tree.build_from_entries(entries);
        tree.len = count;
        Ok(tree)
    }

    /// Convenience constructor with default configuration for the points'
    /// dimensionality.
    pub fn bulk_load_default(records: Vec<(RecordId, Point)>) -> Result<Self, RTreeError> {
        let dims = records.first().map(|(_, p)| p.dims()).ok_or_else(|| {
            RTreeError::CorruptTree("cannot infer dimensionality of empty input".into())
        })?;
        Self::bulk_load(RTreeConfig::for_dims(dims), records)
    }

    fn build_from_entries(&mut self, entries: Vec<DataEntry>) {
        // Pack the leaf level. Classic STR packs nodes to full fanout; the
        // balanced chunking below guarantees that every produced node holds at
        // least `fanout / 2 >= min_entries` entries, so bulk-loaded trees
        // satisfy the same fill invariants as dynamically built ones.
        let fanout = self.config.max_entries;
        let leaf_capacity = fanout;
        let dims = self.config.dims;

        let mut leaf_groups = str_partition(entries, leaf_capacity, dims, |e: &DataEntry, d| {
            e.point.coord(d)
        });

        // Allocate leaf nodes without charging I/O.
        let mut level_entries: Vec<NodeEntry> = Vec::with_capacity(leaf_groups.len());
        self.store.with_accounting_paused(|store| {
            for group in leaf_groups.drain(..) {
                let node = Node::leaf(group);
                let mbr = node.mbr();
                let page = store.allocate(node);
                level_entries.push(NodeEntry::Child { mbr, page });
            }
        });

        let mut level = 0u32;
        // Pack upper levels until a single root remains.
        while level_entries.len() > 1 {
            level += 1;
            let capacity = fanout;
            let groups = str_partition(level_entries, capacity, dims, |e: &NodeEntry, d| {
                // use the MBR centre for tiling the upper levels
                let m = e.mbr();
                (m.lower()[d] + m.upper()[d]) / 2.0
            });
            let mut next: Vec<NodeEntry> = Vec::with_capacity(groups.len());
            self.store.with_accounting_paused(|store| {
                for group in groups {
                    let node = Node {
                        level,
                        entries: group,
                    };
                    let mbr = node.mbr();
                    let page = store.allocate(node);
                    next.push(NodeEntry::Child { mbr, page });
                }
            });
            level_entries = next;
        }

        // level_entries now holds exactly one entry: the root pointer if the
        // data spanned multiple nodes, or a single leaf.
        let root_entry = level_entries.pop().expect("non-empty input");
        let root_page = root_entry
            .child_page()
            .expect("packed entries are child pointers");
        self.root = Some(root_page);
        let root_level = self.store.peek(root_page).expect("live root").level;
        self.height = root_level + 1;
    }
}

/// Recursive STR tiling: sorts by the first dimension, cuts into vertical
/// slabs, then recursively tiles each slab on the remaining dimensions,
/// finally chunking into groups of at most `capacity`. The `key` callback
/// returns the sort coordinate of an item in a given dimension.
fn str_partition<T, F>(items: Vec<T>, capacity: usize, dims: usize, key: F) -> Vec<Vec<T>>
where
    F: Fn(&T, usize) -> f64 + Copy,
{
    fn recurse<T, F>(
        mut items: Vec<T>,
        capacity: usize,
        dim: usize,
        dims: usize,
        key: F,
        out: &mut Vec<Vec<T>>,
    ) where
        F: Fn(&T, usize) -> f64 + Copy,
    {
        if items.len() <= capacity {
            if !items.is_empty() {
                out.push(items);
            }
            return;
        }
        if dim + 1 >= dims {
            // last dimension: emit balanced chunks so no chunk is smaller than
            // half the capacity (which keeps every node above the minimum fill)
            items.sort_by(|a, b| {
                key(a, dim)
                    .partial_cmp(&key(b, dim))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for chunk_sizes in balanced_sizes(items.len(), capacity) {
                let rest = items.split_off(chunk_sizes);
                out.push(items);
                items = rest;
            }
            debug_assert!(items.is_empty());
            return;
        }
        // number of leaf-level groups this call must produce
        let total_groups = items.len().div_ceil(capacity);
        // number of slabs along this dimension
        let remaining_dims = dims - dim;
        let slabs = (total_groups as f64)
            .powf(1.0 / remaining_dims as f64)
            .ceil() as usize;
        let slabs = slabs.clamp(1, total_groups.max(1));
        items.sort_by(|a, b| {
            key(a, dim)
                .partial_cmp(&key(b, dim))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // balanced slab sizes (difference of at most one item between slabs)
        let n = items.len();
        let base = n / slabs;
        let extra = n % slabs;
        for slab_idx in 0..slabs {
            let size = base + usize::from(slab_idx < extra);
            let rest = items.split_off(size);
            let slab = items;
            items = rest;
            recurse(slab, capacity, dim + 1, dims, key, out);
        }
        debug_assert!(items.is_empty());
    }

    let mut out = Vec::new();
    recurse(items, capacity, 0, dims, key, &mut out);
    out
}

/// Splits `n` items into `ceil(n / capacity)` chunks whose sizes differ by at
/// most one, so every chunk holds at least `capacity / 2` items when
/// `n > capacity`.
fn balanced_sizes(n: usize, capacity: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let groups = n.div_ceil(capacity);
    let base = n / groups;
    let extra = n % groups;
    (0..groups).map(|g| base + usize::from(g < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_records(n: u64, dims: usize, seed: u64) -> Vec<(RecordId, Point)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    RecordId(i),
                    Point::from_slice(
                        &(0..dims)
                            .map(|_| rng.gen_range(0.0..1.0))
                            .collect::<Vec<_>>(),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn bulk_load_empty_gives_empty_tree() {
        let t = RTree::bulk_load(RTreeConfig::for_dims(2), vec![]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn bulk_load_small_fits_in_one_leaf() {
        let recs = random_records(10, 2, 1);
        let t = RTree::bulk_load(RTreeConfig::for_dims(2), recs).unwrap();
        assert_eq!(t.len(), 10);
        assert_eq!(t.height(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_large_builds_multi_level_tree() {
        let recs = random_records(5000, 4, 2);
        let t = RTree::bulk_load(RTreeConfig::for_dims(4), recs).unwrap();
        assert_eq!(t.len(), 5000);
        assert!(t.height() >= 2);
        t.check_invariants().unwrap();
        assert_eq!(t.all_data_unaccounted().len(), 5000);
    }

    #[test]
    fn bulk_load_does_not_charge_io() {
        let recs = random_records(2000, 3, 3);
        let t = RTree::bulk_load(RTreeConfig::for_dims(3), recs).unwrap();
        assert_eq!(t.stats().physical_reads, 0);
        assert_eq!(t.stats().logical_reads, 0);
    }

    #[test]
    fn bulk_load_rejects_mixed_dimensions() {
        let recs = vec![
            (RecordId(0), Point::from_slice(&[0.1, 0.2])),
            (RecordId(1), Point::from_slice(&[0.1, 0.2, 0.3])),
        ];
        assert!(RTree::bulk_load(RTreeConfig::for_dims(2), recs).is_err());
    }

    #[test]
    fn bulk_load_default_infers_dims() {
        let recs = random_records(100, 5, 4);
        let t = RTree::bulk_load_default(recs).unwrap();
        assert_eq!(t.dims(), 5);
        assert!(RTree::bulk_load_default(vec![]).is_err());
    }

    #[test]
    fn bulk_loaded_tree_supports_dynamic_updates() {
        let recs = random_records(800, 2, 5);
        let mut t =
            RTree::bulk_load(RTreeConfig::for_dims(2).with_fanout(16), recs.clone()).unwrap();
        t.check_invariants().unwrap();
        // delete a third, insert some new ones
        for (r, p) in recs.iter().take(250) {
            t.delete(*r, p).unwrap();
        }
        for i in 0..100u64 {
            t.insert(
                RecordId(10_000 + i),
                Point::from_slice(&[0.5 + (i as f64) * 1e-4, 0.5]),
            )
            .unwrap();
        }
        assert_eq!(t.len(), 800 - 250 + 100);
        t.check_invariants().unwrap();
    }

    #[test]
    fn str_partition_groups_respect_capacity() {
        let recs = random_records(1000, 3, 6);
        let entries: Vec<DataEntry> = recs
            .into_iter()
            .map(|(r, p)| DataEntry::new(r, p))
            .collect();
        let groups = str_partition(entries, 25, 3, |e: &DataEntry, d| e.point.coord(d));
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
        assert!(groups.iter().all(|g| g.len() <= 25 && !g.is_empty()));
    }
}
