//! A disk-style R-tree over simulated paged storage.
//!
//! This crate provides the `RO` index assumed throughout the VLDB 2009 paper:
//! the object set `O` is "indexed by an R-tree with 4 KBytes page size" and
//! every algorithm is charged one I/O per node access that misses the LRU
//! buffer. One tree node occupies exactly one page of a
//! [`pref_storage::PagedStore`].
//!
//! Features:
//!
//! * **STR bulk loading** ([`RTree::bulk_load`]) — Sort-Tile-Recursive packing
//!   used to build the initial index for the experiments,
//! * **dynamic insertion** ([`RTree::insert`]) — Guttman-style ChooseLeaf with
//!   quadratic node splitting,
//! * **deletion** ([`RTree::delete`]) — find-leaf + condense-tree with
//!   re-insertion of orphaned entries; needed by the Brute Force and Chain
//!   competitors, which physically remove assigned objects from the index.
//!   The tracked variant ([`RTree::delete_tracked`]) reports every structural
//!   effect (freed pages, re-inserted orphans, re-insertion splits, MBR
//!   shrinks) so structures holding page references — the engine's maintained
//!   skyline — can stay consistent across physical deletions,
//! * **queries** — range queries and a full scan, plus low-level node access
//!   ([`RTree::node_entries`], [`RTree::root_entries`]) used by the best-first
//!   traversals of the skyline (BBS) and ranked-search (BRS) crates,
//! * **invariant checking** ([`RTree::check_invariants`]) used by tests,
//! * **on-disk storage** ([`RTree::new_on_disk`]) — the same tree over a real
//!   page file via [`pref_storage::FileBackend`], with node pages serialized
//!   by the [`codec`] module, so the indexed set can exceed the buffer (and
//!   RAM).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bulk;
pub mod codec;
mod delete;
mod entry;
mod insert;
mod query;
mod tree;

pub use codec::node_slot_size;
pub use delete::{DeleteOutcome, FreedPage};
pub use entry::{DataEntry, Node, NodeEntry, RecordId};
pub use insert::PageSplit;
pub use tree::{RTree, RTreeConfig, RTreeError};
