//! Deletion: FindLeaf + CondenseTree with re-insertion of orphaned entries.

use crate::entry::{Node, NodeEntry, RecordId};
use crate::insert::PageSplit;
use crate::tree::{RTree, RTreeError};
use pref_geom::{Mbr, Point};
use pref_storage::PageId;

/// Entries orphaned while condensing the tree, together with the node level
/// they must be re-inserted at.
type Orphans = Vec<(u32, NodeEntry)>;

/// One page freed while condensing the tree, together with the entries it
/// held at the moment it was freed. For an underflowed node these are the
/// orphans that were re-inserted elsewhere; for a collapsed root it is the
/// single child entry that was promoted to be the new root.
#[derive(Debug, Clone)]
pub struct FreedPage {
    /// The page that was freed (its id may be reused by later allocations).
    pub page: PageId,
    /// The entries the page held when it was freed. They all reference pages
    /// that are still live (or are data entries); content reachable only
    /// through the freed page stays reachable through them.
    pub contents: Vec<NodeEntry>,
}

/// Every structural effect of one tracked deletion (CondenseTree included),
/// mirroring how [`PageSplit`] reports the effects of a tracked insertion.
///
/// Structures that hold references to un-expanded R-tree pages across
/// deletions — the skyline pruned lists of the maintained
/// `pref_skyline::Skyline` — must drop references to [`DeleteOutcome::freed`]
/// pages, re-anchor those pages' former contents, and patch
/// [`DeleteOutcome::splits`] exactly as for an insertion
/// (`Skyline::patch_page_delete` + `Skyline::patch_page_split`).
#[derive(Debug, Clone, Default)]
pub struct DeleteOutcome {
    /// Pages freed by CondenseTree and by root shrinking, in chronological
    /// order (condense frees first, root collapses last).
    pub freed: Vec<FreedPage>,
    /// Node splits caused by re-inserting orphaned entries (they happen after
    /// every condense free and before any root shrink).
    pub splits: Vec<PageSplit>,
    /// Live pages on the deletion path whose MBR shrank, with their new exact
    /// MBR. Holders of stale (larger) references stay correct — an
    /// over-covering MBR is conservative — but may tighten them with this.
    pub shrinks: Vec<(PageId, Mbr)>,
}

impl RTree {
    /// Deletes the record with the given id located at `point`.
    ///
    /// Both the descent and the subsequent condense/re-insert work are charged
    /// to the I/O statistics, mirroring how the paper charges the deletions
    /// that Brute Force and Chain perform on the object R-tree.
    pub fn delete(&mut self, record: RecordId, point: &Point) -> Result<(), RTreeError> {
        self.delete_tracked(record, point).map(|_| ())
    }

    /// Deletes a record and reports every structural effect of the deletion:
    /// freed pages (with the entries they held), node splits performed while
    /// re-inserting orphaned entries, and MBR shrinks along the deletion
    /// path. Callers that keep references to un-expanded pages — the engine's
    /// maintained skyline with its pruned lists — must patch those references
    /// with the reported [`DeleteOutcome`], otherwise they would later read
    /// freed (or reused) pages and lose track of the re-inserted orphans.
    pub fn delete_tracked(
        &mut self,
        record: RecordId,
        point: &Point,
    ) -> Result<DeleteOutcome, RTreeError> {
        self.check_dims(point)?;
        let Some(root) = self.root else {
            return Err(RTreeError::RecordNotFound(record));
        };
        let mut orphans: Orphans = Vec::new();
        let mut outcome = DeleteOutcome::default();
        let found = self.delete_recurse(root, record, point, &mut orphans, &mut outcome);
        if !found {
            return Err(RTreeError::RecordNotFound(record));
        }
        self.len -= 1;
        // Re-insert orphaned entries at their original level, tracking the
        // node splits the re-insertions cause.
        for (level, entry) in orphans {
            self.insert_entry_tracked(entry, level, &mut outcome.splits);
        }
        self.shrink_root(&mut outcome);
        Ok(outcome)
    }

    /// Convenience wrapper: delete a record given as a data entry.
    pub fn delete_data(&mut self, record: RecordId, point: &Point) -> bool {
        self.delete(record, point).is_ok()
    }

    fn delete_recurse(
        &mut self,
        page: PageId,
        record: RecordId,
        point: &Point,
        orphans: &mut Orphans,
        outcome: &mut DeleteOutcome,
    ) -> bool {
        let (level, mut entries) = {
            let node = self.store.read(page);
            (node.level, node.entries.clone())
        };
        if level == 0 {
            let Some(pos) = entries.iter().position(|e| match e {
                NodeEntry::Data(d) => d.record == record && d.point == *point,
                NodeEntry::Child { .. } => false,
            }) else {
                return false;
            };
            entries.remove(pos);
            self.store.write(page, Node { level, entries });
            return true;
        }
        for idx in 0..entries.len() {
            let NodeEntry::Child {
                mbr,
                page: child_page,
            } = &entries[idx]
            else {
                continue;
            };
            if !mbr.contains_point(point) {
                continue;
            }
            let child_page = *child_page;
            let old_mbr = mbr.clone();
            if !self.delete_recurse(child_page, record, point, orphans, outcome) {
                continue;
            }
            // The deletion happened somewhere below this child.
            let child_node = self
                .store
                .peek(child_page)
                .expect("child page is live")
                .clone();
            if child_node.len() < self.config.min_entries {
                // orphan the child's remaining entries and drop the child
                outcome.freed.push(FreedPage {
                    page: child_page,
                    contents: child_node.entries.clone(),
                });
                for entry in child_node.entries {
                    orphans.push((child_node.level, entry));
                }
                self.store.free(child_page);
                entries.remove(idx);
            } else {
                let new_mbr = child_node.mbr();
                if new_mbr != old_mbr {
                    outcome.shrinks.push((child_page, new_mbr.clone()));
                }
                entries[idx] = NodeEntry::Child {
                    mbr: new_mbr,
                    page: child_page,
                };
            }
            self.store.write(page, Node { level, entries });
            return true;
        }
        false
    }

    /// Collapses the root while it is a non-leaf with a single child, and
    /// clears the tree when the root leaf becomes empty.
    fn shrink_root(&mut self, outcome: &mut DeleteOutcome) {
        loop {
            let Some(root) = self.root else { return };
            let root_node = self.store.peek(root).expect("root page is live").clone();
            if root_node.level > 0 && root_node.len() == 1 {
                let child = root_node.entries[0]
                    .child_page()
                    .expect("non-leaf entries are child pointers");
                outcome.freed.push(FreedPage {
                    page: root,
                    contents: root_node.entries,
                });
                self.store.free(root);
                self.root = Some(child);
                self.height -= 1;
                continue;
            }
            if root_node.level == 0 && root_node.is_empty() {
                outcome.freed.push(FreedPage {
                    page: root,
                    contents: Vec::new(),
                });
                self.store.free(root);
                self.root = None;
                self.height = 0;
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::DataEntry;
    use crate::tree::RTreeConfig;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_points(n: u64, dims: usize, seed: u64) -> Vec<(RecordId, Point)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    RecordId(i),
                    Point::from_slice(
                        &(0..dims)
                            .map(|_| rng.gen_range(0.0..1.0))
                            .collect::<Vec<_>>(),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn delete_single_record() {
        let mut t = RTree::with_dims(2);
        let p = Point::from_slice(&[0.3, 0.4]);
        t.insert(RecordId(1), p.clone()).unwrap();
        t.delete(RecordId(1), &p).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert_eq!(t.num_pages(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn delete_missing_record_errors() {
        let mut t = RTree::with_dims(2);
        let p = Point::from_slice(&[0.3, 0.4]);
        assert!(matches!(
            t.delete(RecordId(1), &p),
            Err(RTreeError::RecordNotFound(_))
        ));
        t.insert(RecordId(1), p.clone()).unwrap();
        // right point, wrong id
        assert!(t.delete(RecordId(2), &p).is_err());
        // right id, wrong point
        assert!(t
            .delete(RecordId(1), &Point::from_slice(&[0.5, 0.5]))
            .is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_everything_in_insertion_order() {
        let pts = random_points(300, 3, 17);
        let mut t = RTree::new(RTreeConfig::for_dims(3).with_fanout(8));
        for (r, p) in &pts {
            t.insert(*r, p.clone()).unwrap();
        }
        t.check_invariants().unwrap();
        for (i, (r, p)) in pts.iter().enumerate() {
            t.delete(*r, p).unwrap();
            if i % 50 == 0 {
                t.check_invariants().unwrap();
            }
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn delete_everything_in_random_order() {
        let mut pts = random_points(300, 2, 23);
        let mut t = RTree::new(RTreeConfig::for_dims(2).with_fanout(6));
        for (r, p) in &pts {
            t.insert(*r, p.clone()).unwrap();
        }
        // shuffle deterministically
        let mut rng = StdRng::seed_from_u64(99);
        for i in (1..pts.len()).rev() {
            let j = rng.gen_range(0..=i);
            pts.swap(i, j);
        }
        for (i, (r, p)) in pts.iter().enumerate() {
            t.delete(*r, p).unwrap();
            if i % 37 == 0 {
                t.check_invariants().unwrap();
            }
            assert_eq!(t.len(), pts.len() - i - 1);
        }
        assert!(t.is_empty());
    }

    #[test]
    fn interleaved_inserts_and_deletes() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut t = RTree::new(RTreeConfig::for_dims(2).with_fanout(5));
        let mut live: Vec<(RecordId, Point)> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..1200 {
            let do_insert = live.is_empty() || rng.gen_bool(0.6);
            if do_insert {
                let p = Point::from_slice(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
                t.insert(RecordId(next_id), p.clone()).unwrap();
                live.push((RecordId(next_id), p));
                next_id += 1;
            } else {
                let idx = rng.gen_range(0..live.len());
                let (r, p) = live.swap_remove(idx);
                t.delete(r, &p).unwrap();
            }
            assert_eq!(t.len(), live.len());
            if step % 200 == 0 {
                t.check_invariants().unwrap();
            }
        }
        t.check_invariants().unwrap();
        // remaining data matches the model
        let mut got: Vec<u64> = t
            .all_data_unaccounted()
            .iter()
            .map(|d| d.record.0)
            .collect();
        let mut want: Vec<u64> = live.iter().map(|(r, _)| r.0).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_points_delete_by_record_id() {
        let mut t = RTree::new(RTreeConfig::for_dims(2).with_fanout(4));
        let p = Point::from_slice(&[0.5, 0.5]);
        for i in 0..10 {
            t.insert(RecordId(i), p.clone()).unwrap();
        }
        t.delete(RecordId(3), &p).unwrap();
        assert_eq!(t.len(), 9);
        let remaining: Vec<u64> = t
            .all_data_unaccounted()
            .iter()
            .map(|d: &DataEntry| d.record.0)
            .collect();
        assert!(!remaining.contains(&3));
        t.check_invariants().unwrap();
    }

    /// The tracked report must be a complete account of the structural
    /// damage: freed pages are really gone, every re-insertion split names a
    /// live sibling, and every remaining record is still findable.
    #[test]
    fn tracked_delete_reports_frees_splits_and_shrinks() {
        let pts = random_points(400, 2, 71);
        let mut t = RTree::new(RTreeConfig::for_dims(2).with_fanout(4));
        for (r, p) in &pts {
            t.insert(*r, p.clone()).unwrap();
        }
        let mut total_freed = 0usize;
        let mut total_splits = 0usize;
        let mut total_shrinks = 0usize;
        for (i, (r, p)) in pts.iter().enumerate() {
            let pages_before = t.num_pages();
            let outcome = t.delete_tracked(*r, p).unwrap();
            // page count evolves exactly by the reported frees and splits
            // (plus at most one unreported root growth during re-insertion)
            let grows = (t.num_pages() + outcome.freed.len())
                .checked_sub(pages_before + outcome.splits.len())
                .expect("more pages vanished than were reported freed");
            assert!(grows <= 1, "{grows} unexplained page allocations");
            for freed in &outcome.freed {
                // the freed page's contents reference only live pages
                for entry in &freed.contents {
                    if let Some(child) = entry.child_page() {
                        assert!(
                            t.store.peek(child).is_some(),
                            "freed page {} content references dead page {child}",
                            freed.page
                        );
                    }
                }
            }
            for split in &outcome.splits {
                assert_ne!(split.old_page, split.new_page);
                assert!(t.store.peek(split.new_page).is_some());
            }
            for (page, _) in &outcome.shrinks {
                // shrink targets never underflow, so they survive the whole
                // operation (a collapsed root's promoted child stays live too)
                assert!(
                    t.store.peek(*page).is_some(),
                    "shrink reported for dead page {page}"
                );
            }
            total_freed += outcome.freed.len();
            total_splits += outcome.splits.len();
            total_shrinks += outcome.shrinks.len();
            if i % 67 == 0 {
                t.check_invariants().unwrap();
            }
        }
        assert!(t.is_empty());
        assert!(total_freed > 50, "only {total_freed} frees reported");
        assert!(total_shrinks > 50, "only {total_shrinks} shrinks reported");
        // fanout-4 condense/re-insert cascades must split at least sometimes
        assert!(total_splits > 0, "no re-insertion splits reported");
    }

    #[test]
    fn tracked_delete_on_leaf_root_reports_the_final_free() {
        let mut t = RTree::with_dims(2);
        let p = Point::from_slice(&[0.3, 0.4]);
        t.insert(RecordId(1), p.clone()).unwrap();
        let root = t.root_page().unwrap();
        let outcome = t.delete_tracked(RecordId(1), &p).unwrap();
        assert_eq!(outcome.freed.len(), 1);
        assert_eq!(outcome.freed[0].page, root);
        assert!(outcome.freed[0].contents.is_empty());
        assert!(outcome.splits.is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn deletion_charges_io() {
        let pts = random_points(200, 2, 41);
        let mut t = RTree::new(RTreeConfig::for_dims(2).with_fanout(8));
        for (r, p) in &pts {
            t.insert(*r, p.clone()).unwrap();
        }
        t.reset_stats();
        for (r, p) in pts.iter().take(50) {
            t.delete(*r, p).unwrap();
        }
        assert!(t.stats().logical_reads > 0);
        assert!(t.stats().physical_writes > 0);
    }
}
