//! Node and entry types stored in R-tree pages.

use pref_geom::{Mbr, Point};
use pref_storage::PageId;
use serde::{Deserialize, Serialize};

/// Identifier of a data record (an object of the set `O`, or a preference
/// function when the tree indexes weight vectors for the Chain algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId(pub u64);

impl RecordId {
    /// The raw identifier.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A leaf-level data entry: a point plus the identifier of the record it
/// represents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataEntry {
    /// The record's feature vector.
    pub point: Point,
    /// The record identifier.
    pub record: RecordId,
}

impl DataEntry {
    /// Creates a data entry.
    pub fn new(record: RecordId, point: Point) -> Self {
        Self { point, record }
    }
}

/// An entry stored inside an R-tree node: either a pointer to a child node
/// (with the MBR of that child's subtree) or a data entry (in a leaf).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeEntry {
    /// A child pointer in a non-leaf node.
    Child {
        /// MBR of the entire subtree rooted at `page`.
        mbr: Mbr,
        /// Page holding the child node.
        page: PageId,
    },
    /// A data record in a leaf node.
    Data(DataEntry),
}

impl NodeEntry {
    /// MBR of the entry (degenerate for data entries).
    pub fn mbr(&self) -> Mbr {
        match self {
            NodeEntry::Child { mbr, .. } => mbr.clone(),
            NodeEntry::Data(d) => Mbr::from_point(&d.point),
        }
    }

    /// `true` for data entries.
    pub fn is_data(&self) -> bool {
        matches!(self, NodeEntry::Data(_))
    }

    /// `true` iff this entry is a child pointer to the given page.
    pub fn references_page(&self, page: PageId) -> bool {
        matches!(self, NodeEntry::Child { page: p, .. } if *p == page)
    }

    /// The child page, if this is a child-pointer entry.
    pub fn child_page(&self) -> Option<PageId> {
        match self {
            NodeEntry::Child { page, .. } => Some(*page),
            NodeEntry::Data(_) => None,
        }
    }

    /// The data entry, if this is one.
    pub fn as_data(&self) -> Option<&DataEntry> {
        match self {
            NodeEntry::Data(d) => Some(d),
            NodeEntry::Child { .. } => None,
        }
    }
}

/// One R-tree node. Exactly one node is stored per simulated disk page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Level of the node: `0` for leaves, `height - 1` for the root of a
    /// multi-level tree.
    pub level: u32,
    /// The node's entries (data entries at level 0, child pointers above).
    pub entries: Vec<NodeEntry>,
}

impl Node {
    /// Creates an empty node at the given level.
    pub fn new(level: u32) -> Self {
        Self {
            level,
            entries: Vec::new(),
        }
    }

    /// Creates a leaf node holding the given data entries.
    pub fn leaf(entries: Vec<DataEntry>) -> Self {
        Self {
            level: 0,
            entries: entries.into_iter().map(NodeEntry::Data).collect(),
        }
    }

    /// `true` for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The MBR covering every entry of the node.
    ///
    /// # Panics
    /// Panics if the node is empty.
    pub fn mbr(&self) -> Mbr {
        let mbrs: Vec<Mbr> = self.entries.iter().map(NodeEntry::mbr).collect();
        Mbr::covering(mbrs.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    #[test]
    fn data_entry_mbr_is_degenerate() {
        let e = NodeEntry::Data(DataEntry::new(RecordId(3), p(&[0.2, 0.8])));
        let m = e.mbr();
        assert_eq!(m.lower(), m.upper());
        assert!(e.is_data());
        assert!(e.child_page().is_none());
        assert_eq!(e.as_data().unwrap().record, RecordId(3));
    }

    #[test]
    fn child_entry_accessors() {
        let m = Mbr::new(vec![0.0, 0.0], vec![0.5, 0.5]).unwrap();
        let e = NodeEntry::Child {
            mbr: m.clone(),
            page: PageId::new(9),
        };
        assert!(!e.is_data());
        assert_eq!(e.child_page(), Some(PageId::new(9)));
        assert!(e.as_data().is_none());
        assert_eq!(e.mbr(), m);
    }

    #[test]
    fn node_mbr_covers_entries() {
        let node = Node::leaf(vec![
            DataEntry::new(RecordId(0), p(&[0.1, 0.9])),
            DataEntry::new(RecordId(1), p(&[0.7, 0.3])),
        ]);
        assert!(node.is_leaf());
        assert_eq!(node.len(), 2);
        let m = node.mbr();
        assert_eq!(m.lower(), &[0.1, 0.3]);
        assert_eq!(m.upper(), &[0.7, 0.9]);
    }

    #[test]
    fn record_id_display() {
        assert_eq!(RecordId(12).to_string(), "r12");
        assert_eq!(RecordId(12).raw(), 12);
    }

    #[test]
    #[should_panic]
    fn empty_node_mbr_panics() {
        let node = Node::new(0);
        assert!(node.is_empty());
        let _ = node.mbr();
    }
}
