//! Byte-level page serialization of R-tree nodes for the on-disk backend.
//!
//! Layout (all little-endian):
//!
//! ```text
//! [level: u32][dims: u16][count: u32]
//! level == 0 (leaf):      count × [record: u64][coord: f64 × dims]
//! level  > 0 (internal):  count × [page: u64][lower: f64 × dims][upper: f64 × dims]
//! ```
//!
//! No per-entry tag is needed — the node level determines the entry kind —
//! which keeps a full page of child entries within the 4 KiB slot derived by
//! [`pref_storage::entries_per_page`]. Coordinates round-trip bit-exactly via
//! `f64::to_le_bytes`.

use crate::entry::{DataEntry, Node, NodeEntry, RecordId};
use pref_geom::{Mbr, Point};
use pref_storage::{PageCodec, PageId, StorageError, PAGE_SIZE};

const NODE_HEADER: usize = 4 + 2 + 4;
/// Per-slot overhead added by [`pref_storage::FileBackend`] (length + crc).
const SLOT_HEADER: usize = 4 + 8;

/// The file-backend slot size needed for nodes with the given fanout and
/// dimensionality: at least [`PAGE_SIZE`], slightly larger when the node
/// format demands it. A node can transiently hold `max_entries + 1` entries
/// (between an insert and the split it triggers) and may be evicted in that
/// state, so the slot budgets for the overfull shape; the cost *model* still
/// charges one page per node regardless of the physical slot width.
pub fn node_slot_size(dims: usize, max_entries: usize) -> usize {
    // an internal entry (page + full MBR) is the widest variant
    let entry = 8 + 2 * dims * 8;
    let needed = SLOT_HEADER + NODE_HEADER + (max_entries + 1) * entry;
    needed.max(PAGE_SIZE)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        let out = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or_else(|| StorageError::Corrupt("node page truncated".into()))?;
        self.pos += n;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, StorageError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, StorageError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn coords(&mut self, dims: usize) -> Result<Vec<f64>, StorageError> {
        let mut out = Vec::with_capacity(dims);
        for _ in 0..dims {
            let b = self.take(8)?;
            out.push(f64::from_le_bytes([
                b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
            ]));
        }
        Ok(out)
    }
}

impl PageCodec for Node {
    fn encode_page(&self, buf: &mut Vec<u8>) {
        let dims = self
            .entries
            .first()
            .map(|e| match e {
                NodeEntry::Child { mbr, .. } => mbr.dims(),
                NodeEntry::Data(d) => d.point.dims(),
            })
            .unwrap_or(0);
        buf.extend_from_slice(&self.level.to_le_bytes());
        buf.extend_from_slice(&(dims as u16).to_le_bytes());
        buf.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for entry in &self.entries {
            match entry {
                NodeEntry::Data(d) => {
                    debug_assert_eq!(self.level, 0, "data entry in internal node");
                    buf.extend_from_slice(&d.record.raw().to_le_bytes());
                    for &c in d.point.coords() {
                        buf.extend_from_slice(&c.to_le_bytes());
                    }
                }
                NodeEntry::Child { mbr, page } => {
                    debug_assert_ne!(self.level, 0, "child entry in leaf node");
                    buf.extend_from_slice(&page.raw().to_le_bytes());
                    for &c in mbr.lower() {
                        buf.extend_from_slice(&c.to_le_bytes());
                    }
                    for &c in mbr.upper() {
                        buf.extend_from_slice(&c.to_le_bytes());
                    }
                }
            }
        }
    }

    fn decode_page(bytes: &[u8]) -> Result<Self, StorageError> {
        let mut r = Reader { bytes, pos: 0 };
        let level = r.u32()?;
        let dims = r.u16()? as usize;
        let count = r.u32()? as usize;
        if count > 0 && dims == 0 {
            return Err(StorageError::Corrupt(
                "non-empty node page with zero dimensionality".into(),
            ));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            if level == 0 {
                let record = RecordId(r.u64()?);
                let point = Point::from_slice(&r.coords(dims)?);
                entries.push(NodeEntry::Data(DataEntry::new(record, point)));
            } else {
                let page = PageId::new(r.u64()?);
                let lower = r.coords(dims)?;
                let upper = r.coords(dims)?;
                let mbr = Mbr::new(lower, upper).map_err(|e| {
                    StorageError::Corrupt(format!("node page holds an invalid MBR: {e}"))
                })?;
                entries.push(NodeEntry::Child { mbr, page });
            }
        }
        if r.pos != bytes.len() {
            return Err(StorageError::Corrupt(
                "trailing bytes after node page entries".into(),
            ));
        }
        Ok(Node { level, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(node: &Node) -> Node {
        let mut buf = Vec::new();
        node.encode_page(&mut buf);
        Node::decode_page(&buf).expect("decode")
    }

    #[test]
    fn empty_node_roundtrips() {
        let node = Node::new(0);
        assert_eq!(roundtrip(&node), node);
    }

    #[test]
    fn leaf_roundtrips_bit_exactly() {
        let node = Node::leaf(vec![
            DataEntry::new(RecordId(7), Point::from_slice(&[0.25, 0.5, 1.0 / 3.0])),
            DataEntry::new(
                RecordId(u64::MAX),
                Point::from_slice(&[f64::MIN_POSITIVE, 0.0, 1.0]),
            ),
        ]);
        assert_eq!(roundtrip(&node), node);
    }

    #[test]
    fn internal_node_roundtrips() {
        let mut node = Node::new(2);
        node.entries.push(NodeEntry::Child {
            mbr: Mbr::new(vec![0.0, 0.1], vec![0.5, 0.9]).unwrap(),
            page: PageId::new(42),
        });
        node.entries.push(NodeEntry::Child {
            mbr: Mbr::new(vec![0.4, 0.0], vec![1.0, 0.3]).unwrap(),
            page: PageId::new(77),
        });
        assert_eq!(roundtrip(&node), node);
    }

    #[test]
    fn worst_case_node_fits_its_slot() {
        for dims in [2usize, 3, 4, 6] {
            let fanout = pref_storage::entries_per_page(dims);
            let slot = node_slot_size(dims, fanout);
            // the slot stays within one split-margin of the simulated page
            assert!(slot >= PAGE_SIZE, "dims={dims}");
            assert!(
                slot <= PAGE_SIZE + 8 + 2 * dims * 8 + NODE_HEADER + SLOT_HEADER,
                "dims={dims}: slot {slot} drifts from the 4 KiB page model"
            );
            // the worst shape — an internal node mid-split, fanout+1 wide
            // entries — really encodes within the slot
            let mut node = Node::new(1);
            let lower = vec![0.0; dims];
            let upper = vec![1.0; dims];
            for i in 0..=fanout {
                node.entries.push(NodeEntry::Child {
                    mbr: Mbr::new(lower.clone(), upper.clone()).unwrap(),
                    page: PageId::new(i as u64),
                });
            }
            let mut buf = Vec::new();
            node.encode_page(&mut buf);
            assert!(buf.len() + SLOT_HEADER <= slot, "dims={dims}");
        }
    }

    #[test]
    fn oversized_fanout_gets_a_larger_slot() {
        // entries_per_page floors at 4; at dims=100 those 4 entries do not
        // fit a 4 KiB page, so the slot must grow
        let slot = node_slot_size(100, 4);
        assert!(slot > PAGE_SIZE);
    }

    #[test]
    fn truncated_page_is_rejected() {
        let node = Node::leaf(vec![DataEntry::new(
            RecordId(1),
            Point::from_slice(&[0.1, 0.2]),
        )]);
        let mut buf = Vec::new();
        node.encode_page(&mut buf);
        for cut in 0..buf.len() {
            assert!(
                Node::decode_page(&buf[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        // trailing garbage is rejected too
        buf.push(0);
        assert!(Node::decode_page(&buf).is_err());
    }
}
