//! Dynamic insertion: ChooseSubtree, quadratic node splitting, root growth.

use crate::entry::{DataEntry, Node, NodeEntry, RecordId};
use crate::tree::{RTree, RTreeError};
use pref_geom::{Mbr, Point};
use pref_storage::PageId;

/// One node split performed during a tracked insertion: `old_page` kept one
/// half of its entries and handed the other half to the freshly allocated
/// `new_page` (covered by `new_mbr`).
///
/// Structures that hold references to un-expanded R-tree pages across
/// insertions — the skyline pruned lists of the maintained
/// `pref_skyline::Skyline` — use this report to learn that part of
/// `old_page`'s content now lives in `new_page`.
#[derive(Debug, Clone)]
pub struct PageSplit {
    /// The page that was split (it keeps the left half of its entries).
    pub old_page: PageId,
    /// The newly allocated sibling holding the right half of the entries.
    pub new_page: PageId,
    /// The sibling's MBR (it may include the region of the entry whose
    /// arrival caused the split).
    pub new_mbr: Mbr,
}

impl RTree {
    /// Inserts a record into the tree.
    ///
    /// Node accesses performed by the insertion are charged to the I/O
    /// statistics — the competitors of the paper (Brute Force, Chain) pay for
    /// their index maintenance, and so does this implementation.
    pub fn insert(&mut self, record: RecordId, point: Point) -> Result<(), RTreeError> {
        self.insert_tracked(record, point).map(|_| ())
    }

    /// Inserts a record and reports every node split the insertion performed
    /// (bottom-up order). Callers that keep references to un-expanded pages —
    /// the engine's maintained skyline with its pruned lists — must patch
    /// those references with the reported [`PageSplit`]s, otherwise entries
    /// moved to the new sibling pages would escape later maintenance.
    pub fn insert_tracked(
        &mut self,
        record: RecordId,
        point: Point,
    ) -> Result<Vec<PageSplit>, RTreeError> {
        self.check_dims(&point)?;
        let entry = NodeEntry::Data(DataEntry::new(record, point));
        let mut splits = Vec::new();
        self.insert_entry_tracked(entry, 0, &mut splits);
        self.len += 1;
        Ok(splits)
    }

    /// Inserts an arbitrary entry at the node level `target_level`
    /// (0 = leaves), appending any node splits performed to `splits`. Used by
    /// [`RTree::insert_tracked`] and by the re-insertion phase of deletion.
    pub(crate) fn insert_entry_tracked(
        &mut self,
        entry: NodeEntry,
        target_level: u32,
        splits: &mut Vec<PageSplit>,
    ) {
        match self.root {
            None => {
                debug_assert_eq!(target_level, 0, "first entry must be a data entry");
                let node = Node {
                    level: 0,
                    entries: vec![entry],
                };
                let page = self.store.allocate(node);
                self.root = Some(page);
                self.height = 1;
            }
            Some(root) => {
                if let Some(sibling) = self.insert_recurse(root, entry, target_level, splits) {
                    self.grow_root(sibling);
                }
            }
        }
    }

    /// Grows the tree by one level: the old root and `sibling` become the two
    /// entries of a new root.
    fn grow_root(&mut self, sibling: NodeEntry) {
        let old_root = self.root.expect("grow_root requires a root");
        let old_mbr = self.store.peek(old_root).expect("root page is live").mbr();
        let new_root = Node {
            level: self.height,
            entries: vec![
                NodeEntry::Child {
                    mbr: old_mbr,
                    page: old_root,
                },
                sibling,
            ],
        };
        let page = self.store.allocate(new_root);
        self.root = Some(page);
        self.height += 1;
    }

    /// Recursive insertion; returns the entry for a newly created sibling if
    /// the visited node had to be split.
    fn insert_recurse(
        &mut self,
        page: PageId,
        entry: NodeEntry,
        target_level: u32,
        splits: &mut Vec<PageSplit>,
    ) -> Option<NodeEntry> {
        let (level, mut entries) = {
            let node = self.store.read(page);
            (node.level, node.entries.clone())
        };
        if level == target_level {
            entries.push(entry);
            return self.write_or_split(page, level, entries, splits);
        }
        debug_assert!(level > target_level, "descended past the target level");
        let idx = Self::choose_subtree(&entries, &entry.mbr());
        let child_page = entries[idx]
            .child_page()
            .expect("non-leaf entries are child pointers");
        let split = self.insert_recurse(child_page, entry, target_level, splits);
        // Refresh the child's MBR after the subtree changed. The up-to-date
        // MBR is available in memory (AdjustTree carries it upward), so this
        // does not charge another node access.
        let child_mbr = self
            .store
            .peek(child_page)
            .expect("child page is live")
            .mbr();
        entries[idx] = NodeEntry::Child {
            mbr: child_mbr,
            page: child_page,
        };
        if let Some(sibling) = split {
            entries.push(sibling);
        }
        self.write_or_split(page, level, entries, splits)
    }

    /// Writes `entries` back to `page`, splitting the node if it overflows.
    /// Returns the new sibling's entry when a split happened.
    fn write_or_split(
        &mut self,
        page: PageId,
        level: u32,
        entries: Vec<NodeEntry>,
        splits: &mut Vec<PageSplit>,
    ) -> Option<NodeEntry> {
        if entries.len() <= self.config.max_entries {
            self.store.write(page, Node { level, entries });
            return None;
        }
        let (left, right) = self.quadratic_split(entries);
        let right_node = Node {
            level,
            entries: right,
        };
        let right_mbr = right_node.mbr();
        let right_page = self.store.allocate(right_node);
        self.store.write(
            page,
            Node {
                level,
                entries: left,
            },
        );
        splits.push(PageSplit {
            old_page: page,
            new_page: right_page,
            new_mbr: right_mbr.clone(),
        });
        Some(NodeEntry::Child {
            mbr: right_mbr,
            page: right_page,
        })
    }

    /// Guttman's ChooseSubtree: the child whose MBR needs the least
    /// enlargement to cover the new entry; ties are broken by smaller area.
    fn choose_subtree(entries: &[NodeEntry], new_mbr: &Mbr) -> usize {
        let mut best = 0usize;
        let mut best_enlargement = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for (idx, e) in entries.iter().enumerate() {
            let mbr = e.mbr();
            let enlargement = mbr.enlargement(new_mbr);
            let area = mbr.area();
            if enlargement < best_enlargement
                || (enlargement == best_enlargement && area < best_area)
            {
                best = idx;
                best_enlargement = enlargement;
                best_area = area;
            }
        }
        best
    }

    /// Guttman's quadratic split: pick the pair of entries that would waste
    /// the most area if placed together as seeds, then greedily assign the
    /// remaining entries to the group whose MBR grows least, while making
    /// sure both groups can still reach the minimum fill.
    pub(crate) fn quadratic_split(
        &self,
        entries: Vec<NodeEntry>,
    ) -> (Vec<NodeEntry>, Vec<NodeEntry>) {
        let min = self.config.min_entries;
        let mbrs: Vec<Mbr> = entries.iter().map(NodeEntry::mbr).collect();
        let n = entries.len();
        debug_assert!(n >= 2);

        // PickSeeds
        let (mut seed_a, mut seed_b, mut worst_waste) = (0usize, 1usize, f64::NEG_INFINITY);
        for i in 0..n {
            for j in (i + 1)..n {
                let waste = mbrs[i].union(&mbrs[j]).area() - mbrs[i].area() - mbrs[j].area();
                if waste > worst_waste {
                    worst_waste = waste;
                    seed_a = i;
                    seed_b = j;
                }
            }
        }

        let mut group_a: Vec<usize> = vec![seed_a];
        let mut group_b: Vec<usize> = vec![seed_b];
        let mut mbr_a = mbrs[seed_a].clone();
        let mut mbr_b = mbrs[seed_b].clone();
        let mut remaining: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();

        while let Some(pick_pos) = {
            if remaining.is_empty() {
                None
            } else if group_a.len() + remaining.len() == min {
                // everything must go to A to satisfy the minimum fill
                group_a.append(&mut remaining);
                for &i in &group_a {
                    mbr_a.expand_to_mbr(&mbrs[i]);
                }
                None
            } else if group_b.len() + remaining.len() == min {
                group_b.append(&mut remaining);
                for &i in &group_b {
                    mbr_b.expand_to_mbr(&mbrs[i]);
                }
                None
            } else {
                // PickNext: the entry with the greatest preference for one group
                let mut best_pos = 0usize;
                let mut best_diff = f64::NEG_INFINITY;
                for (pos, &i) in remaining.iter().enumerate() {
                    let d_a = mbr_a.enlargement(&mbrs[i]);
                    let d_b = mbr_b.enlargement(&mbrs[i]);
                    let diff = (d_a - d_b).abs();
                    if diff > best_diff {
                        best_diff = diff;
                        best_pos = pos;
                    }
                }
                Some(best_pos)
            }
        } {
            let i = remaining.swap_remove(pick_pos);
            let d_a = mbr_a.enlargement(&mbrs[i]);
            let d_b = mbr_b.enlargement(&mbrs[i]);
            let to_a = match d_a.partial_cmp(&d_b) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Greater) => false,
                _ => {
                    // tie-break: smaller area, then fewer entries
                    if mbr_a.area() != mbr_b.area() {
                        mbr_a.area() < mbr_b.area()
                    } else {
                        group_a.len() <= group_b.len()
                    }
                }
            };
            if to_a {
                mbr_a.expand_to_mbr(&mbrs[i]);
                group_a.push(i);
            } else {
                mbr_b.expand_to_mbr(&mbrs[i]);
                group_b.push(i);
            }
        }

        let mut entries_opt: Vec<Option<NodeEntry>> = entries.into_iter().map(Some).collect();
        let take = |idx: &usize, slots: &mut Vec<Option<NodeEntry>>| {
            slots[*idx]
                .take()
                .expect("entry assigned to one group only")
        };
        let left = group_a
            .iter()
            .map(|i| take(i, &mut entries_opt))
            .collect::<Vec<_>>();
        let right = group_b
            .iter()
            .map(|i| take(i, &mut entries_opt))
            .collect::<Vec<_>>();
        debug_assert!(left.len() >= min && right.len() >= min);
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeConfig;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn pt(rng: &mut StdRng, dims: usize) -> Point {
        Point::from_slice(
            &(0..dims)
                .map(|_| rng.gen_range(0.0..1.0))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn insert_single_point_creates_leaf_root() {
        let mut t = RTree::with_dims(2);
        t.insert(RecordId(1), Point::from_slice(&[0.3, 0.4]))
            .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.num_pages(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_rejects_wrong_dimensionality() {
        let mut t = RTree::with_dims(2);
        let err = t.insert(RecordId(1), Point::from_slice(&[0.3, 0.4, 0.5]));
        assert!(err.is_err());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn insert_many_keeps_invariants_and_grows_height() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = RTree::new(RTreeConfig::for_dims(2).with_fanout(8));
        for i in 0..500 {
            t.insert(RecordId(i), pt(&mut rng, 2)).unwrap();
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() >= 3, "fanout 8 with 500 points must be deep");
        t.check_invariants().unwrap();
        // every point must be findable
        assert_eq!(t.all_data_unaccounted().len(), 500);
    }

    #[test]
    fn insert_duplicates_allowed() {
        let mut t = RTree::new(RTreeConfig::for_dims(2).with_fanout(4));
        let p = Point::from_slice(&[0.5, 0.5]);
        for i in 0..20 {
            t.insert(RecordId(i), p.clone()).unwrap();
        }
        assert_eq!(t.len(), 20);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insertion_charges_io() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = RTree::new(RTreeConfig::for_dims(3).with_fanout(8));
        for i in 0..200 {
            t.insert(RecordId(i), pt(&mut rng, 3)).unwrap();
        }
        let stats = t.stats();
        assert!(stats.logical_reads > 0);
        assert!(stats.physical_writes > 0);
    }

    #[test]
    fn tracked_insert_reports_every_split() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut t = RTree::new(RTreeConfig::for_dims(2).with_fanout(4));
        let mut total_splits = 0usize;
        for i in 0..300 {
            let splits = t.insert_tracked(RecordId(i), pt(&mut rng, 2)).unwrap();
            for s in &splits {
                // the sibling is a live page whose contents fit the report
                let (_, entries) = t.node_entries(s.new_page);
                assert!(!entries.is_empty());
                for e in &entries {
                    assert!(
                        s.new_mbr.contains_mbr(&e.mbr()),
                        "sibling entry escapes the reported MBR"
                    );
                }
                assert_ne!(s.old_page, s.new_page);
            }
            total_splits += splits.len();
        }
        // fanout 4 with 300 points must split many times, incl. inner nodes
        assert!(total_splits > 50, "only {total_splits} splits reported");
        t.check_invariants().unwrap();
        assert_eq!(t.all_data_unaccounted().len(), 300);
    }

    #[test]
    fn tracked_insert_without_overflow_reports_nothing() {
        let mut t = RTree::new(RTreeConfig::for_dims(2).with_fanout(8));
        for i in 0..4 {
            let splits = t
                .insert_tracked(RecordId(i), Point::from_slice(&[0.1 * i as f64, 0.5]))
                .unwrap();
            assert!(splits.is_empty());
        }
    }

    #[test]
    fn quadratic_split_respects_min_fill() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = RTree::new(RTreeConfig::for_dims(2).with_fanout(10));
        let entries: Vec<NodeEntry> = (0..11)
            .map(|i| NodeEntry::Data(DataEntry::new(RecordId(i), pt(&mut rng, 2))))
            .collect();
        let (l, r) = t.quadratic_split(entries);
        assert_eq!(l.len() + r.len(), 11);
        assert!(l.len() >= t.min_entries());
        assert!(r.len() >= t.min_entries());
    }

    #[test]
    fn clustered_inserts_are_spatially_separated_after_split() {
        // two well-separated clusters should mostly end up in different subtrees
        let mut t = RTree::new(RTreeConfig::for_dims(2).with_fanout(4));
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..30 {
            let base = if i % 2 == 0 { 0.1 } else { 0.9 };
            let p = Point::from_slice(&[
                base + rng.gen_range(-0.05..0.05),
                base + rng.gen_range(-0.05..0.05),
            ]);
            t.insert(RecordId(i), p).unwrap();
        }
        t.check_invariants().unwrap();
        assert!(t.height() >= 2);
    }
}
