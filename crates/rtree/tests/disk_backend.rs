//! The on-disk backend demo required by the durability milestone: a tree
//! whose data set is much larger than the configured buffer, served from a
//! real page file with real write I/O reported in the stats.

use pref_geom::Point;
use pref_rtree::{DataEntry, RTree, RTreeConfig, RecordId};
use std::path::PathBuf;

fn temp_file(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "pref_rtree_disk_{}_{name}.pages",
        std::process::id()
    ));
    p
}

/// Deterministic pseudo-random coordinates (splitmix64 -> [0, 1)).
fn coord(seed: &mut u64) -> f64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

fn dataset(n: usize, dims: usize) -> Vec<DataEntry> {
    let mut seed = 0xfa17_a551u64;
    (0..n)
        .map(|i| {
            let coords: Vec<f64> = (0..dims).map(|_| coord(&mut seed)).collect();
            DataEntry::new(RecordId(i as u64), Point::from_slice(&coords))
        })
        .collect()
}

#[test]
fn dataset_larger_than_buffer_lives_on_disk() {
    let path = temp_file("larger_than_buffer");
    // tiny fanout + tiny buffer: the tree has far more pages than frames
    let config = RTreeConfig::for_dims(3)
        .with_fanout(8)
        .with_buffer_frames(4);
    let mut tree = RTree::new_on_disk(config, &path).unwrap();
    assert!(tree.is_on_disk());

    let data = dataset(2000, 3);
    for d in &data {
        tree.insert(d.record, d.point.clone()).unwrap();
    }
    assert_eq!(tree.len(), 2000);
    assert!(
        tree.num_pages() > 10 * tree.buffer_frames(),
        "the tree ({} pages) must dwarf the buffer ({} frames)",
        tree.num_pages(),
        tree.buffer_frames()
    );
    let stats = tree.stats();
    assert!(
        stats.page_writes > 0,
        "building past the buffer must cause real page writes"
    );
    assert!(
        stats.physical_reads > 0,
        "cold pages must be faulted back in"
    );
    // the page file on disk really holds the evicted pages
    let file_len = std::fs::metadata(&path).unwrap().len();
    assert!(
        file_len > 0,
        "evictions must have materialized the page file"
    );

    // every record is still found exactly where it was inserted
    for d in data.iter().step_by(97) {
        let range = pref_geom::Mbr::from_point(&d.point);
        let hits = tree.range_query(&range);
        assert!(
            hits.iter().any(|e| e.record == d.record),
            "record {} lost",
            d.record
        );
    }

    // structural invariants hold on a full in-memory materialization,
    // and the materialized fork carries the same data set
    let fork = tree.fork_in_memory();
    fork.check_invariants().unwrap();
    let mut from_disk: Vec<u64> = fork
        .all_data_unaccounted()
        .iter()
        .map(|d| d.record.raw())
        .collect();
    from_disk.sort_unstable();
    let want: Vec<u64> = (0..2000).collect();
    assert_eq!(from_disk, want);

    tree.flush().unwrap();
    assert!(tree.stats().sync_calls > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn disk_tree_handles_deletions_and_slot_reuse() {
    let path = temp_file("churn");
    let config = RTreeConfig::for_dims(2)
        .with_fanout(6)
        .with_buffer_frames(3);
    let mut tree = RTree::new_on_disk(config, &path).unwrap();
    let data = dataset(400, 2);
    for d in &data {
        tree.insert(d.record, d.point.clone()).unwrap();
    }
    // delete every other record (condense-tree frees pages, slots get reused)
    for d in data.iter().step_by(2) {
        tree.delete(d.record, &d.point).unwrap();
    }
    assert_eq!(tree.len(), 200);
    for (i, d) in data.iter().enumerate() {
        let range = pref_geom::Mbr::from_point(&d.point);
        let hits = tree.range_query(&range);
        let found = hits.iter().any(|e| e.record == d.record);
        assert_eq!(found, i % 2 == 1, "record {}", d.record);
    }
    let fork = tree.fork_in_memory();
    fork.check_invariants().unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn disk_and_memory_trees_agree_on_queries() {
    let path = temp_file("differential");
    let config = RTreeConfig::for_dims(3).with_fanout(8);
    let mut mem = RTree::new(config.clone().with_buffer_frames(0));
    let mut disk = RTree::new_on_disk(config.with_buffer_frames(2), &path).unwrap();
    let data = dataset(600, 3);
    for d in &data {
        mem.insert(d.record, d.point.clone()).unwrap();
        disk.insert(d.record, d.point.clone()).unwrap();
    }
    let mut seed = 77u64;
    for _ in 0..25 {
        let a: Vec<f64> = (0..3).map(|_| coord(&mut seed)).collect();
        let b: Vec<f64> = (0..3).map(|_| coord(&mut seed)).collect();
        let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
        let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
        let range = pref_geom::Mbr::new(lo, hi).unwrap();
        let mut want: Vec<u64> = mem
            .range_query(&range)
            .iter()
            .map(|e| e.record.raw())
            .collect();
        let mut got: Vec<u64> = disk
            .range_query(&range)
            .iter()
            .map(|e| e.record.raw())
            .collect();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want);
    }
    std::fs::remove_file(&path).ok();
}
