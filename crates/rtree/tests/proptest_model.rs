//! Property-based model test: an R-tree under an arbitrary interleaving of
//! inserts, deletes and range queries behaves exactly like a plain vector of
//! records, and never violates its structural invariants.

use pref_geom::{Mbr, Point};
use pref_rtree::{RTree, RTreeConfig, RecordId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert {
        coords: Vec<f64>,
    },
    /// Delete the i-th (modulo length) currently live record.
    DeleteNth(usize),
    Range {
        lo: Vec<f64>,
        ext: Vec<f64>,
    },
}

fn arb_ops(dims: usize) -> impl Strategy<Value = Vec<Op>> {
    let insert =
        proptest::collection::vec(0.0f64..1.0, dims).prop_map(|coords| Op::Insert { coords });
    let delete = (0usize..1000).prop_map(Op::DeleteNth);
    let range = (
        proptest::collection::vec(0.0f64..0.8, dims),
        proptest::collection::vec(0.0f64..0.4, dims),
    )
        .prop_map(|(lo, ext)| Op::Range { lo, ext });
    proptest::collection::vec(prop_oneof![4 => insert, 2 => delete, 1 => range], 1..120)
}

fn run_model(dims: usize, fanout: usize, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut tree = RTree::new(RTreeConfig::for_dims(dims).with_fanout(fanout));
    let mut model: Vec<(RecordId, Point)> = Vec::new();
    let mut next_id = 0u64;
    for (step, op) in ops.into_iter().enumerate() {
        match op {
            Op::Insert { coords } => {
                let point = Point::new(coords).unwrap();
                tree.insert(RecordId(next_id), point.clone()).unwrap();
                model.push((RecordId(next_id), point));
                next_id += 1;
            }
            Op::DeleteNth(n) => {
                if model.is_empty() {
                    continue;
                }
                let (record, point) = model.swap_remove(n % model.len());
                tree.delete(record, &point).unwrap();
            }
            Op::Range { lo, ext } => {
                let hi: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
                let range = Mbr::new(lo, hi).unwrap();
                let mut got: Vec<u64> = tree
                    .range_query(&range)
                    .into_iter()
                    .map(|d| d.record.0)
                    .collect();
                got.sort_unstable();
                let mut want: Vec<u64> = model
                    .iter()
                    .filter(|(_, p)| range.contains_point(p))
                    .map(|(r, _)| r.0)
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(got, want, "range mismatch at step {}", step);
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        if step % 16 == 0 {
            prop_assert!(
                tree.check_invariants().is_ok(),
                "invariants at step {}",
                step
            );
        }
    }
    prop_assert!(tree.check_invariants().is_ok());
    let mut got: Vec<u64> = tree
        .all_data_unaccounted()
        .iter()
        .map(|d| d.record.0)
        .collect();
    got.sort_unstable();
    let mut want: Vec<u64> = model.iter().map(|(r, _)| r.0).collect();
    want.sort_unstable();
    prop_assert_eq!(got, want);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtree_matches_model_2d_small_fanout(ops in arb_ops(2)) {
        run_model(2, 4, ops)?;
    }

    #[test]
    fn rtree_matches_model_3d(ops in arb_ops(3)) {
        run_model(3, 6, ops)?;
    }

    #[test]
    fn rtree_matches_model_4d_page_fanout(ops in arb_ops(4)) {
        // the real page-derived fanout (56 entries per node)
        run_model(4, 56, ops)?;
    }
}
