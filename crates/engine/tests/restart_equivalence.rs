//! Restart equivalence: an engine rebuilt from a snapshot of the live state
//! re-solves to the same canonical matching as the long-lived engine.
//!
//! This pins compaction soundness end-to-end: after a churn-heavy stream in
//! which many departures were physically deleted (CondenseTree re-insertions,
//! page frees, pruned-list patches, slab reuse), the surviving *logical*
//! state — live populations, matching — must be exactly the state a fresh
//! process would reach from a clean bulk-load. Any corruption compaction left
//! behind (a lost object, a stale skyline entry influencing a later repair, a
//! wrong capacity) shows up as a canonical mismatch here.

use pref_assign::{all_solvers, oracle, verify_stable};
use pref_datagen::{update_stream, ObjectDistribution, UpdateStreamConfig};
use pref_engine::{AssignmentEngine, EngineOptions};
use pref_rtree::RecordId;

fn run_churn(
    seed: u64,
    options: &EngineOptions,
    num_events: usize,
    max_capacity: u32,
) -> AssignmentEngine {
    let functions = pref_datagen::uniform_weight_functions(10, 3, seed);
    let objects = pref_datagen::independent_objects(60, 3, seed + 500);
    let problem = pref_assign::Problem::from_parts(functions, objects).unwrap();
    let live_objects: Vec<RecordId> = problem.objects().iter().map(|o| o.id).collect();
    let live_functions: Vec<u64> = problem.functions().iter().map(|f| f.id.0 as u64).collect();
    let events = update_stream(
        &UpdateStreamConfig {
            num_events,
            dims: 3,
            distribution: ObjectDistribution::AntiCorrelated,
            insert_fraction: 0.5,
            object_fraction: 0.85,
            min_objects: 10,
            min_functions: 2,
            max_capacity,
            seed,
        },
        &live_objects,
        &live_functions,
    );
    let mut engine = AssignmentEngine::new(&problem, options).unwrap();
    for event in &events {
        engine.apply(event).unwrap();
    }
    engine
}

#[test]
fn engine_rebuilt_from_snapshot_matches_the_live_engine() {
    for seed in [81u64, 82, 83] {
        let options = EngineOptions {
            compaction_threshold: Some(0.2),
            compaction_batch: 8,
            ..EngineOptions::default()
        };
        let engine = run_churn(seed, &options, 300, 2);
        // the run must actually have exercised compaction for this to pin
        // anything
        let stats = engine.stats();
        assert!(
            stats.physical_deletes > 0,
            "seed {seed}: churn never compacted"
        );

        let live = engine.assignment();
        let snapshot = engine.snapshot_problem().unwrap();
        verify_stable(&snapshot, &live).unwrap();

        // 1. a fresh engine bootstrapped from the snapshot (clean bulk-load,
        //    fresh BBS, fresh stabilization) reaches the same matching
        let rebuilt = AssignmentEngine::new(&snapshot, &options).unwrap();
        assert_eq!(
            rebuilt.assignment().canonical(),
            live.canonical(),
            "seed {seed}: restarted engine diverges from the live engine"
        );

        // 2. so does every batch solver on the snapshot, and the oracle
        assert_eq!(oracle(&snapshot).canonical(), live.canonical());
        for solver in all_solvers() {
            let mut tree = snapshot.build_tree(Some(8), 0.02);
            let result = solver.solve(&snapshot, &mut tree);
            assert_eq!(
                result.assignment.canonical(),
                live.canonical(),
                "seed {seed}: {} diverges from the live engine",
                solver.name()
            );
        }

        // 3. the serving-tier restart path (export_snapshot → to_problem)
        //    carries exactly the same state
        let export = engine.export_snapshot();
        let export_problem = export.to_problem().unwrap();
        assert_eq!(export_problem.num_objects(), snapshot.num_objects());
        assert_eq!(export_problem.num_functions(), snapshot.num_functions());
        assert!(export.view().canonical_eq(&live));
        let rebuilt = AssignmentEngine::new(&export_problem, &options).unwrap();
        assert_eq!(rebuilt.assignment().canonical(), live.canonical());
    }
}

/// The restart must agree regardless of the compaction policy the live
/// engine ran with: eager, default and tombstone-only engines all restart to
/// the same state after the same stream.
#[test]
fn restart_agrees_across_compaction_policies() {
    let seed = 91u64;
    let policies = [
        EngineOptions {
            compaction_threshold: Some(0.0),
            ..EngineOptions::default()
        },
        EngineOptions::default(),
        EngineOptions {
            compaction_threshold: None,
            ..EngineOptions::default()
        },
    ];
    let mut canonicals = Vec::new();
    for options in &policies {
        let engine = run_churn(seed, options, 160, 3);
        let snapshot = engine.snapshot_problem().unwrap();
        let rebuilt = AssignmentEngine::new(&snapshot, &EngineOptions::default()).unwrap();
        assert_eq!(
            rebuilt.assignment().canonical(),
            engine.assignment().canonical()
        );
        canonicals.push(engine.assignment().canonical());
    }
    assert!(
        canonicals.windows(2).all(|w| w[0] == w[1]),
        "compaction policy changed the matching"
    );
}
