//! Property tests: after any seeded sequence of updates, the engine's
//! incrementally repaired matching is stable and identical to the batch
//! result on the current problem snapshot — checked against the exact oracle
//! after every single update, and against every [`Solver`] variant on the
//! final snapshot.

use pref_assign::{all_solvers, oracle, verify_stable, ObjectRecord, PreferenceFunction, Problem};
use pref_datagen::{
    independent_objects, uniform_weight_functions, update_stream, ObjectDistribution, UpdateEvent,
    UpdateStreamConfig,
};
use pref_engine::{AssignmentEngine, EngineOptions};
use pref_rtree::RecordId;

fn build_problem(num_functions: usize, num_objects: usize, dims: usize, seed: u64) -> Problem {
    let functions = uniform_weight_functions(num_functions, dims, seed);
    let objects = independent_objects(num_objects, dims, seed + 1000);
    Problem::from_parts(functions, objects).unwrap()
}

fn stream_for(problem: &Problem, config: UpdateStreamConfig) -> Vec<UpdateEvent> {
    let live_objects: Vec<RecordId> = problem.objects().iter().map(|o| o.id).collect();
    let live_functions: Vec<u64> = problem.functions().iter().map(|f| f.id.0 as u64).collect();
    update_stream(&config, &live_objects, &live_functions)
}

/// Applies every event, checking stability and oracle equality after each.
fn check_sequence(problem: Problem, config: UpdateStreamConfig) {
    let events = stream_for(&problem, config.clone());
    let mut engine = AssignmentEngine::new(&problem, &EngineOptions::default()).unwrap();
    // the initial stabilization must already match the oracle
    assert_eq!(
        engine.assignment().canonical(),
        oracle(&problem).canonical(),
        "initial stabilization diverges (seed {})",
        config.seed
    );
    for (step, event) in events.iter().enumerate() {
        engine.apply(event).unwrap();
        let snapshot = engine.snapshot_problem().unwrap();
        let assignment = engine.assignment();
        verify_stable(&snapshot, &assignment)
            .unwrap_or_else(|v| panic!("unstable after step {step} ({event:?}): {v}"));
        assert_eq!(
            assignment.canonical(),
            oracle(&snapshot).canonical(),
            "oracle divergence after step {step} ({event:?}) seed {}",
            config.seed
        );
    }
    // the final snapshot re-solved through every Solver variant agrees too
    let snapshot = engine.snapshot_problem().unwrap();
    let want = engine.assignment().canonical();
    for solver in all_solvers() {
        let mut tree = snapshot.build_tree(Some(8), 0.02);
        let result = solver.solve(&snapshot, &mut tree);
        assert_eq!(
            result.assignment.canonical(),
            want,
            "solver {} diverges from the engine on the final snapshot (seed {})",
            solver.name(),
            config.seed
        );
    }
}

#[test]
fn random_update_sequences_match_the_oracle_independent() {
    for seed in [1u64, 2, 3] {
        let problem = build_problem(8, 40, 3, seed * 17);
        check_sequence(
            problem,
            UpdateStreamConfig {
                num_events: 30,
                dims: 3,
                seed,
                ..UpdateStreamConfig::default()
            },
        );
    }
}

#[test]
fn departure_heavy_sequences_match_the_oracle() {
    for seed in [11u64, 12] {
        let problem = build_problem(10, 50, 2, seed * 31);
        check_sequence(
            problem,
            UpdateStreamConfig {
                num_events: 40,
                dims: 2,
                insert_fraction: 0.25,
                min_objects: 2,
                min_functions: 1,
                seed,
                ..UpdateStreamConfig::default()
            },
        );
    }
}

#[test]
fn arrival_heavy_anti_correlated_sequences_match_the_oracle() {
    for seed in [21u64, 22] {
        let problem = build_problem(6, 30, 3, seed * 13);
        check_sequence(
            problem,
            UpdateStreamConfig {
                num_events: 35,
                dims: 3,
                distribution: ObjectDistribution::AntiCorrelated,
                insert_fraction: 0.75,
                seed,
                ..UpdateStreamConfig::default()
            },
        );
    }
}

#[test]
fn function_churn_sequences_match_the_oracle() {
    for seed in [31u64, 32] {
        let problem = build_problem(12, 35, 3, seed * 7);
        check_sequence(
            problem,
            UpdateStreamConfig {
                num_events: 30,
                dims: 3,
                object_fraction: 0.2, // mostly function arrivals/departures
                seed,
                ..UpdateStreamConfig::default()
            },
        );
    }
}

#[test]
fn capacitated_problems_repair_correctly() {
    for seed in [41u64, 42] {
        let functions: Vec<PreferenceFunction> = uniform_weight_functions(6, 3, seed)
            .into_iter()
            .enumerate()
            .map(|(i, f)| PreferenceFunction::new(i, f).with_capacity(1 + (i as u32 % 3)))
            .collect();
        let objects: Vec<ObjectRecord> = independent_objects(30, 3, seed + 5)
            .into_iter()
            .map(|(id, p)| ObjectRecord {
                id,
                point: p,
                capacity: 1 + (id.0 as u32 % 2),
            })
            .collect();
        let problem = Problem::new(functions, objects).unwrap();
        check_sequence(
            problem,
            UpdateStreamConfig {
                num_events: 25,
                dims: 3,
                seed,
                ..UpdateStreamConfig::default()
            },
        );
    }
}

#[test]
fn engine_update_io_stays_below_full_recompute() {
    // the headline property: repairing across a stream costs less object-tree
    // I/O than re-running SB from scratch on every snapshot
    let problem = build_problem(20, 400, 3, 777);
    let config = UpdateStreamConfig {
        num_events: 40,
        dims: 3,
        seed: 9,
        ..UpdateStreamConfig::default()
    };
    let events = stream_for(&problem, config);
    let mut engine = AssignmentEngine::new(&problem, &EngineOptions::default()).unwrap();
    let mut recompute_io = 0u64;
    for event in &events {
        engine.apply(event).unwrap();
        let snapshot = engine.snapshot_problem().unwrap();
        let mut tree = snapshot.build_tree(None, 0.02);
        let result = pref_assign::SbSolver::default();
        use pref_assign::Solver;
        let r = result.solve(&snapshot, &mut tree);
        recompute_io += r.metrics.object_io.io_accesses();
        assert_eq!(r.assignment.canonical(), engine.assignment().canonical());
    }
    let update_io = engine.update_object_io().io_accesses();
    assert!(
        update_io < recompute_io,
        "incremental update I/O ({update_io}) must undercut full recompute ({recompute_io})"
    );
}

#[test]
fn engine_rejects_invalid_updates() {
    let problem = build_problem(4, 10, 2, 5);
    let mut engine = AssignmentEngine::new(&problem, &EngineOptions::default()).unwrap();
    use pref_assign::FunctionId;
    use pref_engine::EngineError;
    use pref_geom::{LinearFunction, Point};

    // duplicate object id (ids are never reused)
    assert!(matches!(
        engine.insert_object(ObjectRecord::new(0, Point::from_slice(&[0.5, 0.5]))),
        Err(EngineError::DuplicateObject(_))
    ));
    // wrong dimensionality
    assert!(matches!(
        engine.insert_object(ObjectRecord::new(99, Point::from_slice(&[0.5, 0.5, 0.5]))),
        Err(EngineError::DimensionMismatch { .. })
    ));
    assert!(matches!(
        engine.insert_function(PreferenceFunction::new(
            50,
            LinearFunction::new(vec![0.3, 0.3, 0.4]).unwrap()
        )),
        Err(EngineError::DimensionMismatch { .. })
    ));
    // unknown ids
    assert!(matches!(
        engine.remove_object(RecordId(555)),
        Err(EngineError::UnknownObject(_))
    ));
    assert!(matches!(
        engine.remove_function(FunctionId(555)),
        Err(EngineError::UnknownFunction(_))
    ));
    // removing twice fails the second time
    engine.remove_object(RecordId(3)).unwrap();
    assert!(matches!(
        engine.remove_object(RecordId(3)),
        Err(EngineError::UnknownObject(_))
    ));
    // the state is still coherent afterwards
    let snapshot = engine.snapshot_problem().unwrap();
    verify_stable(&snapshot, &engine.assignment()).unwrap();
}
