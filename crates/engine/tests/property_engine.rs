//! Property tests: after any seeded sequence of updates, the engine's
//! incrementally repaired matching is stable and identical to the batch
//! result on the current problem snapshot — checked against the exact oracle
//! after every single update, and against every [`Solver`] variant on the
//! final snapshot.

use pref_assign::{all_solvers, oracle, verify_stable, ObjectRecord, PreferenceFunction, Problem};
use pref_datagen::{
    independent_objects, uniform_weight_functions, update_stream, ObjectDistribution, UpdateEvent,
    UpdateStreamConfig,
};
use pref_engine::{AssignmentEngine, EngineOptions};
use pref_rtree::RecordId;

fn build_problem(num_functions: usize, num_objects: usize, dims: usize, seed: u64) -> Problem {
    let functions = uniform_weight_functions(num_functions, dims, seed);
    let objects = independent_objects(num_objects, dims, seed + 1000);
    Problem::from_parts(functions, objects).unwrap()
}

fn stream_for(problem: &Problem, config: UpdateStreamConfig) -> Vec<UpdateEvent> {
    let live_objects: Vec<RecordId> = problem.objects().iter().map(|o| o.id).collect();
    let live_functions: Vec<u64> = problem.functions().iter().map(|f| f.id.0 as u64).collect();
    update_stream(&config, &live_objects, &live_functions)
}

/// Applies every event, checking stability and oracle equality after each.
fn check_sequence(problem: Problem, config: UpdateStreamConfig) {
    let events = stream_for(&problem, config.clone());
    let mut engine = AssignmentEngine::new(&problem, &EngineOptions::default()).unwrap();
    // the initial stabilization must already match the oracle
    assert_eq!(
        engine.assignment().canonical(),
        oracle(&problem).canonical(),
        "initial stabilization diverges (seed {})",
        config.seed
    );
    for (step, event) in events.iter().enumerate() {
        engine.apply(event).unwrap();
        let snapshot = engine.snapshot_problem().unwrap();
        let assignment = engine.assignment();
        verify_stable(&snapshot, &assignment)
            .unwrap_or_else(|v| panic!("unstable after step {step} ({event:?}): {v}"));
        assert_eq!(
            assignment.canonical(),
            oracle(&snapshot).canonical(),
            "oracle divergence after step {step} ({event:?}) seed {}",
            config.seed
        );
    }
    // the final snapshot re-solved through every Solver variant agrees too
    let snapshot = engine.snapshot_problem().unwrap();
    let want = engine.assignment().canonical();
    for solver in all_solvers() {
        let mut tree = snapshot.build_tree(Some(8), 0.02);
        let result = solver.solve(&snapshot, &mut tree);
        assert_eq!(
            result.assignment.canonical(),
            want,
            "solver {} diverges from the engine on the final snapshot (seed {})",
            solver.name(),
            config.seed
        );
    }
}

#[test]
fn random_update_sequences_match_the_oracle_independent() {
    for seed in [1u64, 2, 3] {
        let problem = build_problem(8, 40, 3, seed * 17);
        check_sequence(
            problem,
            UpdateStreamConfig {
                num_events: 30,
                dims: 3,
                seed,
                ..UpdateStreamConfig::default()
            },
        );
    }
}

#[test]
fn departure_heavy_sequences_match_the_oracle() {
    for seed in [11u64, 12] {
        let problem = build_problem(10, 50, 2, seed * 31);
        check_sequence(
            problem,
            UpdateStreamConfig {
                num_events: 40,
                dims: 2,
                insert_fraction: 0.25,
                min_objects: 2,
                min_functions: 1,
                seed,
                ..UpdateStreamConfig::default()
            },
        );
    }
}

#[test]
fn arrival_heavy_anti_correlated_sequences_match_the_oracle() {
    for seed in [21u64, 22] {
        let problem = build_problem(6, 30, 3, seed * 13);
        check_sequence(
            problem,
            UpdateStreamConfig {
                num_events: 35,
                dims: 3,
                distribution: ObjectDistribution::AntiCorrelated,
                insert_fraction: 0.75,
                seed,
                ..UpdateStreamConfig::default()
            },
        );
    }
}

#[test]
fn function_churn_sequences_match_the_oracle() {
    for seed in [31u64, 32] {
        let problem = build_problem(12, 35, 3, seed * 7);
        check_sequence(
            problem,
            UpdateStreamConfig {
                num_events: 30,
                dims: 3,
                object_fraction: 0.2, // mostly function arrivals/departures
                seed,
                ..UpdateStreamConfig::default()
            },
        );
    }
}

#[test]
fn capacitated_problems_repair_correctly() {
    for seed in [41u64, 42] {
        let functions: Vec<PreferenceFunction> = uniform_weight_functions(6, 3, seed)
            .into_iter()
            .enumerate()
            .map(|(i, f)| PreferenceFunction::new(i, f).with_capacity(1 + (i as u32 % 3)))
            .collect();
        let objects: Vec<ObjectRecord> = independent_objects(30, 3, seed + 5)
            .into_iter()
            .map(|(id, p)| ObjectRecord {
                id,
                point: p,
                capacity: 1 + (id.0 as u32 % 2),
            })
            .collect();
        let problem = Problem::new(functions, objects).unwrap();
        check_sequence(
            problem,
            UpdateStreamConfig {
                num_events: 25,
                dims: 3,
                seed,
                ..UpdateStreamConfig::default()
            },
        );
    }
}

/// Streamed arrivals with capacities > 1 (the `max_capacity` knob) repair to
/// the oracle's matching too: a capacity-3 arrival must be able to take up to
/// three pairs, and a departing capacity-3 object must free all of them.
#[test]
fn capacitated_update_streams_match_the_oracle() {
    for seed in [61u64, 62] {
        let problem = build_problem(8, 35, 3, seed * 23);
        let config = UpdateStreamConfig {
            num_events: 30,
            dims: 3,
            max_capacity: 3,
            seed,
            ..UpdateStreamConfig::default()
        };
        // the knob must actually fire: at least one arrival carries
        // capacity > 1 in each checked stream
        let events = stream_for(&problem, config.clone());
        assert!(
            events.iter().any(|e| matches!(
                e,
                UpdateEvent::InsertObject { capacity, .. }
                | UpdateEvent::InsertFunction { capacity, .. } if *capacity > 1
            )),
            "seed {seed} produced no capacitated arrival"
        );
        check_sequence(problem, config);
    }
}

/// Capacitated arrivals on top of a capacitated initial population: both the
/// base problem and the stream exercise capacities > 1 at once.
#[test]
fn capacitated_streams_over_capacitated_problems_match_the_oracle() {
    let seed = 71u64;
    let functions: Vec<PreferenceFunction> = uniform_weight_functions(6, 2, seed)
        .into_iter()
        .enumerate()
        .map(|(i, f)| PreferenceFunction::new(i, f).with_capacity(1 + (i as u32 % 3)))
        .collect();
    let objects: Vec<ObjectRecord> = independent_objects(25, 2, seed + 5)
        .into_iter()
        .map(|(id, p)| ObjectRecord {
            id,
            point: p,
            capacity: 1 + (id.0 as u32 % 2),
        })
        .collect();
    let problem = Problem::new(functions, objects).unwrap();
    check_sequence(
        problem,
        UpdateStreamConfig {
            num_events: 25,
            dims: 2,
            max_capacity: 4,
            insert_fraction: 0.6,
            seed,
            ..UpdateStreamConfig::default()
        },
    );
}

#[test]
fn engine_update_io_stays_below_full_recompute() {
    // the headline property: repairing across a stream costs less object-tree
    // I/O than re-running SB from scratch on every snapshot
    let problem = build_problem(20, 400, 3, 777);
    let config = UpdateStreamConfig {
        num_events: 40,
        dims: 3,
        seed: 9,
        ..UpdateStreamConfig::default()
    };
    let events = stream_for(&problem, config);
    let mut engine = AssignmentEngine::new(&problem, &EngineOptions::default()).unwrap();
    let mut recompute_io = 0u64;
    for event in &events {
        engine.apply(event).unwrap();
        let snapshot = engine.snapshot_problem().unwrap();
        let mut tree = snapshot.build_tree(None, 0.02);
        let result = pref_assign::SbSolver::default();
        use pref_assign::Solver;
        let r = result.solve(&snapshot, &mut tree);
        recompute_io += r.metrics.object_io.io_accesses();
        assert_eq!(r.assignment.canonical(), engine.assignment().canonical());
    }
    let update_io = engine.update_object_io().io_accesses();
    assert!(
        update_io < recompute_io,
        "incremental update I/O ({update_io}) must undercut full recompute ({recompute_io})"
    );
}

/// The tentpole property: a long 50%-churn stream with compaction enabled
/// keeps (a) the matching stable and oracle-equal after every update, (b) the
/// maintained free-pool skyline equal to a from-scratch skyline of the live
/// free pool after every update — so it stays exact across every compaction
/// batch — and (c) the R-tree record/node count within a constant factor of
/// the live population (vs. the old monotonic growth).
#[test]
fn churn_with_compaction_stays_bounded_and_exact() {
    use pref_skyline::skyline_naive;
    for seed in [51u64, 52, 53] {
        let problem = build_problem(8, 60, 3, seed * 19);
        let config = UpdateStreamConfig {
            num_events: 300,
            dims: 3,
            insert_fraction: 0.5,
            object_fraction: 0.9,
            min_objects: 10,
            min_functions: 2,
            seed,
            ..UpdateStreamConfig::default()
        };
        let events = stream_for(&problem, config);
        let options = EngineOptions {
            compaction_batch: 16,
            ..EngineOptions::default()
        };
        let mut engine = AssignmentEngine::new(&problem, &options).unwrap();
        for (step, event) in events.iter().enumerate() {
            engine.apply(event).unwrap();
            let snapshot = engine.snapshot_problem().unwrap();
            let assignment = engine.assignment();
            verify_stable(&snapshot, &assignment)
                .unwrap_or_else(|v| panic!("unstable after step {step} (seed {seed}): {v}"));
            assert_eq!(
                assignment.canonical(),
                oracle(&snapshot).canonical(),
                "oracle divergence after step {step} (seed {seed})"
            );
            // the maintained skyline must equal a from-scratch skyline of
            // the free pool, including right after compaction batches
            let free_pool = engine.free_pool_records();
            let mut got: Vec<u64> = engine.skyline_records().iter().map(|r| r.0).collect();
            got.sort_unstable();
            let mut want: Vec<u64> = skyline_naive(&free_pool).iter().map(|r| r.0).collect();
            want.sort_unstable();
            assert_eq!(got, want, "skyline drift after step {step} (seed {seed})");
            // boundedness: with threshold 0.25 the tree holds at most
            // live / (1 - 0.25) records once maybe_compact has run
            let stats = engine.stats();
            assert!(
                stats.tree_records * 3 <= stats.live_objects * 4 + 3,
                "unbounded index after step {step} (seed {seed}): {} records for {} live",
                stats.tree_records,
                stats.live_objects
            );
            assert!(stats.tombstone_ratio() <= 0.25 + 1e-9);
        }
        let stats = engine.stats();
        assert!(stats.compaction_batches > 0, "churn never compacted");
        assert!(stats.physical_deletes > 0);
    }
}

/// Compaction must be behaviour-preserving: the same stream through a
/// compacting engine and a tombstone-only engine yields canonically identical
/// matchings at every step, while only the tombstone-only index grows.
#[test]
fn compaction_is_transparent_to_the_matching() {
    let problem = build_problem(10, 50, 2, 4242);
    let config = UpdateStreamConfig {
        num_events: 120,
        dims: 2,
        insert_fraction: 0.4,
        object_fraction: 0.9,
        min_objects: 8,
        min_functions: 2,
        seed: 77,
        ..UpdateStreamConfig::default()
    };
    let events = stream_for(&problem, config);
    let compacting = EngineOptions {
        compaction_threshold: Some(0.2),
        compaction_batch: 8,
        ..EngineOptions::default()
    };
    let tombstoning = EngineOptions {
        compaction_threshold: None,
        ..EngineOptions::default()
    };
    let mut a = AssignmentEngine::new(&problem, &compacting).unwrap();
    let mut b = AssignmentEngine::new(&problem, &tombstoning).unwrap();
    for (step, event) in events.iter().enumerate() {
        a.apply(event).unwrap();
        b.apply(event).unwrap();
        assert_eq!(
            a.assignment().canonical(),
            b.assignment().canonical(),
            "compaction changed the matching at step {step}"
        );
    }
    let sa = a.stats();
    let sb = b.stats();
    assert!(sa.physical_deletes > 0, "threshold 0.2 never fired");
    assert_eq!(sb.physical_deletes, 0);
    // the tombstone-only engine keeps every departure in the tree forever
    assert_eq!(sb.tree_records, sb.live_objects + sb.tombstoned_objects);
    assert_eq!(sb.tombstoned_objects, sb.object_removes);
    assert!(
        sa.tree_records < sb.tree_records,
        "compaction did not shrink the index: {} vs {}",
        sa.tree_records,
        sb.tree_records
    );
}

/// A record id re-issued after its previous bearer was compacted away must
/// not resurrect the predecessor's point: any stale pruned-list entry is
/// purged at insertion, so the engine stays oracle-equal afterwards.
#[test]
fn id_reuse_after_compaction_is_safe() {
    use pref_geom::Point;
    let problem = build_problem(6, 30, 2, 909);
    let eager = EngineOptions {
        compaction_threshold: Some(0.0),
        ..EngineOptions::default()
    };
    let mut engine = AssignmentEngine::new(&problem, &eager).unwrap();
    // depart a batch of objects; eager compaction forgets their ids at once
    for id in [2u64, 5, 11, 17, 23] {
        engine.remove_object(RecordId(id)).unwrap();
    }
    assert_eq!(engine.stats().tombstoned_objects, 0);
    // re-issue the ids with *different* points (dominated and dominating mix)
    for (i, id) in [2u64, 5, 11, 17, 23].into_iter().enumerate() {
        let c = 0.05 + 0.22 * i as f64;
        engine
            .insert_object(ObjectRecord::new(id, Point::from_slice(&[c, 1.0 - c])))
            .unwrap();
        let snapshot = engine.snapshot_problem().unwrap();
        verify_stable(&snapshot, &engine.assignment()).unwrap();
        assert_eq!(
            engine.assignment().canonical(),
            oracle(&snapshot).canonical(),
            "divergence after re-issuing id {id}"
        );
    }
    // and the free-pool skyline is still exact
    use pref_skyline::skyline_naive;
    let mut got: Vec<u64> = engine.skyline_records().iter().map(|r| r.0).collect();
    got.sort_unstable();
    let mut want: Vec<u64> = skyline_naive(&engine.free_pool_records())
        .iter()
        .map(|r| r.0)
        .collect();
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn invalid_engine_options_are_rejected() {
    use pref_engine::EngineError;
    let problem = build_problem(4, 10, 2, 5);
    for options in [
        EngineOptions {
            buffer_fraction: -0.1,
            ..EngineOptions::default()
        },
        EngineOptions {
            buffer_fraction: 1.5,
            ..EngineOptions::default()
        },
        EngineOptions {
            buffer_fraction: f64::NAN,
            ..EngineOptions::default()
        },
        EngineOptions {
            compaction_threshold: Some(-0.5),
            ..EngineOptions::default()
        },
        EngineOptions {
            compaction_threshold: Some(2.0),
            ..EngineOptions::default()
        },
        EngineOptions {
            compaction_batch: 0,
            ..EngineOptions::default()
        },
    ] {
        assert!(matches!(
            AssignmentEngine::new(&problem, &options),
            Err(EngineError::InvalidOptions(_))
        ));
    }
    // an eager threshold of zero is valid: every departure deletes at once
    let eager = EngineOptions {
        compaction_threshold: Some(0.0),
        ..EngineOptions::default()
    };
    let mut engine = AssignmentEngine::new(&problem, &eager).unwrap();
    engine.remove_object(RecordId(3)).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.physical_deletes, 1);
    assert_eq!(stats.tombstoned_objects, 0);
    assert_eq!(stats.tree_records, stats.live_objects);
}

#[test]
fn engine_rejects_invalid_updates() {
    let problem = build_problem(4, 10, 2, 5);
    let mut engine = AssignmentEngine::new(&problem, &EngineOptions::default()).unwrap();
    use pref_assign::FunctionId;
    use pref_engine::EngineError;
    use pref_geom::{LinearFunction, Point};

    // duplicate object id (ids are never reused)
    assert!(matches!(
        engine.insert_object(ObjectRecord::new(0, Point::from_slice(&[0.5, 0.5]))),
        Err(EngineError::DuplicateObject(_))
    ));
    // wrong dimensionality
    assert!(matches!(
        engine.insert_object(ObjectRecord::new(99, Point::from_slice(&[0.5, 0.5, 0.5]))),
        Err(EngineError::DimensionMismatch { .. })
    ));
    assert!(matches!(
        engine.insert_function(PreferenceFunction::new(
            50,
            LinearFunction::new(vec![0.3, 0.3, 0.4]).unwrap()
        )),
        Err(EngineError::DimensionMismatch { .. })
    ));
    // unknown ids
    assert!(matches!(
        engine.remove_object(RecordId(555)),
        Err(EngineError::UnknownObject(_))
    ));
    assert!(matches!(
        engine.remove_function(FunctionId(555)),
        Err(EngineError::UnknownFunction(_))
    ));
    // removing twice fails the second time
    engine.remove_object(RecordId(3)).unwrap();
    assert!(matches!(
        engine.remove_object(RecordId(3)),
        Err(EngineError::UnknownObject(_))
    ));
    // the state is still coherent afterwards
    let snapshot = engine.snapshot_problem().unwrap();
    verify_stable(&snapshot, &engine.assignment()).unwrap();
}

#[test]
fn threaded_repair_is_canonical_identical_at_any_thread_count() {
    // Large enough that the repair scan clears the parallel work floor
    // (active functions × scan rows ≥ 4096), so the pool path actually runs
    // at thread counts > 1.
    let problem = build_problem(120, 200, 3, 71);
    let events = stream_for(
        &problem,
        UpdateStreamConfig {
            num_events: 25,
            dims: 3,
            seed: 72,
            ..UpdateStreamConfig::default()
        },
    );
    let mut baseline: Option<Vec<String>> = None;
    for threads in [1usize, 2, 4, 8] {
        let options = EngineOptions {
            threads: Some(threads),
            ..EngineOptions::default()
        };
        let mut engine = AssignmentEngine::new(&problem, &options).unwrap();
        let mut trace = vec![format!("{:?}", engine.assignment().canonical())];
        for event in &events {
            engine.apply(event).unwrap();
            trace.push(format!("{:?}", engine.assignment().canonical()));
        }
        let snapshot = engine.snapshot_problem().unwrap();
        verify_stable(&snapshot, &engine.assignment()).unwrap();
        match &baseline {
            None => baseline = Some(trace),
            Some(want) => assert_eq!(&trace, want, "threads={threads}"),
        }
    }
}

#[test]
fn deferred_compaction_drains_to_the_inline_result() {
    let problem = build_problem(10, 60, 2, 81);
    let inline_opts = EngineOptions {
        compaction_threshold: Some(0.2),
        compaction_batch: 8,
        ..EngineOptions::default()
    };
    let deferred_opts = EngineOptions {
        deferred_compaction: true,
        ..inline_opts.clone()
    };
    let mut inline = AssignmentEngine::new(&problem, &inline_opts).unwrap();
    let mut deferred = AssignmentEngine::new(&problem, &deferred_opts).unwrap();
    for id in [
        2u64, 5, 11, 17, 23, 29, 31, 37, 41, 43, 47, 53, 3, 7, 13, 19,
    ] {
        inline.remove_object(RecordId(id)).unwrap();
        deferred.remove_object(RecordId(id)).unwrap();
    }
    // the deferred engine's update path never compacted...
    assert_eq!(deferred.stats().compaction_batches, 0);
    assert_eq!(deferred.stats().physical_deletes, 0);
    assert!(deferred.compaction_due());
    // ...while the inline engine kept the ratio bounded throughout
    assert!(inline.stats().physical_deletes > 0);
    assert!(!inline.compaction_due());
    // draining the debt batch-by-batch reaches the inline engine's state
    let mut batches = 0;
    while deferred.run_compaction_batch() {
        batches += 1;
        assert!(batches < 1000, "compaction failed to converge");
    }
    assert!(!deferred.compaction_due());
    assert!(deferred.stats().tombstone_ratio() <= 0.2);
    // the matching was never touched by compaction on either side
    assert_eq!(
        deferred.assignment().canonical(),
        inline.assignment().canonical()
    );
    let snapshot = deferred.snapshot_problem().unwrap();
    verify_stable(&snapshot, &deferred.assignment()).unwrap();
    // both engines keep absorbing updates after the drain
    for engine in [&mut inline, &mut deferred] {
        engine
            .insert_object(ObjectRecord::new(
                900,
                pref_geom::Point::from_slice(&[0.9, 0.9]),
            ))
            .unwrap();
    }
    assert_eq!(
        deferred.assignment().canonical(),
        inline.assignment().canonical()
    );
}
