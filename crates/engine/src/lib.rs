//! A long-lived **online assignment engine** on top of the batch solvers.
//!
//! The paper computes the stable matching once, for a fixed function set `F`
//! and object set `O`. A production service faces continuous traffic: users
//! (preference functions) and objects arrive and depart while the stable
//! matching must stay current. Recomputing from scratch on every update
//! re-pays the full skyline computation and the full stable loop; this crate
//! instead *repairs* the matching incrementally, using exactly the primitives
//! the paper already provides:
//!
//! * **departures** free capacity and resume the stable loop from the
//!   *maintained* free-pool skyline — replenished by the I/O-optimal
//!   `UpdateSkyline` module (Theorem 1), so only R-tree nodes exclusively
//!   dominated by the departed objects are ever read;
//! * **arrivals** are classified against the maintained skyline in memory
//!   (`insert_skyline`, no I/O) and then a reverse top-1 probe over the live
//!   functions finds the pairs the newcomer destabilizes; only those pairs
//!   are repaired, cascade-style, in descending score order;
//! * **churn stays bounded**: departures are tombstoned first (zero I/O),
//!   and once tombstones exceed a configurable fraction of the index
//!   ([`EngineOptions::compaction_threshold`], default 25%) the engine
//!   compacts incrementally — tombstones are physically deleted from the
//!   R-tree batch-by-batch, with every structural effect of the deletion
//!   (freed pages, re-inserted orphans, splits, MBR shrinks) patched into
//!   the skyline's pruned lists, so the index, the pruned lists and the
//!   dense slabs all stay within a constant factor of the live population
//!   without ever re-solving the matching.
//!
//! The engine's repaired matching is — by the greedy-trace argument of
//! Section 3 — *identical* to the batch solvers' output on a snapshot of the
//! current problem; the property tests and the `engine_bench` divergence gate
//! enforce this against the exact oracle and every [`pref_assign::Solver`]
//! variant.
//!
//! # Quick start
//!
//! ```
//! use pref_assign::{Problem, PreferenceFunction, ObjectRecord, verify_stable};
//! use pref_engine::{AssignmentEngine, EngineOptions};
//! use pref_geom::{LinearFunction, Point};
//! use pref_rtree::RecordId;
//!
//! let problem = Problem::new(
//!     vec![
//!         PreferenceFunction::new(0, LinearFunction::new(vec![0.8, 0.2]).unwrap()),
//!         PreferenceFunction::new(1, LinearFunction::new(vec![0.2, 0.8]).unwrap()),
//!     ],
//!     vec![
//!         ObjectRecord::new(0, Point::from_slice(&[0.5, 0.6])),
//!         ObjectRecord::new(1, Point::from_slice(&[0.2, 0.7])),
//!         ObjectRecord::new(2, Point::from_slice(&[0.8, 0.2])),
//!     ],
//! )
//! .unwrap();
//! let mut engine = AssignmentEngine::new(&problem, &EngineOptions::default()).unwrap();
//! assert_eq!(engine.assignment().len(), 2);
//!
//! // a hot new object arrives: the matching is repaired, not recomputed
//! engine
//!     .insert_object(ObjectRecord::new(3, Point::from_slice(&[0.9, 0.9])))
//!     .unwrap();
//! let snapshot = engine.snapshot_problem().unwrap();
//! verify_stable(&snapshot, &engine.assignment()).unwrap();
//!
//! // a user leaves; their object returns to the pool and may be re-assigned
//! engine.remove_function(pref_assign::FunctionId(0)).unwrap();
//! let snapshot = engine.snapshot_problem().unwrap();
//! verify_stable(&snapshot, &engine.assignment()).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;

pub use engine::{
    AssignmentEngine, EngineError, EngineOptions, EngineSnapshot, EngineStats, UpdateOp,
};
