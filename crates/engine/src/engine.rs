//! The incremental engine: state, update operations and the repair loop.

use pref_assign::{
    Assignment, AssignmentView, FunctionId, ObjectRecord, PreferenceFunction, Problem,
};
use pref_datagen::UpdateEvent;
use pref_geom::{Point, ScoreTable, SoaBlock};
use pref_rtree::{DataEntry, NodeEntry, RTree, RecordId};
use pref_skyline::{compute_skyline_bbs, insert_skyline, update_skyline_filtered, Skyline};
use pref_storage::IoStats;
use pref_sync::WorkStealingPool;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Configuration of an [`AssignmentEngine`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// R-tree fanout override (`None` = the page-size derived default).
    pub fanout: Option<usize>,
    /// LRU buffer size as a fraction of the built tree (paper default: 2%).
    /// Must lie in `[0, 1]`.
    pub buffer_fraction: f64,
    /// Tombstone-ratio bound that triggers incremental compaction: when more
    /// than this fraction of the R-tree's records are tombstoned departures,
    /// the engine physically deletes tombstones batch-by-batch until the
    /// ratio is restored. `None` disables compaction (departures stay
    /// logical forever — the pre-compaction behaviour, which grows the index
    /// monotonically under churn). Must lie in `[0, 1]`;
    /// `Some(0.0)` deletes every departure immediately.
    pub compaction_threshold: Option<f64>,
    /// Maximum number of tombstoned records physically deleted per
    /// compaction batch (bounds the work of a single batch; must be ≥ 1).
    pub compaction_batch: usize,
    /// Worker threads for the repair loop's candidate scan. `None` resolves
    /// via [`pref_sync::resolve_threads`] (`PREF_THREADS`, then available
    /// parallelism; always 1 in model-capable builds); `Some(n)` pins `n`
    /// (must be ≥ 1). The matching is canonical-identical at any thread
    /// count — see [`AssignmentEngine::best_candidate`]'s merge contract.
    pub threads: Option<usize>,
    /// When `true`, departures never run compaction inline: the writer's
    /// update path only tombstones, and a caller-driven helper (the serving
    /// tier's background compactor) drains the debt through
    /// [`AssignmentEngine::run_compaction_batch`]. The compaction work and
    /// its outcome are identical — only *who pays* for it changes.
    pub deferred_compaction: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            fanout: None,
            buffer_fraction: 0.02,
            compaction_threshold: Some(0.25),
            compaction_batch: 64,
            threads: None,
            deferred_compaction: false,
        }
    }
}

impl EngineOptions {
    /// Validates the options, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), EngineError> {
        if !self.buffer_fraction.is_finite() || !(0.0..=1.0).contains(&self.buffer_fraction) {
            return Err(EngineError::InvalidOptions(format!(
                "buffer_fraction must lie in [0, 1], got {}",
                self.buffer_fraction
            )));
        }
        if let Some(threshold) = self.compaction_threshold {
            if !threshold.is_finite() || !(0.0..=1.0).contains(&threshold) {
                return Err(EngineError::InvalidOptions(format!(
                    "compaction_threshold must lie in [0, 1], got {threshold}"
                )));
            }
        }
        if self.compaction_batch == 0 {
            return Err(EngineError::InvalidOptions(
                "compaction_batch must be at least 1".into(),
            ));
        }
        if self.threads == Some(0) {
            return Err(EngineError::InvalidOptions(
                "threads must be at least 1 when set".into(),
            ));
        }
        Ok(())
    }
}

/// Errors raised by the engine's update operations.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The arriving object / function does not match the engine's
    /// dimensionality.
    DimensionMismatch {
        /// The engine's dimensionality.
        expected: usize,
        /// The arrival's dimensionality.
        got: usize,
    },
    /// The record id is already registered — alive, or departed but not yet
    /// compacted away. (Rejection of departed ids is best-effort: once
    /// compaction physically deletes a tombstone, its id is forgotten and a
    /// later arrival may legitimately re-use it — the engine purges any
    /// stale pruned-list entry of the predecessor at insertion, so re-use is
    /// safe. `pref_datagen::update_stream` still never re-issues ids.)
    DuplicateObject(RecordId),
    /// The function id is already registered — alive, or departed but its
    /// slot not yet reused (the same best-effort caveat as
    /// [`EngineError::DuplicateObject`] applies).
    DuplicateFunction(FunctionId),
    /// No live object carries this id.
    UnknownObject(RecordId),
    /// No live function carries this id.
    UnknownFunction(FunctionId),
    /// The live population is empty, so no problem snapshot exists.
    EmptyProblem,
    /// The [`EngineOptions`] are invalid (message describes the problem).
    InvalidOptions(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            EngineError::DuplicateObject(id) => write!(f, "duplicate object id {id}"),
            EngineError::DuplicateFunction(id) => write!(f, "duplicate function id {id}"),
            EngineError::UnknownObject(id) => write!(f, "unknown object id {id}"),
            EngineError::UnknownFunction(id) => write!(f, "unknown function id {id}"),
            EngineError::EmptyProblem => write!(f, "the live population is empty"),
            EngineError::InvalidOptions(msg) => write!(f, "invalid engine options: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Counters of the engine's lifetime (cumulative) plus a snapshot of its
/// live state (gauges, filled in by [`AssignmentEngine::stats`]), so the
/// tombstone ratio driving the compaction trigger is observable.
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineStats {
    /// Updates applied (all four kinds).
    pub updates: u64,
    /// Object arrivals.
    pub object_inserts: u64,
    /// Object departures.
    pub object_removes: u64,
    /// Function arrivals.
    pub function_inserts: u64,
    /// Function departures.
    pub function_removes: u64,
    /// Pairs established, including the initial stabilization.
    pub pairs_established: u64,
    /// Pairs retracted by departures and repairs.
    pub pairs_retracted: u64,
    /// Repair-loop iterations executed (one per established pair).
    pub repair_rounds: u64,
    /// Compaction batches executed.
    pub compaction_batches: u64,
    /// Tombstoned records physically deleted from the R-tree by compaction.
    pub physical_deletes: u64,
    /// Gauge: objects currently alive.
    pub live_objects: u64,
    /// Gauge: functions currently alive.
    pub live_functions: u64,
    /// Gauge: departed objects still resident in the R-tree as tombstones.
    pub tombstoned_objects: u64,
    /// Gauge: records currently indexed by the R-tree (live + tombstoned).
    pub tree_records: u64,
    /// Gauge: R-tree nodes (= live pages of the simulated store).
    pub tree_pages: u64,
    /// Gauge: node pages written back to a persistent storage backend (dirty
    /// evictions and flushes). Zero for the default in-memory backend.
    pub tree_page_writes: u64,
    /// Gauge: durability barriers (`fsync`-like) issued by the tree's storage
    /// backend. Zero for the default in-memory backend.
    pub tree_sync_calls: u64,
}

impl EngineStats {
    /// The fraction of R-tree records that are tombstoned departures; the
    /// compaction trigger fires when this exceeds the configured threshold.
    pub fn tombstone_ratio(&self) -> f64 {
        if self.tree_records == 0 {
            0.0
        } else {
            self.tombstoned_objects as f64 / self.tree_records as f64
        }
    }
}

/// One update operation against an engine, with the records fully
/// constructed (capacities included).
///
/// This is THE conversion point from [`UpdateEvent`] stream events to engine
/// updates — [`AssignmentEngine::apply`] and the serving tier's submission
/// path both go through it, so the two can never drift on how an event maps
/// to records.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// A new object (with its capacity) arrives.
    InsertObject(ObjectRecord),
    /// A live object departs.
    RemoveObject(RecordId),
    /// A new preference function (user, with its capacity) arrives.
    InsertFunction(PreferenceFunction),
    /// A live preference function departs.
    RemoveFunction(FunctionId),
}

impl UpdateOp {
    /// Converts a datagen stream event into an applicable op.
    pub fn from_event(event: &UpdateEvent) -> Self {
        match event {
            UpdateEvent::InsertObject {
                id,
                point,
                capacity,
            } => UpdateOp::InsertObject(
                ObjectRecord::new(id.0, point.clone()).with_capacity(*capacity),
            ),
            UpdateEvent::RemoveObject { id } => UpdateOp::RemoveObject(*id),
            UpdateEvent::InsertFunction {
                id,
                function,
                capacity,
            } => UpdateOp::InsertFunction(
                PreferenceFunction::new(*id as usize, function.clone()).with_capacity(*capacity),
            ),
            UpdateEvent::RemoveFunction { id } => {
                UpdateOp::RemoveFunction(FunctionId(*id as usize))
            }
        }
    }

    /// Applies the op to an engine.
    pub fn apply(&self, engine: &mut AssignmentEngine) -> Result<(), EngineError> {
        match self {
            UpdateOp::InsertObject(object) => engine.insert_object(object.clone()),
            UpdateOp::RemoveObject(id) => engine.remove_object(*id),
            UpdateOp::InsertFunction(function) => engine.insert_function(function.clone()),
            UpdateOp::RemoveFunction(id) => engine.remove_function(*id),
        }
    }
}

/// A coherent export of the engine's live state, taken between updates — the
/// publish hook of the serving tier. One call walks the dense slabs once and
/// returns everything a published snapshot needs: the live populations (full
/// records, so the snapshot can rebuild the [`Problem`] for verification or a
/// restart), the current matching as id-level pairs, and the stats gauges at
/// export time.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// The live preference functions (arrival order of their dense slots).
    pub functions: Vec<PreferenceFunction>,
    /// The live objects (arrival order of their dense slots).
    pub objects: Vec<ObjectRecord>,
    /// The stable matching as `(function, object, score)` triples.
    pub pairs: Vec<(FunctionId, RecordId, f64)>,
    /// Engine stats (lifetime counters + gauges) at export time.
    pub stats: EngineStats,
}

impl EngineSnapshot {
    /// The export as a [`Problem`] (full capacities), e.g. for stability
    /// verification or an engine restart. `None` when a population is empty.
    pub fn to_problem(&self) -> Option<Problem> {
        Problem::new(self.functions.clone(), self.objects.clone()).ok()
    }

    /// The export's matching as a compact, allocation-free-queryable
    /// [`AssignmentView`] over the live populations.
    pub fn view(&self) -> AssignmentView {
        AssignmentView::from_pairs(
            self.functions.iter().map(|f| f.id).collect(),
            self.objects.iter().map(|o| o.id).collect(),
            &self.pairs,
        )
        // lint: allow(no-unwrap) -- internal invariant: pairs only ever hold live, unique ids
        .expect("engine pairs reference live ids and live ids are unique")
    }
}

/// Dense per-object state.
#[derive(Debug, Clone)]
struct ObjState {
    record: ObjectRecord,
    remaining: u32,
    alive: bool,
}

/// Dense per-function state.
#[derive(Debug, Clone)]
struct FunState {
    pref: PreferenceFunction,
    remaining: u32,
    alive: bool,
}

/// How the repair loop acquires the object slot of a new pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    /// The object has free capacity (it is on the free-pool skyline).
    Free,
    /// The object is saturated: its worst-scoring pair is displaced.
    Steal,
}

/// One candidate repair step.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    fi: usize,
    oi: usize,
    score: f64,
    kind: SlotKind,
}

impl Candidate {
    /// Deterministic preference: higher score, then filling a free slot over
    /// displacing a pair, then lowest function / object index — mirroring the
    /// oracle's greedy consumption order. Two distinct candidates never tie
    /// (their `(fi, oi, kind)` differ), so this is a strict total order and
    /// the overall best does not depend on scan (or thread partition) order.
    fn beats(&self, other: &Candidate) -> bool {
        if self.score != other.score {
            return self.score > other.score;
        }
        if self.kind != other.kind {
            return self.kind == SlotKind::Free;
        }
        (self.fi, self.oi) < (other.fi, other.oi)
    }
}

/// Reusable buffers of the repair loop's candidate scan, rebuilt every round
/// (thresholds and the free pool change with each established pair) without
/// reallocating. The columnar mirrors and the scan lists live behind `Arc`s
/// so the parallel path can hand clones to pool workers without copying; by
/// the time a batch returns every worker clone is dropped, so the next
/// round's [`Arc::make_mut`] reuses the allocations in place.
#[derive(Debug)]
struct RepairScratch {
    /// Per-function admission threshold (see `best_candidate`).
    f_threshold: Vec<f64>,
    /// Worst pair score per object, dense by object index
    /// (`f64::INFINITY` = no pairs). Dense rather than hashed so the
    /// displacement-target scan below iterates in deterministic ascending
    /// object order.
    o_worst: Vec<f64>,
    /// `(dense function index, threshold)` of the functions worth scanning.
    active: Vec<(usize, f64)>,
    /// Columnar mirror of the free-pool skyline points.
    sky_block: Arc<SoaBlock>,
    /// Dense object index of each `sky_block` row.
    sky_ois: Arc<Vec<usize>>,
    /// Columnar mirror of the saturated displacement targets' points.
    steal_block: Arc<SoaBlock>,
    /// `(dense object index, worst pair score)` of each `steal_block` row.
    steal: Arc<Vec<(usize, f64)>>,
    /// Score lane for the serial path.
    scores: Vec<f64>,
}

impl RepairScratch {
    fn new() -> Self {
        Self {
            f_threshold: Vec::new(),
            o_worst: Vec::new(),
            active: Vec::new(),
            sky_block: Arc::new(SoaBlock::new()),
            sky_ois: Arc::new(Vec::new()),
            steal_block: Arc::new(SoaBlock::new()),
            steal: Arc::new(Vec::new()),
            scores: Vec::new(),
        }
    }
}

/// Candidate-scan work (active functions × scan rows) below which the pool
/// is not worth waking: a round of dot products at this size costs less than
/// the batch handshake.
const PARALLEL_WORK_FLOOR: usize = 4096;

/// Scans one function's admissible candidates — free skyline slots, then
/// saturated displacement targets — folding the best into `best` under
/// [`Candidate::beats`]. Shared verbatim by the serial and parallel paths of
/// `best_candidate`, so they cannot drift.
#[allow(clippy::too_many_arguments)]
fn scan_function(
    fi: usize,
    threshold: f64,
    table: &ScoreTable,
    sky_block: &SoaBlock,
    sky_ois: &[usize],
    steal_block: &SoaBlock,
    steal: &[(usize, f64)],
    scores: &mut Vec<f64>,
    best: &mut Option<Candidate>,
) {
    // free slots: the free pool's maxima are on the skyline
    table.score_block(fi, sky_block, scores);
    for (&oi, &score) in sky_ois.iter().zip(scores.iter()) {
        if score <= threshold {
            continue;
        }
        let cand = Candidate {
            fi,
            oi,
            score,
            kind: SlotKind::Free,
        };
        if best.as_ref().is_none_or(|b| cand.beats(b)) {
            *best = Some(cand);
        }
    }
    // saturated slots: displace an object's worst pair
    table.score_block(fi, steal_block, scores);
    for (&(oi, worst), &score) in steal.iter().zip(scores.iter()) {
        if score <= threshold || score <= worst {
            continue;
        }
        let cand = Candidate {
            fi,
            oi,
            score,
            kind: SlotKind::Steal,
        };
        if best.as_ref().is_none_or(|b| cand.beats(b)) {
            *best = Some(cand);
        }
    }
}

/// A long-lived stable-assignment engine.
///
/// Owns the live problem state (functions, objects, capacities), the object
/// R-tree, the maintained skyline of the **free pool** (live objects with
/// unassigned capacity), and the current stable matching. All four update
/// operations re-stabilize incrementally; [`AssignmentEngine::assignment`]
/// always returns a matching that is stable for the current snapshot.
///
/// # Index maintenance strategy
///
/// Arrivals are inserted into the R-tree dynamically
/// ([`RTree::insert_tracked`]); the node splits this causes are patched into
/// the skyline's pruned lists, which keeps the `UpdateSkyline` machinery
/// I/O-optimal and correct across arrivals.
///
/// Departures are *logical* first (tombstoned — zero I/O; departed records
/// are filtered out of the maintenance stream) and *physical* eventually:
/// when the fraction of tombstoned records in the tree exceeds
/// [`EngineOptions::compaction_threshold`], the engine runs incremental
/// compaction — tombstones are physically deleted batch-by-batch
/// ([`RTree::delete_tracked`]), every structural effect of CondenseTree
/// (freed pages, re-inserted orphans, re-insertion splits, MBR shrinks) is
/// patched into the pruned lists (`Skyline::patch_page_delete`), freed pages
/// are invalidated in the LRU buffer by the paged store, the buffer is
/// re-sized to the shrunken tree, and the records' dense slab slots are
/// reclaimed for future arrivals. The matching is never re-solved:
/// compaction only touches the index and the bookkeeping, so the R-tree node
/// count, the pruned lists and the slabs all stay within a constant factor
/// of the live population under indefinite churn.
#[derive(Debug)]
pub struct AssignmentEngine {
    dims: usize,
    objects: Vec<ObjState>,
    obj_index: HashMap<RecordId, usize>,
    functions: Vec<FunState>,
    fun_index: HashMap<FunctionId, usize>,
    tree: RTree,
    skyline: Skyline,
    /// Current matching as `(dense function index, dense object index, score)`.
    pairs: Vec<(usize, usize, f64)>,
    stats: EngineStats,
    /// Tree I/O at the end of the initial stabilization.
    initial_io: IoStats,
    /// LRU buffer sizing, re-applied after compaction shrinks the tree.
    buffer_fraction: f64,
    /// Compaction trigger (`None` = tombstones are never deleted).
    compaction_threshold: Option<f64>,
    /// Records physically deleted per compaction batch.
    compaction_batch: usize,
    /// Dense indices of departed objects still resident in the R-tree,
    /// oldest departure first (compaction consumes from the front).
    tombstones: VecDeque<usize>,
    /// Dense object slots reclaimed by compaction, reused by arrivals.
    free_obj_slots: Vec<usize>,
    /// Dense function slots of departed functions, reused by arrivals.
    free_fun_slots: Vec<usize>,
    /// When `true`, departures only tombstone; compaction is caller-driven
    /// (see [`AssignmentEngine::run_compaction_batch`]).
    deferred_compaction: bool,
    /// Batch-scoring rows aligned with the dense function slab; rebuilt when
    /// the function set changes (rows of dead slots are never scanned).
    table: ScoreTable,
    /// Worker pool for the repair scan (`None` = serial).
    pool: Option<WorkStealingPool>,
    /// Reusable per-round scan buffers.
    repair: RepairScratch,
}

impl AssignmentEngine {
    /// Builds the engine from an initial problem: bulk-loads the R-tree,
    /// computes the initial skyline with BBS and stabilizes the matching.
    /// Index construction is not charged I/O (as in the batch experiments);
    /// the initial BBS + stable loop is, and is reported separately by
    /// [`AssignmentEngine::initial_object_io`].
    pub fn new(problem: &Problem, options: &EngineOptions) -> Result<Self, EngineError> {
        options.validate()?;
        let tree = problem.build_tree(options.fanout, options.buffer_fraction);
        let objects: Vec<ObjState> = problem
            .objects()
            .iter()
            .map(|o| ObjState {
                record: o.clone(),
                remaining: o.capacity,
                alive: true,
            })
            .collect();
        let obj_index: HashMap<RecordId, usize> = objects
            .iter()
            .enumerate()
            .map(|(i, o)| (o.record.id, i))
            .collect();
        let functions: Vec<FunState> = problem
            .functions()
            .iter()
            .map(|f| FunState {
                pref: f.clone(),
                remaining: f.capacity,
                alive: true,
            })
            .collect();
        let fun_index: HashMap<FunctionId, usize> = functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.pref.id, i))
            .collect();
        let mut engine = Self {
            dims: problem.dims(),
            objects,
            obj_index,
            functions,
            fun_index,
            tree,
            skyline: Skyline::new(),
            pairs: Vec::new(),
            stats: EngineStats::default(),
            initial_io: IoStats::default(),
            buffer_fraction: options.buffer_fraction,
            compaction_threshold: options.compaction_threshold,
            compaction_batch: options.compaction_batch,
            tombstones: VecDeque::new(),
            free_obj_slots: Vec::new(),
            free_fun_slots: Vec::new(),
            deferred_compaction: options.deferred_compaction,
            table: ScoreTable::from_functions(&[]),
            pool: {
                let threads = pref_sync::resolve_threads(options.threads);
                (threads > 1).then(|| WorkStealingPool::with_threads(threads))
            },
            repair: RepairScratch::new(),
        };
        engine.rebuild_score_table();
        engine.skyline = compute_skyline_bbs(&mut engine.tree);
        engine.restabilize();
        engine.initial_io = engine.tree.stats();
        Ok(engine)
    }

    /// Rebuilds an engine from an exported checkpoint — the restore half of
    /// [`AssignmentEngine::export_snapshot`], used by the serving tier's
    /// crash recovery. The live populations are re-indexed and re-solved from
    /// scratch; by the restart-equivalence guarantee (pinned by the
    /// `restart_equivalence` test battery) the resulting canonical matching
    /// is byte-identical to the exporting engine's.
    pub fn restore(
        snapshot: &EngineSnapshot,
        options: &EngineOptions,
    ) -> Result<Self, EngineError> {
        let problem = Problem::new(snapshot.functions.clone(), snapshot.objects.clone())
            .map_err(|_| EngineError::EmptyProblem)?;
        Self::new(&problem, options)
    }

    /// Dimensionality of the engine's problem.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of live objects.
    pub fn num_objects(&self) -> usize {
        self.objects.iter().filter(|o| o.alive).count()
    }

    /// Number of live functions.
    pub fn num_functions(&self) -> usize {
        self.functions.iter().filter(|f| f.alive).count()
    }

    /// Lifetime counters plus the current live/tombstone/index gauges.
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.stats;
        stats.live_objects = self.num_objects() as u64;
        stats.live_functions = self.num_functions() as u64;
        stats.tombstoned_objects = self.tombstones.len() as u64;
        stats.tree_records = self.tree.len() as u64;
        stats.tree_pages = self.tree.num_pages() as u64;
        let io = self.tree.stats();
        stats.tree_page_writes = io.page_writes;
        stats.tree_sync_calls = io.sync_calls;
        stats
    }

    /// The fraction of R-tree records that are tombstoned departures.
    pub fn tombstone_ratio(&self) -> f64 {
        self.stats().tombstone_ratio()
    }

    /// Record ids of the maintained free-pool skyline (observability / test
    /// oracle: must equal a from-scratch skyline of
    /// [`AssignmentEngine::free_pool_records`]).
    pub fn skyline_records(&self) -> Vec<RecordId> {
        self.skyline.records()
    }

    /// The current free pool: live objects with unassigned capacity.
    pub fn free_pool_records(&self) -> Vec<(RecordId, Point)> {
        self.objects
            .iter()
            .filter(|o| o.alive && o.remaining > 0)
            .map(|o| (o.record.id, o.record.point.clone()))
            .collect()
    }

    /// Cumulative object R-tree I/O (initial stabilization + all updates).
    pub fn total_object_io(&self) -> IoStats {
        self.tree.stats()
    }

    /// Object R-tree I/O of the initial BBS + stabilization.
    pub fn initial_object_io(&self) -> IoStats {
        self.initial_io
    }

    /// Object R-tree I/O spent on updates since the initial stabilization.
    pub fn update_object_io(&self) -> IoStats {
        self.tree.stats().since(&self.initial_io)
    }

    /// The current stable matching (pairs in establishment order; functions
    /// with spare capacity or an empty pool may be unmatched, exactly as in
    /// the batch solvers).
    pub fn assignment(&self) -> Assignment {
        let mut assignment = Assignment::new();
        for &(fi, oi, score) in &self.pairs {
            assignment.push(
                self.functions[fi].pref.id,
                self.objects[oi].record.id,
                score,
            );
        }
        assignment
    }

    /// Exports the engine's live state in one pass: populations, matching
    /// and stats, taken together so they are mutually consistent. This is
    /// the publish hook of the serving tier — called by a shard's writer
    /// thread after each applied batch, never concurrently with updates
    /// (the engine itself is single-writer).
    pub fn export_snapshot(&self) -> EngineSnapshot {
        let functions: Vec<PreferenceFunction> = self
            .functions
            .iter()
            .filter(|f| f.alive)
            .map(|f| f.pref.clone())
            .collect();
        let objects: Vec<ObjectRecord> = self
            .objects
            .iter()
            .filter(|o| o.alive)
            .map(|o| o.record.clone())
            .collect();
        let pairs: Vec<(FunctionId, RecordId, f64)> = self
            .pairs
            .iter()
            .map(|&(fi, oi, score)| {
                (
                    self.functions[fi].pref.id,
                    self.objects[oi].record.id,
                    score,
                )
            })
            .collect();
        EngineSnapshot {
            functions,
            objects,
            pairs,
            stats: self.stats(),
        }
    }

    /// A [`Problem`] snapshot of the live population (full capacities), e.g.
    /// for oracle comparison or an index rebuild.
    pub fn snapshot_problem(&self) -> Result<Problem, EngineError> {
        let functions: Vec<PreferenceFunction> = self
            .functions
            .iter()
            .filter(|f| f.alive)
            .map(|f| f.pref.clone())
            .collect();
        let objects: Vec<ObjectRecord> = self
            .objects
            .iter()
            .filter(|o| o.alive)
            .map(|o| o.record.clone())
            .collect();
        Problem::new(functions, objects).map_err(|_| EngineError::EmptyProblem)
    }

    /// Applies one [`UpdateEvent`] from a datagen update stream (via the
    /// shared [`UpdateOp`] conversion).
    pub fn apply(&mut self, event: &UpdateEvent) -> Result<(), EngineError> {
        UpdateOp::from_event(event).apply(self)
    }

    /// An object arrives: it is inserted into the R-tree (splits are patched
    /// into the skyline's pruned lists), classified against the maintained
    /// skyline in memory, and the reverse top-1 repair re-establishes only
    /// the pairs it destabilizes.
    pub fn insert_object(&mut self, object: ObjectRecord) -> Result<(), EngineError> {
        if object.point.dims() != self.dims {
            return Err(EngineError::DimensionMismatch {
                expected: self.dims,
                got: object.point.dims(),
            });
        }
        if self.obj_index.contains_key(&object.id) {
            return Err(EngineError::DuplicateObject(object.id));
        }
        // The id may be a re-issue of a compacted departure (the engine
        // forgets compacted ids — remembering them forever would defeat the
        // boundedness compaction buys). Physical deletion removed the
        // predecessor's tree copy, but a pruned list may still hold its data
        // entry; purge it so it cannot resurface under the new bearer's id.
        self.skyline.purge_record(object.id);
        let splits = self
            .tree
            .insert_tracked(object.id, object.point.clone())
            // lint: allow(no-unwrap) -- internal invariant: dimensionality was validated at the API boundary
            .expect("dimensionality was checked");
        for split in &splits {
            // Pre-existing entries that moved to the sibling must stay
            // reachable through the pruned lists; the new point's
            // authoritative copy is classified below, and its duplicate
            // tree-resident copy is dropped by the filtered resume loop.
            self.skyline.patch_page_split(
                split.old_page,
                NodeEntry::Child {
                    mbr: split.new_mbr.clone(),
                    page: split.new_page,
                },
            );
        }
        let state = ObjState {
            remaining: object.capacity,
            record: object,
            alive: true,
        };
        let data = DataEntry::new(state.record.id, state.record.point.clone());
        let oi = match self.free_obj_slots.pop() {
            Some(oi) => {
                self.objects[oi] = state;
                oi
            }
            None => {
                self.objects.push(state);
                self.objects.len() - 1
            }
        };
        self.obj_index.insert(data.record, oi);
        insert_skyline(&mut self.skyline, data);
        self.stats.updates += 1;
        self.stats.object_inserts += 1;
        self.restabilize();
        Ok(())
    }

    /// An object departs: its pairs are retracted (freeing function
    /// capacity), it is tombstoned in the R-tree, the free-pool skyline is
    /// replenished via `UpdateSkyline`, and the stable loop resumes for the
    /// freed functions. When the departure pushes the tombstone ratio over
    /// [`EngineOptions::compaction_threshold`], incremental compaction
    /// physically deletes tombstones until the ratio is restored.
    pub fn remove_object(&mut self, id: RecordId) -> Result<(), EngineError> {
        let oi = match self.obj_index.get(&id) {
            Some(&oi) if self.objects[oi].alive => oi,
            _ => return Err(EngineError::UnknownObject(id)),
        };
        // retract every pair holding the departing object
        let mut i = 0;
        while i < self.pairs.len() {
            if self.pairs[i].1 == oi {
                let (fi, _, _) = self.pairs.swap_remove(i);
                self.functions[fi].remaining += 1;
                self.stats.pairs_retracted += 1;
            } else {
                i += 1;
            }
        }
        self.objects[oi].alive = false;
        self.objects[oi].remaining = 0;
        self.tombstones.push_back(oi);
        if let Some(removed) = self.skyline.remove(id) {
            self.replenish_skyline(vec![removed]);
        }
        self.stats.updates += 1;
        self.stats.object_removes += 1;
        self.restabilize();
        if !self.deferred_compaction {
            self.maybe_compact();
        }
        Ok(())
    }

    /// A function (user) arrives: a reverse top-1 probe over the free pool
    /// and the current pairs finds its best attainable object; the
    /// displacement cascade repairs the rest.
    pub fn insert_function(&mut self, function: PreferenceFunction) -> Result<(), EngineError> {
        if function.function.dims() != self.dims {
            return Err(EngineError::DimensionMismatch {
                expected: self.dims,
                got: function.function.dims(),
            });
        }
        if self.fun_index.contains_key(&function.id) {
            return Err(EngineError::DuplicateFunction(function.id));
        }
        let state = FunState {
            remaining: function.capacity,
            pref: function,
            alive: true,
        };
        let fi = match self.free_fun_slots.pop() {
            Some(fi) => {
                self.functions[fi] = state;
                fi
            }
            None => {
                self.functions.push(state);
                self.functions.len() - 1
            }
        };
        self.fun_index.insert(self.functions[fi].pref.id, fi);
        self.rebuild_score_table();
        self.stats.updates += 1;
        self.stats.function_inserts += 1;
        self.restabilize();
        Ok(())
    }

    /// Re-derives the batch-scoring table from the dense function slab. Only
    /// needed when a slot's weights change (construction and function
    /// arrivals, including slot reuse): departures leave their row in place,
    /// and dead rows are filtered out of every scan.
    fn rebuild_score_table(&mut self) {
        let rows: Vec<pref_geom::LinearFunction> = self
            .functions
            .iter()
            .map(|f| f.pref.function.clone())
            .collect();
        self.table = ScoreTable::from_functions(&rows);
    }

    /// A function departs: its pairs are retracted and the freed objects
    /// return to the free pool (in-memory skyline insertion, no I/O), where
    /// the stable loop re-offers them to the remaining functions. Functions
    /// have no index presence, so their dense slot is reclaimed immediately.
    pub fn remove_function(&mut self, id: FunctionId) -> Result<(), EngineError> {
        let fi = match self.fun_index.get(&id) {
            Some(&fi) if self.functions[fi].alive => fi,
            _ => return Err(EngineError::UnknownFunction(id)),
        };
        let mut i = 0;
        while i < self.pairs.len() {
            if self.pairs[i].0 == fi {
                let (_, oi, _) = self.pairs.swap_remove(i);
                self.free_object_slot(oi);
                self.stats.pairs_retracted += 1;
            } else {
                i += 1;
            }
        }
        self.functions[fi].alive = false;
        self.functions[fi].remaining = 0;
        self.fun_index.remove(&id);
        self.free_fun_slots.push(fi);
        self.stats.updates += 1;
        self.stats.function_removes += 1;
        self.restabilize();
        Ok(())
    }

    /// Returns one unit of an object's capacity to the free pool; an object
    /// coming back from full saturation re-enters the maintained skyline
    /// in memory.
    fn free_object_slot(&mut self, oi: usize) {
        self.objects[oi].remaining += 1;
        if self.objects[oi].alive && self.objects[oi].remaining == 1 {
            let data = DataEntry::new(
                self.objects[oi].record.id,
                self.objects[oi].record.point.clone(),
            );
            insert_skyline(&mut self.skyline, data);
        }
    }

    /// Replenishes the free-pool skyline after removing skyline objects,
    /// filtering departed and saturated records out of the candidate stream.
    fn replenish_skyline(&mut self, removed: Vec<pref_skyline::SkylineObject>) {
        let objects = &self.objects;
        let obj_index = &self.obj_index;
        let drop = |r: RecordId| match obj_index.get(&r) {
            Some(&oi) => !objects[oi].alive || objects[oi].remaining == 0,
            None => true,
        };
        update_skyline_filtered(&mut self.tree, &mut self.skyline, removed, &drop);
    }

    /// `true` when the engine was configured with
    /// [`EngineOptions::deferred_compaction`]: its update path never
    /// compacts, and the owner is expected to drain the debt through
    /// [`AssignmentEngine::run_compaction_batch`].
    pub fn compaction_deferred(&self) -> bool {
        self.deferred_compaction
    }

    /// `true` when the tombstone ratio exceeds the configured threshold —
    /// the trigger condition of [`AssignmentEngine::run_compaction_batch`].
    /// Always `false` when compaction is disabled.
    pub fn compaction_due(&self) -> bool {
        match self.compaction_threshold {
            Some(threshold) => {
                !self.tombstones.is_empty()
                    && self.tombstones.len() as f64 > threshold * self.tree.len() as f64
            }
            None => false,
        }
    }

    /// Runs **one** bounded compaction batch if compaction is due, re-sizing
    /// the LRU buffer to the shrunken tree, and returns whether more debt
    /// remains. This is the caller-driven half of
    /// [`EngineOptions::deferred_compaction`]: a background helper calls it
    /// repeatedly between writer batches, holding the engine for only one
    /// batch's worth of work at a time, until it returns `false`. The
    /// physical deletions, pruned-list patches and slot reclamation are the
    /// same code the inline path runs — only the trigger site differs.
    pub fn run_compaction_batch(&mut self) -> bool {
        if !self.compaction_due() {
            return false;
        }
        self.compact_batch();
        self.tree.set_buffer_fraction(self.buffer_fraction);
        self.compaction_due()
    }

    /// Runs incremental compaction while the tombstone ratio exceeds the
    /// configured threshold. Each batch physically deletes up to
    /// [`EngineOptions::compaction_batch`] tombstones; the loop leaves the
    /// ratio at or below the threshold, so the R-tree's record count stays
    /// within `1 / (1 - threshold)` of the live population.
    fn maybe_compact(&mut self) {
        let Some(threshold) = self.compaction_threshold else {
            return;
        };
        let mut compacted = false;
        while !self.tombstones.is_empty()
            && self.tombstones.len() as f64 > threshold * self.tree.len() as f64
        {
            self.compact_batch();
            compacted = true;
        }
        if compacted {
            // the tree shrank: re-derive the LRU buffer from the live pages
            self.tree.set_buffer_fraction(self.buffer_fraction);
        }
    }

    /// Physically deletes one batch of tombstoned records (oldest departures
    /// first). Every deletion's structural effects — freed pages (also
    /// invalidated in the LRU buffer by the paged store), re-inserted
    /// orphans, re-insertion splits and MBR shrinks — are patched into the
    /// skyline's pruned lists, and the records' dense slab slots are
    /// reclaimed. The matching is untouched: tombstones hold no pairs and
    /// are not on the skyline, so no re-stabilization is needed. The caller
    /// re-sizes the LRU buffer once all batches of the trigger have run.
    fn compact_batch(&mut self) {
        let batch = self.compaction_batch.min(self.tombstones.len());
        for _ in 0..batch {
            let oi = self
                .tombstones
                .pop_front()
                // lint: allow(no-unwrap) -- internal invariant: batch size is computed from the queue length
                .expect("batch size is bounded by the queue length");
            let record = self.objects[oi].record.id;
            let point = self.objects[oi].record.point.clone();
            let outcome = self
                .tree
                .delete_tracked(record, &point)
                // lint: allow(no-unwrap) -- internal invariant: a tombstone is created only for resident records
                .expect("tombstoned records are resident in the object tree");
            self.skyline.patch_page_delete(&outcome);
            self.obj_index.remove(&record);
            self.free_obj_slots.push(oi);
            self.stats.physical_deletes += 1;
        }
        self.stats.compaction_batches += 1;
    }

    /// The incremental stable loop: repeatedly finds the highest-scoring
    /// admissible pair — a function with spare capacity or an upgrade over a
    /// side's worst pair — and establishes it, displacing at most one pair on
    /// each side. Every established pair outscores everything it displaces,
    /// so the loop replays the tail of the greedy trace of Section 3 and
    /// terminates with the matching of the batch solvers.
    ///
    /// The best free object per function is read off the maintained skyline
    /// (the free pool's maxima live there); saturated objects are probed
    /// through the current pairs. Neither probe touches the R-tree — the only
    /// I/O in the repair path is `UpdateSkyline` replenishment when a free
    /// object becomes saturated.
    fn restabilize(&mut self) {
        while let Some(best) = self.best_candidate() {
            self.establish(best);
            self.stats.repair_rounds += 1;
        }
    }

    /// Finds the highest-scoring admissible candidate, or `None` when the
    /// matching is stable.
    ///
    /// The scan is columnar: the free-pool skyline and the saturated
    /// displacement targets are mirrored into [`SoaBlock`]s once per round
    /// (reusable buffers, no per-round allocation in steady state) and every
    /// active function batch-scores them through the [`pref_geom::kernel`]
    /// lane kernels — bit-identical to the scalar
    /// `f.pref.function.score(point)` path. When a pool is configured and
    /// the round's work clears [`PARALLEL_WORK_FLOOR`], the active functions
    /// are partitioned across the workers; [`Candidate::beats`] is a strict
    /// total order, so the per-partition maxima merge to the same unique
    /// overall best the serial scan finds, at any thread count.
    fn best_candidate(&mut self) -> Option<Candidate> {
        // per-function admission threshold: -inf with spare capacity,
        // otherwise the function's worst pair score
        let f_threshold = &mut self.repair.f_threshold;
        f_threshold.clear();
        f_threshold.extend(self.functions.iter().map(|f| {
            if f.alive && f.remaining > 0 {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }
        }));
        // per-object worst pair score (saturated slot displacement targets)
        let o_worst = &mut self.repair.o_worst;
        o_worst.clear();
        o_worst.resize(self.objects.len(), f64::INFINITY);
        for &(fi, oi, score) in &self.pairs {
            if f_threshold[fi] > score {
                f_threshold[fi] = score;
            }
            if score < o_worst[oi] {
                o_worst[oi] = score;
            }
        }
        let sky_block = Arc::make_mut(&mut self.repair.sky_block);
        sky_block.clear();
        let sky_ois = Arc::make_mut(&mut self.repair.sky_ois);
        sky_ois.clear();
        for (record, point) in self.skyline.entry_views() {
            sky_block.push_point(point);
            sky_ois.push(
                *self
                    .obj_index
                    .get(&record)
                    // lint: allow(no-unwrap) -- internal invariant: the skyline only yields registered records
                    .expect("skyline records are registered"),
            );
        }
        // Saturated targets only: an object with free capacity is covered by
        // the skyline path without displacing anyone. Dense ascending object
        // order keeps the scan deterministic (`beats` already makes the
        // outcome order-independent — this keeps the build order replayable
        // too).
        let steal_block = Arc::make_mut(&mut self.repair.steal_block);
        steal_block.clear();
        let steal = Arc::make_mut(&mut self.repair.steal);
        steal.clear();
        for (oi, &worst) in o_worst.iter().enumerate() {
            if worst == f64::INFINITY || self.objects[oi].remaining > 0 {
                continue;
            }
            steal_block.push_point(&self.objects[oi].record.point);
            steal.push((oi, worst));
        }
        // functions worth scanning this round
        let active = &mut self.repair.active;
        active.clear();
        for (fi, f) in self.functions.iter().enumerate() {
            if !f.alive {
                continue;
            }
            let threshold = f_threshold[fi];
            if f.remaining == 0 && threshold == f64::INFINITY {
                // dead weight: saturated with no pairs cannot happen, but a
                // function with capacity 0 pairs and no remaining is inert
                continue;
            }
            active.push((fi, threshold));
        }

        let rows = self.repair.sky_ois.len() + self.repair.steal.len();
        let parallel = self.pool.as_ref().filter(|p| {
            p.threads() > 1
                && self.repair.active.len() > 1
                && self.repair.active.len() * rows >= PARALLEL_WORK_FLOOR
        });
        match parallel {
            Some(pool) => {
                let span = self.repair.active.len().div_ceil(pool.threads());
                let jobs: Vec<_> = self
                    .repair
                    .active
                    .chunks(span)
                    .map(|chunk| {
                        let chunk = chunk.to_vec();
                        let sky_block = Arc::clone(&self.repair.sky_block);
                        let sky_ois = Arc::clone(&self.repair.sky_ois);
                        let steal_block = Arc::clone(&self.repair.steal_block);
                        let steal = Arc::clone(&self.repair.steal);
                        let table = self.table.clone();
                        move || {
                            let mut scores: Vec<f64> = Vec::new();
                            let mut best: Option<Candidate> = None;
                            for &(fi, threshold) in &chunk {
                                scan_function(
                                    fi,
                                    threshold,
                                    &table,
                                    &sky_block,
                                    &sky_ois,
                                    &steal_block,
                                    &steal,
                                    &mut scores,
                                    &mut best,
                                );
                            }
                            best
                        }
                    })
                    .collect();
                let mut best: Option<Candidate> = None;
                for cand in pool.run(jobs).into_iter().flatten() {
                    if best.as_ref().is_none_or(|b| cand.beats(b)) {
                        best = Some(cand);
                    }
                }
                best
            }
            None => {
                let mut best: Option<Candidate> = None;
                for &(fi, threshold) in self.repair.active.iter() {
                    scan_function(
                        fi,
                        threshold,
                        &self.table,
                        &self.repair.sky_block,
                        &self.repair.sky_ois,
                        &self.repair.steal_block,
                        &self.repair.steal,
                        &mut self.repair.scores,
                        &mut best,
                    );
                }
                best
            }
        }
    }

    /// Establishes a candidate pair, displacing the necessary worst pairs.
    fn establish(&mut self, cand: Candidate) {
        // make room on the function side
        if self.functions[cand.fi].remaining == 0 {
            let victim = self
                .worst_pair_index(|&(fi, _, _)| fi == cand.fi)
                // lint: allow(no-unwrap) -- internal invariant: a function at capacity has at least one pair
                .expect("saturated function has pairs");
            let (_, oi, _) = self.pairs.swap_remove(victim);
            self.functions[cand.fi].remaining += 1;
            self.free_object_slot(oi);
            self.stats.pairs_retracted += 1;
        }
        // make room on the object side
        if cand.kind == SlotKind::Steal {
            let victim = self
                .worst_pair_index(|&(_, oi, _)| oi == cand.oi)
                // lint: allow(no-unwrap) -- internal invariant: a stolen object is assigned, so it has a pair
                .expect("stolen object has pairs");
            let (fi, _, _) = self.pairs.swap_remove(victim);
            self.functions[fi].remaining += 1;
            self.objects[cand.oi].remaining += 1;
            self.stats.pairs_retracted += 1;
        }
        // establish
        self.functions[cand.fi].remaining -= 1;
        self.objects[cand.oi].remaining -= 1;
        self.pairs.push((cand.fi, cand.oi, cand.score));
        self.stats.pairs_established += 1;
        if self.objects[cand.oi].remaining == 0 {
            let record = self.objects[cand.oi].record.id;
            if let Some(removed) = self.skyline.remove(record) {
                self.replenish_skyline(vec![removed]);
            }
        }
    }

    /// Index of the minimum-score pair among those matching `filter`
    /// (ties: first in pair order, which is deterministic per run).
    fn worst_pair_index(&self, filter: impl Fn(&(usize, usize, f64)) -> bool) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, pair) in self.pairs.iter().enumerate() {
            if !filter(pair) {
                continue;
            }
            if best.is_none_or(|(_, s)| pair.2 < s) {
                best = Some((i, pair.2));
            }
        }
        best.map(|(i, _)| i)
    }
}
