//! The protocol fuzz battery, run against a live server on a real socket.
//!
//! Every test here drives the server through `std::net` sockets exactly as
//! a (possibly hostile) client would: truncated headers, lying length
//! fields — both too short and multi-GiB — corrupted checksums, unknown
//! opcodes and versions, and plain random garbage. The invariant under all
//! of it: the server answers a typed error or drops the connection, never
//! panics, and never allocates beyond the frame cap; afterwards it still
//! serves well-formed traffic.

use pref_assign::{ObjectRecord, PreferenceFunction, Problem};
use pref_geom::{LinearFunction, Point};
use pref_net::frame::{self, Frame};
use pref_net::{NetClient, NetError, Server, ServerConfig, TokenBucketConfig};
use pref_service::{ServiceConfig, ShardedService, UpdateOp};
use std::io::Write;
use std::net::TcpStream;

const TENANT: u64 = 42;

fn problem() -> Problem {
    Problem::new(
        vec![
            PreferenceFunction::new(0, LinearFunction::new(vec![0.8, 0.2]).unwrap()),
            PreferenceFunction::new(1, LinearFunction::new(vec![0.2, 0.8]).unwrap()),
        ],
        vec![
            ObjectRecord::new(0, Point::from_slice(&[0.5, 0.6])),
            ObjectRecord::new(1, Point::from_slice(&[0.2, 0.7])),
            ObjectRecord::new(2, Point::from_slice(&[0.8, 0.2])),
        ],
    )
    .unwrap()
}

/// Every shard gets an identical problem, so any tenant's shard can answer
/// reads for function ids 0/1 and object ids 0/1/2.
fn start_server(shards: usize, service: ServiceConfig, server: ServerConfig) -> Server {
    let problems = (0..shards).map(|_| problem()).collect();
    let service = ShardedService::start(problems, &service).unwrap();
    Server::start(service, &server).unwrap()
}

fn default_server() -> Server {
    start_server(2, ServiceConfig::default(), ServerConfig::default())
}

fn stop(server: Server) {
    server.stop().unwrap().shutdown().unwrap();
}

/// Sends raw bytes on a fresh connection and returns the server's reply
/// frames until it drops the connection (or replies `max` times).
fn send_raw(server: &Server, bytes: &[u8], max_replies: usize) -> Vec<Frame> {
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(bytes).unwrap();
    // half-close our side so a server waiting for the rest of a lying
    // frame sees EOF instead of blocking forever
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut replies = Vec::new();
    while replies.len() < max_replies {
        match frame::read_frame(&mut stream) {
            Ok(reply) => replies.push(reply),
            Err(_) => break,
        }
    }
    replies
}

fn error_code(reply: &Frame) -> u8 {
    assert_eq!(
        reply.opcode,
        frame::OP_ERROR,
        "not an error frame: {reply:?}"
    );
    reply.payload[0]
}

fn encoded(frame_: &Frame) -> Vec<u8> {
    let mut buf = Vec::new();
    frame::encode(frame_, &mut buf);
    buf
}

// ---- the good path (the battery's control group) --------------------------

#[test]
fn ping_stats_and_reads_work_over_the_wire() {
    let server = default_server();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.ping(TENANT).unwrap();
    let stats = client.stats(TENANT).unwrap();
    assert_eq!(stats.live_objects, 6, "2 shards x 3 objects");
    assert_eq!(stats.live_functions, 4);
    let read = client.assignment_of(TENANT, 0).unwrap();
    assert!(read.found);
    assert_eq!(read.pairs.len(), 1, "1-1 matching: one object per function");
    let missing = client.assignment_of(TENANT, 999).unwrap();
    assert!(!missing.found);
    assert!(missing.pairs.is_empty());
    stop(server);
}

#[test]
fn read_your_writes_holds_over_the_network_across_connections() {
    let server = default_server();
    let mut writer = NetClient::connect(server.local_addr()).unwrap();
    // a dominating newcomer: function 0 must be re-assigned to it
    writer
        .update(
            TENANT,
            &[UpdateOp::InsertObject(ObjectRecord::new(
                99,
                Point::from_slice(&[0.99, 0.99]),
            ))],
        )
        .unwrap();
    writer.flush(TENANT).unwrap();
    // the barrier covers OTHER connections to the same tenant/shard too
    let mut reader = NetClient::connect(server.local_addr()).unwrap();
    let read = reader.assignment_of(TENANT, 0).unwrap();
    assert_eq!(read.pairs, vec![(99, read.pairs[0].1)]);
    let back = reader.functions_of(TENANT, 99).unwrap();
    assert!(back.found);
    assert_eq!(back.pairs.len(), 1);
    assert_eq!(back.pairs[0].0, 0);
    stop(server);
}

// ---- semantic failures: typed error, connection survives -------------------

#[test]
fn unknown_opcode_and_version_answer_typed_errors_and_keep_serving() {
    let server = default_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // unknown opcode
    let mut bytes = encoded(&Frame::request(0x7e, TENANT, Vec::new()));
    stream.write_all(&bytes).unwrap();
    let reply = frame::read_frame(&mut stream).unwrap();
    assert_eq!(error_code(&reply), frame::ERR_UNKNOWN_OPCODE);
    // unknown version, same connection
    let mut odd = Frame::request(frame::OP_PING, TENANT, Vec::new());
    odd.ver = 9;
    bytes = encoded(&odd);
    stream.write_all(&bytes).unwrap();
    let reply = frame::read_frame(&mut stream).unwrap();
    assert_eq!(error_code(&reply), frame::ERR_UNKNOWN_VERSION);
    // the same connection still serves a well-formed request
    bytes = encoded(&Frame::request(frame::OP_PING, TENANT, Vec::new()));
    stream.write_all(&bytes).unwrap();
    let reply = frame::read_frame(&mut stream).unwrap();
    assert_eq!(reply.opcode, frame::OP_PING | frame::OP_REPLY);
    stop(server);
}

#[test]
fn bad_payloads_answer_typed_errors_and_keep_serving() {
    let server = default_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // a read wants an 8-byte id; send 3 bytes
    let bytes = encoded(&Frame::request(
        frame::OP_ASSIGNMENT_OF,
        TENANT,
        vec![1, 2, 3],
    ));
    stream.write_all(&bytes).unwrap();
    let reply = frame::read_frame(&mut stream).unwrap();
    assert_eq!(error_code(&reply), frame::ERR_BAD_PAYLOAD);
    // an update batch that does not decode
    let bytes = encoded(&Frame::request(frame::OP_UPDATE, TENANT, vec![0xff; 9]));
    stream.write_all(&bytes).unwrap();
    let reply = frame::read_frame(&mut stream).unwrap();
    assert_eq!(error_code(&reply), frame::ERR_BAD_PAYLOAD);
    // connection still alive
    let bytes = encoded(&Frame::request(frame::OP_PING, TENANT, Vec::new()));
    stream.write_all(&bytes).unwrap();
    assert_eq!(
        frame::read_frame(&mut stream).unwrap().opcode,
        frame::OP_PING | frame::OP_REPLY
    );
    stop(server);
}

// ---- framing failures: typed error, then the connection drops --------------

#[test]
fn truncated_headers_do_not_wedge_the_server() {
    let server = default_server();
    for cut in [0usize, 1, 2, 3, 4, 7, 11] {
        let bytes = encoded(&Frame::request(frame::OP_PING, TENANT, vec![5; 8]));
        let replies = send_raw(&server, &bytes[..cut.min(bytes.len())], 4);
        assert!(replies.is_empty(), "a torn frame got a reply: {replies:?}");
    }
    // the server survived every truncation
    NetClient::connect(server.local_addr())
        .unwrap()
        .ping(TENANT)
        .unwrap();
    stop(server);
}

#[test]
fn lying_length_fields_get_a_typed_error_and_a_dropped_connection() {
    let server = default_server();
    // too small to hold the fixed fields
    for len in [0u32, 1, 17] {
        let replies = send_raw(&server, &len.to_le_bytes(), 4);
        assert_eq!(replies.len(), 1, "len {len}: want exactly one error reply");
        assert_eq!(error_code(&replies[0]), frame::ERR_BAD_FRAME);
    }
    // multi-GiB claims: rejected up front, before any allocation — the
    // reply comes back even though we never send (or have) the bytes
    for len in [frame::MAX_FRAME + 1, 3 << 30, u32::MAX] {
        let replies = send_raw(&server, &len.to_le_bytes(), 4);
        assert_eq!(replies.len(), 1, "len {len}: want exactly one error reply");
        assert_eq!(error_code(&replies[0]), frame::ERR_BAD_FRAME);
    }
    NetClient::connect(server.local_addr())
        .unwrap()
        .ping(TENANT)
        .unwrap();
    stop(server);
}

#[test]
fn corrupted_checksums_get_a_typed_error_and_a_dropped_connection() {
    let server = default_server();
    let clean = encoded(&Frame::request(frame::OP_PING, TENANT, vec![7; 16]));
    // flip one bit in every post-length byte (the len field itself is
    // covered by the lying-length tests)
    for at in 4..clean.len() {
        let mut corrupt = clean.clone();
        corrupt[at] ^= 0x20;
        let replies = send_raw(&server, &corrupt, 4);
        assert_eq!(replies.len(), 1, "flip at {at}: want exactly one reply");
        assert_eq!(error_code(&replies[0]), frame::ERR_BAD_FRAME);
    }
    NetClient::connect(server.local_addr())
        .unwrap()
        .ping(TENANT)
        .unwrap();
    stop(server);
}

#[test]
fn random_garbage_never_panics_or_wedges_the_server() {
    let server = default_server();
    // deterministic xorshift64* garbage
    let mut state = 0x9e37_79b9_97f4_a7c1u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..200 {
        let len = (next() % 64) as usize;
        let blob: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        // the server may reply with errors or just drop; it must not hang
        // this probe (send_raw half-closes, so a partial frame reads EOF)
        let _ = send_raw(&server, &blob, 4);
        // spot-check liveness every few rounds
        if round % 50 == 0 {
            NetClient::connect(server.local_addr())
                .unwrap()
                .ping(TENANT)
                .unwrap();
        }
    }
    NetClient::connect(server.local_addr())
        .unwrap()
        .ping(TENANT)
        .unwrap();
    stop(server);
}

#[test]
fn a_flood_of_short_lived_connections_is_fine() {
    let server = default_server();
    for tenant in 0..64u64 {
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        client.ping(tenant).unwrap();
        // dropped without a goodbye: the server's read sees Closed
    }
    NetClient::connect(server.local_addr())
        .unwrap()
        .ping(TENANT)
        .unwrap();
    stop(server);
}

// ---- admission control ------------------------------------------------------

#[test]
fn rate_limited_tenants_get_the_typed_reject() {
    let server = start_server(
        1,
        ServiceConfig::default(),
        ServerConfig {
            admission: TokenBucketConfig {
                rate_per_sec: 0, // no refill: the burst is the whole budget
                burst: 2,
                slots: 16,
            },
            ..ServerConfig::default()
        },
    );
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let op = || vec![UpdateOp::RemoveObject(pref_rtree::RecordId(12345))];
    client.update(TENANT, &op()).unwrap();
    client.update(TENANT, &op()).unwrap();
    let rejected = client.update(TENANT, &op()).unwrap_err();
    match &rejected {
        NetError::Remote { code, .. } => assert_eq!(*code, frame::ERR_RATE_LIMITED),
        other => panic!("want Remote(ERR_RATE_LIMITED), got {other:?}"),
    }
    assert!(rejected.is_admission_reject());
    // a different tenant slot still has its own budget
    let other_tenant = (0..1024u64)
        .find(|&t| {
            let mut probe = NetClient::connect(server.local_addr()).unwrap();
            probe.update(t, &op()).is_ok()
        })
        .expect("some tenant hashes to a fresh slot");
    assert_ne!(other_tenant, TENANT);
    stop(server);
}

#[test]
fn an_overloaded_shard_rejects_instead_of_blocking_the_handler() {
    // a one-update queue and a writer kept busy by real engine repairs:
    // an open-loop sender must observe ERR_OVERLOADED well within the
    // attempt budget, and the reject must be typed, not a stall or a hang
    let server = start_server(
        1,
        ServiceConfig {
            queue_capacity: 1,
            ..ServiceConfig::default()
        },
        ServerConfig::default(),
    );
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let mut overloaded = 0u32;
    for wave in 0..5_000u64 {
        let base = 1_000 + wave * 16;
        let batch: Vec<UpdateOp> = (0..16)
            .map(|i| {
                UpdateOp::InsertObject(ObjectRecord::new(
                    base + i,
                    Point::from_slice(&[0.3 + (i as f64) * 0.01, 0.4]),
                ))
            })
            .collect();
        match client.update(TENANT, &batch) {
            Ok(()) => {}
            Err(NetError::Remote { code, .. }) if code == frame::ERR_OVERLOADED => {
                overloaded += 1;
                if overloaded >= 3 {
                    break;
                }
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert!(
        overloaded >= 3,
        "admission control never engaged across 5000 waves"
    );
    // the shard is healthy: drain and read
    client.flush(TENANT).unwrap();
    assert!(client.assignment_of(TENANT, 0).unwrap().found);
    stop(server);
}
