//! A blocking client for the front-door protocol.
//!
//! One [`NetClient`] wraps one TCP connection and issues one request at a
//! time (the protocol is strictly request/reply per connection; open more
//! connections for parallelism — that is what the load harness does).

use crate::frame::{self, Frame};
use crate::NetError;
use pref_service::{encode_batch, UpdateOp};
use std::net::{TcpStream, ToSocketAddrs};

/// A snapshot read answered over the network.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentReply {
    /// Version of the snapshot that answered the read.
    pub version: u64,
    /// Whether the queried id was known to the snapshot (an empty
    /// assignment and an unknown id are different answers).
    pub found: bool,
    /// `(counterpart id, score)` pairs, best score first.
    pub pairs: Vec<(u64, f64)>,
}

/// Service-wide counters answered by `OP_STATS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsReply {
    /// Updates submitted to the service so far.
    pub submitted: u64,
    /// Updates processed (applied + rejected) and published.
    pub processed: u64,
    /// Updates the engines rejected.
    pub rejected: u64,
    /// Live objects across shards.
    pub live_objects: u64,
    /// Live preference functions across shards.
    pub live_functions: u64,
    /// Sum of published snapshot versions across shards.
    pub published_versions: u64,
}

/// One blocking connection to a front-door server.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Ok(Self {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self, tenant: u64) -> Result<(), NetError> {
        self.roundtrip(frame::OP_PING, tenant, Vec::new())
            .map(|_| ())
    }

    /// Reads the objects assigned to `function` on `tenant`'s shard.
    pub fn assignment_of(
        &mut self,
        tenant: u64,
        function: u64,
    ) -> Result<AssignmentReply, NetError> {
        let reply = self.roundtrip(
            frame::OP_ASSIGNMENT_OF,
            tenant,
            function.to_le_bytes().to_vec(),
        )?;
        decode_read_reply(&reply)
    }

    /// Reads the functions `object` is assigned to on `tenant`'s shard.
    pub fn functions_of(&mut self, tenant: u64, object: u64) -> Result<AssignmentReply, NetError> {
        let reply = self.roundtrip(
            frame::OP_FUNCTIONS_OF,
            tenant,
            object.to_le_bytes().to_vec(),
        )?;
        decode_read_reply(&reply)
    }

    /// Service-wide stats.
    pub fn stats(&mut self, tenant: u64) -> Result<StatsReply, NetError> {
        let reply = self.roundtrip(frame::OP_STATS, tenant, Vec::new())?;
        if reply.payload.len() != 48 {
            return Err(NetError::UnexpectedReply(format!(
                "stats reply of {} bytes (want 48)",
                reply.payload.len()
            )));
        }
        let word = |at: usize| {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&reply.payload[at * 8..at * 8 + 8]);
            u64::from_le_bytes(bytes)
        };
        Ok(StatsReply {
            submitted: word(0),
            processed: word(1),
            rejected: word(2),
            live_objects: word(3),
            live_functions: word(4),
            published_versions: word(5),
        })
    }

    /// Submits one update batch to `tenant`'s shard. An `Ok` means the
    /// batch passed admission and is *queued*; pair with
    /// [`NetClient::flush`] for a visibility ack. Admission rejects come
    /// back as [`NetError::Remote`] — see [`NetError::is_admission_reject`].
    pub fn update(&mut self, tenant: u64, batch: &[UpdateOp]) -> Result<(), NetError> {
        self.roundtrip(frame::OP_UPDATE, tenant, encode_batch(batch))
            .map(|_| ())
    }

    /// Read-your-writes barrier on `tenant`'s shard: returns once every
    /// update acknowledged before this call is visible to reads after it.
    pub fn flush(&mut self, tenant: u64) -> Result<(), NetError> {
        self.roundtrip(frame::OP_FLUSH, tenant, Vec::new())
            .map(|_| ())
    }

    fn roundtrip(&mut self, opcode: u8, tenant: u64, payload: Vec<u8>) -> Result<Frame, NetError> {
        let request = Frame::request(opcode, tenant, payload);
        frame::write_frame(&mut self.stream, &request)?;
        let reply = frame::read_frame(&mut self.stream)?;
        if reply.opcode == frame::OP_ERROR {
            let (code, message) = match reply.payload.split_first() {
                Some((&code, rest)) => (code, String::from_utf8_lossy(rest).into_owned()),
                None => (0, "empty error payload".to_string()),
            };
            return Err(NetError::Remote { code, message });
        }
        if reply.opcode != opcode | frame::OP_REPLY {
            return Err(NetError::UnexpectedReply(format!(
                "opcode {:#04x} in reply to {opcode:#04x}",
                reply.opcode
            )));
        }
        Ok(reply)
    }
}

/// Decodes `[version][found][count][pairs]` read replies.
fn decode_read_reply(reply: &Frame) -> Result<AssignmentReply, NetError> {
    let payload = &reply.payload;
    if payload.len() < 13 {
        return Err(NetError::UnexpectedReply(format!(
            "read reply of {} bytes (want at least 13)",
            payload.len()
        )));
    }
    let mut version_bytes = [0u8; 8];
    version_bytes.copy_from_slice(&payload[..8]);
    let found = payload[8] != 0;
    let mut count_bytes = [0u8; 4];
    count_bytes.copy_from_slice(&payload[9..13]);
    let count = u32::from_le_bytes(count_bytes) as usize;
    if payload.len() != 13 + count * 16 {
        return Err(NetError::UnexpectedReply(format!(
            "read reply of {} bytes for {count} pairs",
            payload.len()
        )));
    }
    let mut pairs = Vec::with_capacity(count);
    for pair in 0..count {
        let at = 13 + pair * 16;
        let mut id_bytes = [0u8; 8];
        id_bytes.copy_from_slice(&payload[at..at + 8]);
        let mut score_bytes = [0u8; 8];
        score_bytes.copy_from_slice(&payload[at + 8..at + 16]);
        pairs.push((
            u64::from_le_bytes(id_bytes),
            f64::from_bits(u64::from_le_bytes(score_bytes)),
        ));
    }
    Ok(AssignmentReply {
        version: u64::from_le_bytes(version_bytes),
        found,
        pairs,
    })
}
