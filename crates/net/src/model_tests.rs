//! Model-checked scenarios for the admission gate.
//!
//! The token bucket's clock is an *argument* ([`AdmissionGate::admit`]
//! takes `now_nanos`), so every refill schedule — including stalled and
//! out-of-order clock readings handed in by racing connection handlers —
//! is an input the deterministic scheduler can explore, not a wall-clock
//! flake. These tests pin the gate's two concurrency invariants: budgets
//! are conserved under contention, and a clock race can only make the gate
//! stricter, never mint tokens.

use crate::admission::{AdmissionGate, AdmitDecision, TokenBucketConfig};
use pref_sync::model::{self, ModelConfig};
use pref_sync::{thread, AtomicU64, Ordering};
use std::sync::Arc;

fn coverage_floor(cfg: &ModelConfig) -> usize {
    if cfg.iterations >= 1_200 {
        1_000
    } else {
        cfg.iterations / 2
    }
}

fn gate(rate: u64, burst: u64) -> Arc<AdmissionGate> {
    Arc::new(AdmissionGate::new(&TokenBucketConfig {
        rate_per_sec: rate,
        burst,
        slots: 4,
    }))
}

#[test]
fn model_concurrent_admits_conserve_the_budget() {
    let cfg = ModelConfig::new("admission-budget-conservation");
    let report = model::explore(&cfg, || {
        // burst 2, zero refill, three racing spenders of cost 1: exactly
        // two admits in EVERY interleaving — a double-spend (3 admits)
        // or a lost token (1 admit) are both violations
        let gate = gate(0, 2);
        let admitted = Arc::new(AtomicU64::new(0));
        let spenders: Vec<_> = (0..3u64)
            .map(|tenant_bit| {
                let gate = Arc::clone(&gate);
                let admitted = Arc::clone(&admitted);
                thread::spawn(move || {
                    // all tenants collide into one slot (slots=4 but the
                    // same tenant id), sharing one budget on purpose
                    let _ = tenant_bit;
                    if gate.admit(7, 1, 0) == AdmitDecision::Admit {
                        // ordering: relaxed — joined below before the read
                        admitted.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for spender in spenders {
            let _ = spender.join();
        }
        // ordering: relaxed — all spenders joined above
        let total = admitted.load(Ordering::Relaxed);
        model::check(
            total == 2,
            "burst of 2 admits exactly 2 of 3 racing spenders",
        );
    });
    assert!(report.clean(), "violation: {:?}", report.violation);
    assert!(
        report.distinct_interleavings >= coverage_floor(&cfg),
        "only {} distinct interleavings",
        report.distinct_interleavings
    );
}

#[test]
fn model_clock_races_never_mint_tokens() {
    let cfg = ModelConfig::new("admission-clock-race");
    let report = model::explore(&cfg, || {
        // burst 1, rate 1 token/s; one spender reads a late clock (t=1s),
        // the other an early one (t=0) — handlers really do interleave
        // between reading the clock and taking the gate's lock. If the
        // late spender wins the lock, the early one's elapsed time
        // saturates to zero and it is limited (1 admit total). In the
        // other order both admit (the late spender earns the refill).
        // Either way the budget stays within [1, 2] — a clock race can
        // starve a spender, never double-spend.
        let gate = gate(1, 1);
        let admitted = Arc::new(AtomicU64::new(0));
        let spenders: Vec<_> = [1_000_000_000u64, 0u64]
            .into_iter()
            .map(|now| {
                let gate = Arc::clone(&gate);
                let admitted = Arc::clone(&admitted);
                thread::spawn(move || {
                    if gate.admit(3, 1, now) == AdmitDecision::Admit {
                        // ordering: relaxed — joined below before the read
                        admitted.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for spender in spenders {
            let _ = spender.join();
        }
        // ordering: relaxed — all spenders joined above
        let total = admitted.load(Ordering::Relaxed);
        model::check(total >= 1, "someone always gets the initial burst");
        model::check(total <= 2, "a clock race cannot mint more than the refill");
    });
    assert!(report.clean(), "violation: {:?}", report.violation);
}
