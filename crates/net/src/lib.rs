//! The service's front door: a binary wire protocol over TCP.
//!
//! [`pref_service::ShardedService`] serves a process; this crate serves a
//! network. It is deliberately zero-dependency — a hand-rolled
//! length-prefixed binary protocol over blocking `std::net` sockets — so the
//! whole request path from `accept()` to snapshot read is this workspace's
//! own code, testable down to the byte.
//!
//! * **Frames** ([`frame`]) are `[len][ver][opcode][tenant][payload][crc]`
//!   with the same FNV-1a checksum the WAL uses for its records. Length
//!   bounds are enforced *before* allocation and checksums before dispatch:
//!   a lying length field or flipped bit costs a typed error, never a panic
//!   or an unbounded allocation. Framing failures drop the connection
//!   (byte-stream sync is gone); semantic failures — unknown version or
//!   opcode, bad payload — answer a typed error frame and keep serving.
//! * **The server** ([`Server`]) fronts a [`ShardedService`] with one
//!   blocking handler thread per connection. Reads (`assignment_of`,
//!   `functions_of`, `stats`) go through a per-connection
//!   [`pref_service::ServiceReader`] — the zero-lock snapshot path, never
//!   the writer. Updates go through admission control into the bounded
//!   update queue, and a flush round-trip is the read-your-writes barrier:
//!   after a tenant's `OP_FLUSH` reply, its earlier acknowledged updates are
//!   visible to every subsequent read of its shard.
//! * **Admission** ([`admission`]) protects the update path with per-tenant
//!   token buckets (fixed slot table, bounded memory) plus the queue's own
//!   capacity check via `try_submit_batch`: an overloaded shard answers a
//!   typed `ERR_OVERLOADED` reject immediately instead of parking the
//!   connection handler in the queue's backpressure wait. The bucket state
//!   machine takes its clock as an argument, so admission schedules are
//!   model-checkable inputs, not wall-clock flakes.
//!
//! The `tenant` field of every frame is both the rate-limiting identity and
//! the routing key: `shard_of_key(tenant)` picks the shard, so one tenant's
//! reads, updates, and flushes all land on one shard and read-your-writes
//! composes across connections.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
mod client;
pub mod frame;
#[cfg(test)]
mod model_tests;
mod server;

pub use admission::{AdmissionGate, AdmitDecision, TokenBucketConfig};
pub use client::{AssignmentReply, NetClient, StatsReply};
pub use server::{Server, ServerConfig};

use crate::frame::FrameError;

/// Client-visible failure of one request.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed (connect, read, write, reset).
    Io(std::io::Error),
    /// The peer's bytes did not frame or checksum correctly.
    Frame(FrameError),
    /// The server answered a typed error frame; `code` is one of the
    /// `frame::ERR_*` constants.
    Remote {
        /// Error code byte from the reply payload.
        code: u8,
        /// Human-readable cause from the reply payload.
        message: String,
    },
    /// The reply was well-framed but not the shape the request demands
    /// (wrong opcode, truncated body).
    UnexpectedReply(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Frame(e) => write!(f, "framing error: {e}"),
            NetError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            NetError::UnexpectedReply(msg) => write!(f, "unexpected reply: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl NetError {
    /// True when the server rejected the request at the admission gate —
    /// the tenant's token bucket ([`frame::ERR_RATE_LIMITED`]) or the
    /// shard's queue capacity ([`frame::ERR_OVERLOADED`]). These are load
    /// signals, not faults: back off and retry.
    pub fn is_admission_reject(&self) -> bool {
        matches!(
            self,
            NetError::Remote {
                code: frame::ERR_RATE_LIMITED | frame::ERR_OVERLOADED,
                ..
            }
        )
    }
}
