//! The blocking TCP server fronting a [`ShardedService`].
//!
//! One accept-loop thread plus one handler thread per connection, all
//! spawned through the [`pref_sync`] thread shim. Each handler owns a
//! [`ServiceReader`], so every read is served off the zero-lock snapshot
//! path; the writer path is only touched by `OP_UPDATE` (through the
//! admission gate into the bounded queue, never blocking) and `OP_FLUSH`
//! (the read-your-writes barrier, which blocks exactly that connection).
//!
//! Shutdown is cooperative but prompt: [`Server::stop`] raises the stop
//! flag, wakes the accept loop with a loopback connection, shuts down every
//! live connection's socket (which fails the handlers' blocking reads), and
//! joins every thread before handing the [`ShardedService`] back.

use crate::admission::{AdmissionGate, AdmitDecision, TokenBucketConfig};
use crate::frame::{self, Frame};
use crate::NetError;
use pref_assign::FunctionId;
use pref_rtree::RecordId;
use pref_service::{decode_batch, ServiceError, ServiceReader, ShardedService};
use pref_sync::{thread, AtomicU64, Mutex, Ordering};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

/// Server parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; the default `127.0.0.1:0` picks a free loopback port
    /// (read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Admission gate for the update path.
    pub admission: TokenBucketConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            admission: TokenBucketConfig::default(),
        }
    }
}

/// State shared by the accept loop and every connection handler.
struct Shared {
    service: ShardedService,
    gate: AdmissionGate,
    /// 0 = serving, 1 = stopping. The loopback wake connection in
    /// [`Server::stop`] is what actually unblocks the accept loop; the flag
    /// only has to be visible *eventually*, which any ordering gives.
    stopping: AtomicU64,
    /// One `try_clone` of every accepted connection, so `stop` can fail
    /// handlers out of their blocking reads with a socket shutdown.
    conns: Mutex<Vec<TcpStream>>,
}

/// A running front-door server. Dropping it without [`Server::stop`] leaks
/// the listener thread for the process lifetime; tests and binaries should
/// stop it explicitly.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<thread::JoinHandle<Vec<thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds the listener and starts serving `service` on a background
    /// accept loop.
    pub fn start(service: ShardedService, config: &ServerConfig) -> Result<Self, NetError> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            gate: AdmissionGate::new(&config.admission),
            stopping: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("net-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener))?
        };
        Ok(Self {
            shared,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves the `:0` ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains every connection handler, and returns the
    /// fronted service (still running — callers typically `shutdown()` it
    /// next, or keep serving it in-process).
    pub fn stop(mut self) -> Result<ShardedService, NetError> {
        // ordering: relaxed — the loopback connect below synchronizes with
        // the accept loop through the kernel; the flag needs no ordering of
        // its own
        self.shared.stopping.store(1, Ordering::Relaxed);
        // wake the accept loop; if the listener is already gone, so be it
        let _ = TcpStream::connect(self.local_addr);
        let handlers = match self.accept.take() {
            Some(accept) => accept.join().unwrap_or_default(),
            None => Vec::new(),
        };
        // fail every handler out of its blocking read; NotConnected and
        // friends just mean the peer beat us to it
        for conn in self.shared.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for handler in handlers {
            let _ = handler.join();
        }
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => Ok(shared.service),
            Err(_) => Err(NetError::UnexpectedReply(
                "server threads leaked shared state past join".to_string(),
            )),
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) -> Vec<thread::JoinHandle<()>> {
    let mut handlers = Vec::new();
    let mut next_conn = 0u64;
    loop {
        let mut stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                // transient accept failure (EMFILE, aborted handshake):
                // keep serving unless we are stopping
                // ordering: relaxed — see the Shared.stopping field docs
                if shared.stopping.load(Ordering::Relaxed) == 1 {
                    break;
                }
                continue;
            }
        };
        // ordering: relaxed — see the Shared.stopping field docs
        if shared.stopping.load(Ordering::Relaxed) == 1 {
            // this was (or raced with) the stop() wake connection
            break;
        }
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().push(clone);
        }
        let spawned = {
            let shared = Arc::clone(shared);
            thread::Builder::new()
                .name(format!("net-conn-{next_conn}"))
                .spawn(move || {
                    serve_connection(&shared, &mut stream);
                    // the conns registry still holds a try_clone of this
                    // socket (until stop() drains it), so dropping our fd
                    // alone would not send the peer a FIN — shut the
                    // socket itself down
                    let _ = stream.shutdown(Shutdown::Both);
                })
        };
        next_conn += 1;
        if let Ok(handle) = spawned {
            handlers.push(handle);
        }
    }
    handlers
}

/// One connection's request loop: read a frame, dispatch, reply, repeat
/// until the peer hangs up or poisons the framing.
fn serve_connection(shared: &Shared, stream: &mut TcpStream) {
    let mut reader = shared.service.reader();
    loop {
        let request = match frame::read_frame(stream) {
            Ok(request) => request,
            Err(e) if e.poisons_connection() => {
                // answer the typed error so the peer can tell a protocol
                // bug from a network fault, then drop: frame boundaries in
                // this byte stream can no longer be trusted
                let reply = error_frame(0, frame::ERR_BAD_FRAME, &e.to_string());
                let _ = frame::write_frame(stream, &reply);
                return;
            }
            // clean close or transport fault: nothing to say, nobody to say
            // it to
            Err(_) => return,
        };
        let reply = dispatch(shared, &mut reader, &request);
        if frame::write_frame(stream, &reply).is_err() {
            return;
        }
    }
}

/// Routes one well-framed request. Every failure from here on is semantic:
/// the reply is a typed error frame and the connection keeps serving.
fn dispatch(shared: &Shared, reader: &mut ServiceReader, request: &Frame) -> Frame {
    if request.ver != frame::PROTOCOL_VERSION {
        return error_frame(
            request.tenant,
            frame::ERR_UNKNOWN_VERSION,
            &format!(
                "version {} (this server speaks {})",
                request.ver,
                frame::PROTOCOL_VERSION
            ),
        );
    }
    match request.opcode {
        frame::OP_PING => ok_frame(request, Vec::new()),
        frame::OP_ASSIGNMENT_OF | frame::OP_FUNCTIONS_OF => snapshot_read(shared, reader, request),
        frame::OP_STATS => {
            let stats = shared.service.stats();
            let mut payload = Vec::with_capacity(48);
            for word in [
                stats.submitted(),
                stats.processed(),
                stats.rejected(),
                stats.live_objects(),
                stats.live_functions(),
                stats.published_versions(),
            ] {
                payload.extend_from_slice(&word.to_le_bytes());
            }
            ok_frame(request, payload)
        }
        frame::OP_UPDATE => submit_update(shared, request),
        frame::OP_FLUSH => {
            let shard = shared.service.shard_of_key(request.tenant);
            match shared.service.flush_shard(shard) {
                Ok(()) => ok_frame(request, Vec::new()),
                Err(e) => service_error_frame(request.tenant, &e),
            }
        }
        other => error_frame(
            request.tenant,
            frame::ERR_UNKNOWN_OPCODE,
            &format!("opcode {other:#04x}"),
        ),
    }
}

/// `OP_ASSIGNMENT_OF` / `OP_FUNCTIONS_OF`: an 8-byte id payload, answered
/// from the tenant-shard's pinned snapshot as
/// `[version: u64][found: u8][count: u32][(id: u64, score: f64 bits) × count]`.
fn snapshot_read(shared: &Shared, reader: &mut ServiceReader, request: &Frame) -> Frame {
    let id = match <[u8; 8]>::try_from(request.payload.as_slice()) {
        Ok(bytes) => u64::from_le_bytes(bytes),
        Err(_) => {
            return error_frame(
                request.tenant,
                frame::ERR_BAD_PAYLOAD,
                &format!("want an 8-byte id, got {} bytes", request.payload.len()),
            )
        }
    };
    let shard = shared.service.shard_of_key(request.tenant);
    let snapshot = match reader.snapshot(shard) {
        Ok(snapshot) => snapshot,
        Err(e) => return service_error_frame(request.tenant, &e),
    };
    let mut payload = Vec::new();
    payload.extend_from_slice(&snapshot.version().to_le_bytes());
    let pairs: Option<Vec<(u64, f64)>> = if request.opcode == frame::OP_ASSIGNMENT_OF {
        snapshot
            .assignment_of(FunctionId(id as usize))
            .map(|objects| objects.map(|(o, score)| (o.0, score)).collect())
    } else {
        snapshot
            .functions_of(RecordId(id))
            .map(|functions| functions.map(|(f, score)| (f.0 as u64, score)).collect())
    };
    match pairs {
        Some(pairs) => {
            payload.push(1);
            payload.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (id, score) in pairs {
                payload.extend_from_slice(&id.to_le_bytes());
                payload.extend_from_slice(&score.to_bits().to_le_bytes());
            }
        }
        None => {
            payload.push(0);
            payload.extend_from_slice(&0u32.to_le_bytes());
        }
    }
    ok_frame(request, payload)
}

/// `OP_UPDATE`: decode the batch, pass the admission gate (token bucket,
/// then non-blocking queue admission), and ack. The handler never parks in
/// the queue's backpressure wait — an overloaded shard is a typed reject.
fn submit_update(shared: &Shared, request: &Frame) -> Frame {
    let batch = match decode_batch(&request.payload) {
        Ok(batch) => batch,
        Err(e) => {
            return error_frame(
                request.tenant,
                frame::ERR_BAD_PAYLOAD,
                &format!("update batch: {e}"),
            )
        }
    };
    // empty batches (pure publication triggers) still cost one token
    let cost = (batch.len() as u64).max(1);
    let now = pref_sync::time::monotonic_nanos();
    if shared.gate.admit(request.tenant, cost, now) == AdmitDecision::RateLimited {
        return error_frame(
            request.tenant,
            frame::ERR_RATE_LIMITED,
            "tenant update budget exhausted",
        );
    }
    let shard = shared.service.shard_of_key(request.tenant);
    match shared.service.try_submit_batch(shard, batch) {
        Ok(()) => ok_frame(request, Vec::new()),
        Err(ServiceError::Overloaded) => error_frame(
            request.tenant,
            frame::ERR_OVERLOADED,
            "shard update queue at capacity",
        ),
        Err(e) => service_error_frame(request.tenant, &e),
    }
}

fn ok_frame(request: &Frame, payload: Vec<u8>) -> Frame {
    Frame::request(request.opcode | frame::OP_REPLY, request.tenant, payload)
}

fn error_frame(tenant: u64, code: u8, message: &str) -> Frame {
    let mut payload = Vec::with_capacity(1 + message.len());
    payload.push(code);
    payload.extend_from_slice(message.as_bytes());
    Frame::request(frame::OP_ERROR, tenant, payload)
}

fn service_error_frame(tenant: u64, e: &ServiceError) -> Frame {
    let code = match e {
        ServiceError::Overloaded => frame::ERR_OVERLOADED,
        _ => frame::ERR_SERVICE,
    };
    error_frame(tenant, code, &e.to_string())
}
