//! Per-tenant token-bucket rate limiting with an explicit clock.
//!
//! Admission control guards the *update* path: reads are served from
//! immutable snapshots at zero locks and admit unconditionally, but every
//! admitted update claims space in a bounded queue and writer time, so a
//! single hot tenant can starve the fleet. The gate answers one question —
//! "may this tenant spend `cost` updates right now?" — in O(1) under one
//! short lock.
//!
//! Two design rules keep the gate honest:
//!
//! - **The clock is an argument.** Every transition takes `now_nanos`
//!   explicitly; the state machine never reads time itself. Real callers
//!   pass [`pref_sync::time::monotonic_nanos`]; tests and the model checker
//!   pass literals, which makes every refill schedule — including clock
//!   stalls — a deterministic, explorable input rather than a flake source.
//! - **Memory is bounded by construction.** Tenants hash into a fixed slot
//!   table ([`TokenBucketConfig::slots`]); colliding tenants *share* a
//!   budget rather than growing the table. Under adversarial tenant-id
//!   churn the gate stays O(slots) forever — collisions make the gate
//!   slightly stricter, never unbounded.

use pref_sync::Mutex;

/// Gate parameters. Rates are in updates (cost units) per second.
#[derive(Debug, Clone)]
pub struct TokenBucketConfig {
    /// Sustained per-tenant budget, tokens per second.
    pub rate_per_sec: u64,
    /// Burst ceiling: a bucket never holds more than this many tokens.
    pub burst: u64,
    /// Slot-table size; tenants hash here and collisions share a budget.
    pub slots: usize,
}

impl Default for TokenBucketConfig {
    fn default() -> Self {
        Self {
            rate_per_sec: 10_000,
            burst: 20_000,
            slots: 1024,
        }
    }
}

/// One tenant-slot's bucket. Token balances are held in *nano-tokens*
/// (1 token = 10⁹ nano-tokens) so refill arithmetic is exact integer math:
/// `rate_per_sec` tokens/s × `delta` ns = `rate_per_sec × delta`
/// nano-tokens, no division until the admit comparison.
#[derive(Debug, Clone, Copy)]
struct Slot {
    nano_tokens: u64,
    last_refill_nanos: u64,
}

/// What the gate decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// The cost was debited; proceed to the queue.
    Admit,
    /// The tenant's bucket cannot cover the cost; nothing was debited.
    RateLimited,
}

/// The admission gate: a fixed table of token buckets behind one lock.
#[derive(Debug)]
pub struct AdmissionGate {
    slots: Mutex<Vec<Slot>>,
    rate_per_sec: u64,
    burst_nano: u64,
}

const NANOS_PER_TOKEN: u64 = 1_000_000_000;

impl AdmissionGate {
    /// Builds the gate; buckets start full (a fresh tenant gets its burst).
    pub fn new(config: &TokenBucketConfig) -> Self {
        let slots = config.slots.max(1);
        let burst_nano = config.burst.saturating_mul(NANOS_PER_TOKEN);
        Self {
            slots: Mutex::new(vec![
                Slot {
                    nano_tokens: burst_nano,
                    last_refill_nanos: 0,
                };
                slots
            ]),
            rate_per_sec: config.rate_per_sec,
            burst_nano,
        }
    }

    /// Admits or rejects spending `cost` tokens for `tenant` at time
    /// `now_nanos`. Refill happens lazily here: the slot earns
    /// `rate × elapsed` nano-tokens (clamped to the burst ceiling), then
    /// the cost either fits and is debited, or the slot is left untouched.
    /// A `now_nanos` earlier than the slot's last refill (clock handed in
    /// out of order by racing callers) earns zero — never a negative —
    /// refill.
    pub fn admit(&self, tenant: u64, cost: u64, now_nanos: u64) -> AdmitDecision {
        let mut slots = self.slots.lock();
        let at = slot_of(tenant, slots.len());
        let slot = &mut slots[at];
        let elapsed = now_nanos.saturating_sub(slot.last_refill_nanos);
        if elapsed > 0 {
            let earned = (self.rate_per_sec as u128).saturating_mul(elapsed as u128);
            let refilled = (slot.nano_tokens as u128).saturating_add(earned);
            slot.nano_tokens = refilled.min(self.burst_nano as u128) as u64;
            slot.last_refill_nanos = now_nanos;
        }
        let cost_nano = cost.saturating_mul(NANOS_PER_TOKEN);
        if slot.nano_tokens >= cost_nano {
            slot.nano_tokens -= cost_nano;
            AdmitDecision::Admit
        } else {
            AdmitDecision::RateLimited
        }
    }
}

/// Tenant → slot: splitmix64 finalizer then a widening-multiply range
/// reduction — the same unbiased map the service uses for shard routing.
fn slot_of(tenant: u64, slots: usize) -> usize {
    let mut x = tenant.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    ((x as u128 * slots as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(rate: u64, burst: u64) -> AdmissionGate {
        AdmissionGate::new(&TokenBucketConfig {
            rate_per_sec: rate,
            burst,
            slots: 8,
        })
    }

    #[test]
    fn a_fresh_tenant_spends_its_burst_then_is_limited() {
        let gate = gate(1, 3);
        for _ in 0..3 {
            assert_eq!(gate.admit(7, 1, 0), AdmitDecision::Admit);
        }
        assert_eq!(gate.admit(7, 1, 0), AdmitDecision::RateLimited);
    }

    #[test]
    fn refill_is_exact_at_the_token_boundary() {
        let gate = gate(2, 10);
        // drain the burst
        assert_eq!(gate.admit(1, 10, 0), AdmitDecision::Admit);
        // 2 tokens/s: 499_999_999 ns earns strictly less than one token
        assert_eq!(gate.admit(1, 1, 499_999_999), AdmitDecision::RateLimited);
        // ...and the 500_000_000th nanosecond completes it
        assert_eq!(gate.admit(1, 1, 500_000_000), AdmitDecision::Admit);
    }

    #[test]
    fn refill_clamps_at_the_burst_ceiling() {
        let gate = gate(1_000, 5);
        assert_eq!(gate.admit(3, 5, 0), AdmitDecision::Admit);
        // an hour of idle earns far more than 5 tokens — but holds only 5
        let hour = 3_600_000_000_000;
        assert_eq!(gate.admit(3, 5, hour), AdmitDecision::Admit);
        assert_eq!(gate.admit(3, 1, hour), AdmitDecision::RateLimited);
    }

    #[test]
    fn a_rejected_admit_debits_nothing() {
        let gate = gate(1, 4);
        assert_eq!(gate.admit(9, 10, 0), AdmitDecision::RateLimited);
        // the full burst is still there
        assert_eq!(gate.admit(9, 4, 0), AdmitDecision::Admit);
    }

    #[test]
    fn a_stalled_or_rewound_clock_earns_zero_not_negative_refill() {
        let gate = gate(1_000_000, 10);
        assert_eq!(gate.admit(2, 10, 1_000_000), AdmitDecision::Admit);
        // same instant, and an *earlier* instant: no tokens back
        assert_eq!(gate.admit(2, 1, 1_000_000), AdmitDecision::RateLimited);
        assert_eq!(gate.admit(2, 1, 999_999), AdmitDecision::RateLimited);
    }

    #[test]
    fn colliding_tenants_share_one_budget() {
        // slots = 1 forces every tenant into the same bucket
        let gate = AdmissionGate::new(&TokenBucketConfig {
            rate_per_sec: 1,
            burst: 2,
            slots: 1,
        });
        assert_eq!(gate.admit(1, 1, 0), AdmitDecision::Admit);
        assert_eq!(gate.admit(2, 1, 0), AdmitDecision::Admit);
        assert_eq!(gate.admit(3, 1, 0), AdmitDecision::RateLimited);
    }

    #[test]
    fn huge_costs_and_rates_do_not_overflow() {
        let gate = gate(u64::MAX, u64::MAX);
        // burst_nano saturates; a u64::MAX cost also saturates to the same
        // ceiling, so the comparison stays meaningful instead of wrapping
        assert_eq!(gate.admit(5, u64::MAX, u64::MAX), AdmitDecision::Admit);
    }

    #[test]
    fn slot_map_covers_the_table_without_bias_spikes() {
        let slots = 8;
        let mut counts = vec![0u32; slots];
        for tenant in 0..8_000u64 {
            counts[slot_of(tenant, slots)] += 1;
        }
        let share = 8_000 / slots as u32;
        for (slot, &count) in counts.iter().enumerate() {
            assert!(
                (count as i64 - share as i64).unsigned_abs() < share as u64 / 10,
                "slot {slot}: {count} of expected ~{share}"
            );
        }
    }
}
