//! The wire format: length-prefixed, checksummed binary frames.
//!
//! Every message in either direction is one frame:
//!
//! ```text
//! [len: u32 LE][ver: u8][opcode: u8][tenant: u64 LE][payload][crc: u64 LE]
//! ```
//!
//! `len` counts every byte after itself (`ver` through `crc`), so a frame
//! with an empty payload has `len == 18`. `crc` is [`pref_storage::fnv1a64`]
//! over `ver` through the end of the payload — the same checksum the WAL
//! uses for its records, reused so a corrupted frame and a corrupted log
//! record are caught by one code path's worth of arithmetic.
//!
//! Decoding is defensive by construction: `len` is validated against
//! [`MIN_FRAME`] and [`MAX_FRAME`] **before** any allocation, so a lying
//! length field (a 3 GiB `len` on a 50-byte connection) costs a 4-byte read
//! and a typed error, never an allocation. A frame that fails these checks
//! or its checksum is a *transport*-level failure — the peer is not speaking
//! the protocol, and the connection cannot be resynchronized because frame
//! boundaries themselves are now suspect. Unknown versions and opcodes, by
//! contrast, arrive in perfectly framed messages and are *semantic*
//! failures: the server answers a typed error and keeps the connection.

use std::io::{ErrorKind, Read, Write};

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Smallest legal `len`: `ver + opcode + tenant + crc` with no payload.
pub const MIN_FRAME: u32 = 18;

/// Largest legal `len` (1 MiB): bounds the allocation a frame can demand.
pub const MAX_FRAME: u32 = 1 << 20;

// ---- opcodes --------------------------------------------------------------

/// Liveness probe; empty payload, empty [`OP_OK_PING`] reply.
pub const OP_PING: u8 = 0x01;
/// Read the assigned objects of one function; payload is the function id
/// (u64 LE). Routed to the tenant's shard.
pub const OP_ASSIGNMENT_OF: u8 = 0x02;
/// Read the assigned functions of one object; payload is the object id
/// (u64 LE). Routed to the tenant's shard.
pub const OP_FUNCTIONS_OF: u8 = 0x03;
/// Read service-wide aggregated stats; empty payload.
pub const OP_STATS: u8 = 0x04;
/// Submit one update batch ([`pref_service::encode_batch`] payload) to the
/// tenant's shard. Admission-controlled: may be rejected with
/// [`ERR_RATE_LIMITED`] or [`ERR_OVERLOADED`] instead of queueing.
pub const OP_UPDATE: u8 = 0x05;
/// Flush the tenant's shard: the reply is the read-your-writes barrier —
/// every update acknowledged before it is visible to reads after it.
pub const OP_FLUSH: u8 = 0x06;

/// Ok replies echo the request opcode with the high bit set.
pub const OP_REPLY: u8 = 0x80;
/// Error reply: payload is `[code: u8][utf-8 message]`.
pub const OP_ERROR: u8 = 0xFF;

// ---- error reply codes ----------------------------------------------------

/// The frame itself was malformed (bad length, bad checksum): the server
/// answers this and then drops the connection — framing is unrecoverable.
pub const ERR_BAD_FRAME: u8 = 1;
/// The frame's `ver` is not [`PROTOCOL_VERSION`]. Connection survives.
pub const ERR_UNKNOWN_VERSION: u8 = 2;
/// The frame's opcode is not a request this server knows. Connection
/// survives.
pub const ERR_UNKNOWN_OPCODE: u8 = 3;
/// The payload did not decode as the opcode demands. Connection survives.
pub const ERR_BAD_PAYLOAD: u8 = 4;
/// The tenant's token bucket is empty: retry after a backoff.
pub const ERR_RATE_LIMITED: u8 = 5;
/// The shard's update queue is at capacity: the typed reject that replaces
/// blocking the connection handler in the queue's backpressure wait.
pub const ERR_OVERLOADED: u8 = 6;
/// Any other service-level failure (writer crashed, stopped, unknown
/// shard); the message carries the cause.
pub const ERR_SERVICE: u8 = 7;

/// One decoded frame. `ver` is carried through so the dispatch layer can
/// answer [`ERR_UNKNOWN_VERSION`] without the decoder having to guess
/// whether version mismatches are fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version byte as received (sent as [`PROTOCOL_VERSION`]).
    pub ver: u8,
    /// Operation, one of the `OP_*` constants.
    pub opcode: u8,
    /// The tenant issuing the request: the rate-limiting identity **and**
    /// the routing key (`shard_of_key(tenant)` picks the shard).
    pub tenant: u64,
    /// Opcode-specific payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A request frame at the current protocol version.
    pub fn request(opcode: u8, tenant: u64, payload: Vec<u8>) -> Self {
        Self {
            ver: PROTOCOL_VERSION,
            opcode,
            tenant,
            payload,
        }
    }
}

/// Why a frame could not be read. `Closed` (clean EOF between frames) is
/// the normal end of a connection, not a fault.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The transport failed mid-frame (reset, timeout, torn frame at EOF).
    Io(std::io::Error),
    /// `len` claims fewer bytes than the fixed fields occupy.
    TooSmall(u32),
    /// `len` exceeds [`MAX_FRAME`]; rejected before allocating.
    TooLarge(u32),
    /// The checksum over `ver..payload` did not match the trailer.
    BadChecksum {
        /// Checksum recomputed from the received bytes.
        computed: u64,
        /// Checksum the frame carried.
        stored: u64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::TooSmall(len) => {
                write!(f, "frame length {len} below the {MIN_FRAME}-byte minimum")
            }
            FrameError::TooLarge(len) => {
                write!(f, "frame length {len} above the {MAX_FRAME}-byte cap")
            }
            FrameError::BadChecksum { computed, stored } => write!(
                f,
                "frame checksum mismatch: computed {computed:#018x}, stored {stored:#018x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// True for failures that poison the framing itself: after one of
    /// these the byte stream cannot be trusted to contain frame boundaries,
    /// so the server answers [`ERR_BAD_FRAME`] and drops the connection.
    pub fn poisons_connection(&self) -> bool {
        matches!(
            self,
            FrameError::TooSmall(_) | FrameError::TooLarge(_) | FrameError::BadChecksum { .. }
        )
    }
}

/// Appends the encoded frame to `out`.
pub fn encode(frame: &Frame, out: &mut Vec<u8>) {
    let len = MIN_FRAME + frame.payload.len() as u32;
    out.extend_from_slice(&len.to_le_bytes());
    let body_start = out.len();
    out.push(frame.ver);
    out.push(frame.opcode);
    out.extend_from_slice(&frame.tenant.to_le_bytes());
    out.extend_from_slice(&frame.payload);
    let crc = pref_storage::fnv1a64(&out[body_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Writes one frame to `w` (single `write_all`; no partial frames on the
/// wire unless the transport itself tears).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(4 + MIN_FRAME as usize + frame.payload.len());
    encode(frame, &mut buf);
    w.write_all(&buf)
}

/// Reads one frame from `r`, validating length bounds before allocating
/// and the checksum before returning. Does **not** validate `ver` or the
/// opcode — those are semantic concerns for the dispatch layer.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut len_bytes = [0u8; 4];
    read_exact_or_closed(r, &mut len_bytes, true)?;
    let len = u32::from_le_bytes(len_bytes);
    if len < MIN_FRAME {
        return Err(FrameError::TooSmall(len));
    }
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    // allocation is bounded by MAX_FRAME, checked above
    let mut body = vec![0u8; len as usize];
    read_exact_or_closed(r, &mut body, false)?;
    let crc_at = body.len() - 8;
    let mut crc_bytes = [0u8; 8];
    crc_bytes.copy_from_slice(&body[crc_at..]);
    let stored = u64::from_le_bytes(crc_bytes);
    let computed = pref_storage::fnv1a64(&body[..crc_at]);
    if computed != stored {
        return Err(FrameError::BadChecksum { computed, stored });
    }
    let mut tenant_bytes = [0u8; 8];
    tenant_bytes.copy_from_slice(&body[2..10]);
    Ok(Frame {
        ver: body[0],
        opcode: body[1],
        tenant: u64::from_le_bytes(tenant_bytes),
        payload: body[10..crc_at].to_vec(),
    })
}

/// `read_exact` that maps EOF to [`FrameError::Closed`] when it happens at
/// a frame boundary (`clean_eof`), and to [`FrameError::Io`] when it tears
/// a frame mid-read.
fn read_exact_or_closed(
    r: &mut impl Read,
    buf: &mut [u8],
    clean_eof: bool,
) -> Result<(), FrameError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == ErrorKind::UnexpectedEof && clean_eof => Err(FrameError::Closed),
        Err(e) => Err(FrameError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) -> Frame {
        let mut buf = Vec::new();
        encode(frame, &mut buf);
        read_frame(&mut buf.as_slice()).expect("roundtrip decodes")
    }

    #[test]
    fn frames_roundtrip_bit_exactly() {
        for payload in [Vec::new(), vec![0u8], (0..255u8).collect::<Vec<_>>()] {
            let frame = Frame::request(OP_UPDATE, 0xdead_beef_cafe_f00d, payload);
            assert_eq!(roundtrip(&frame), frame);
        }
    }

    #[test]
    fn empty_payload_frame_is_exactly_min_frame_on_the_wire() {
        let mut buf = Vec::new();
        encode(&Frame::request(OP_PING, 7, Vec::new()), &mut buf);
        assert_eq!(buf.len(), 4 + MIN_FRAME as usize);
        assert_eq!(
            u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]),
            MIN_FRAME
        );
    }

    #[test]
    fn lying_small_and_huge_lengths_are_typed_errors_before_allocation() {
        for (len, want_small) in [
            (0u32, true),
            (17, true),
            (MAX_FRAME + 1, false),
            (u32::MAX, false),
        ] {
            let buf = len.to_le_bytes();
            match read_frame(&mut buf.as_slice()) {
                Err(FrameError::TooSmall(got)) => {
                    assert!(want_small, "len {len} misclassified as TooSmall");
                    assert_eq!(got, len);
                }
                Err(FrameError::TooLarge(got)) => {
                    assert!(!want_small, "len {len} misclassified as TooLarge");
                    assert_eq!(got, len);
                }
                other => panic!("len {len}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn a_flipped_bit_anywhere_in_the_body_fails_the_checksum() {
        let mut buf = Vec::new();
        encode(&Frame::request(OP_UPDATE, 42, vec![1, 2, 3]), &mut buf);
        // flip one bit in every body byte position (skip the len prefix and
        // the crc trailer itself: a flipped crc also fails, tested below)
        for at in 4..buf.len() - 8 {
            let mut corrupt = buf.clone();
            corrupt[at] ^= 0x40;
            assert!(
                matches!(
                    read_frame(&mut corrupt.as_slice()),
                    Err(FrameError::BadChecksum { .. })
                ),
                "flip at {at} went undetected"
            );
        }
        let crc_at = buf.len() - 1;
        buf[crc_at] ^= 0x01;
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::BadChecksum { .. })
        ));
    }

    #[test]
    fn truncation_mid_frame_is_io_and_clean_eof_is_closed() {
        let mut buf = Vec::new();
        encode(&Frame::request(OP_PING, 1, vec![9; 16]), &mut buf);
        // every strict prefix (past the len field) tears the frame
        for cut in 4..buf.len() {
            assert!(
                matches!(read_frame(&mut buf[..cut].as_ref()), Err(FrameError::Io(_))),
                "cut at {cut} not an Io error"
            );
        }
        // a cut inside the len prefix — and the empty stream — are Closed
        for cut in 0..4 {
            assert!(
                matches!(
                    read_frame(&mut buf[..cut].as_ref()),
                    Err(FrameError::Closed)
                ),
                "cut at {cut} not Closed"
            );
        }
    }

    #[test]
    fn only_framing_failures_poison_the_connection() {
        assert!(FrameError::TooSmall(3).poisons_connection());
        assert!(FrameError::TooLarge(MAX_FRAME + 1).poisons_connection());
        assert!(FrameError::BadChecksum {
            computed: 1,
            stored: 2
        }
        .poisons_connection());
        assert!(!FrameError::Closed.poisons_connection());
        assert!(
            !FrameError::Io(std::io::Error::new(ErrorKind::UnexpectedEof, "torn"))
                .poisons_connection()
        );
    }

    #[test]
    fn unknown_versions_and_opcodes_still_decode() {
        // semantic validation is the dispatcher's job: the decoder hands
        // these through so the server can answer a typed error in-band
        let mut odd = Frame::request(0x7e, 3, vec![5]);
        odd.ver = 9;
        assert_eq!(roundtrip(&odd), odd);
    }
}
