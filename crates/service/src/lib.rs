//! Snapshot-consistent concurrent serving layer over the assignment engine.
//!
//! [`pref_engine::AssignmentEngine`] repairs a stable matching incrementally,
//! but it is strictly single-threaded: every read contends with the writer.
//! This crate adds the tier that makes the matching *servable* under heavy
//! read traffic, following the architecture production matching systems use —
//! a single-writer repair loop per shard, and any number of readers that
//! never take a lock on the hot path:
//!
//! * **Shards** ([`ShardedService`]) partition the world by a tenant / shard
//!   key. Each shard owns one engine on a dedicated writer thread, fed by a
//!   bounded multi-producer update queue ([`UpdateOp`] batches). There are no
//!   cross-shard transactions: a shard is an independent assignment problem.
//! * **Snapshots** ([`AssignmentSnapshot`]) are immutable and monotonically
//!   versioned. After applying a batch of updates, the writer exports the
//!   engine's state once (compact CSR arrays: function → objects,
//!   object → functions, scores, stats) and publishes it atomically through a
//!   [`SnapshotCell`]. A snapshot is only ever published at a batch boundary,
//!   so readers can never observe a torn (partially applied) batch.
//! * **Readers** ([`SnapshotReader`], [`ServiceReader`]) answer
//!   `assignment_of(function)` / `functions_of(object)` / `stats()` against
//!   their pinned snapshot with zero locks and zero allocation: the hot path
//!   is one atomic version load plus slice indexing. Only when the version
//!   has moved does the reader briefly touch the publication slot to pin the
//!   newer snapshot (an `Arc` clone — still allocation-free). Versions are
//!   strictly monotonic per reader.
//!
//! Writes are acknowledged by a [`ShardedService::flush`] barrier: it returns
//! once every update submitted before the call has been applied *and*
//! published, giving producers read-your-writes on their own shard.
//!
//! With a [`DurabilityConfig`], each shard additionally keeps a write-ahead
//! log and periodic checkpoints on disk (via `pref_storage`'s WAL): every
//! non-empty batch is logged and fsynced *before* it is applied and acked, so
//! the batch is the durability unit exactly as it is the isolation unit.
//! [`ShardedService::recover`] rebuilds every shard from its newest readable
//! checkpoint plus the log tail and lands on the byte-identical canonical
//! matching — see the `durability` module and the README's "Durability"
//! section for the crash-consistency model.
//!
//! All synchronization goes through the [`pref_sync`] shim: zero-cost std
//! passthroughs in normal builds, and — in test builds, which enable the
//! shim's `model` feature — a deterministic model-checking scheduler that the
//! `model_tests` module uses to systematically explore interleavings of the
//! cell/queue/shard protocols and check happens-before invariants on each.
//!
//! # Quick start
//!
//! ```
//! use pref_assign::{FunctionId, ObjectRecord, Problem, PreferenceFunction};
//! use pref_geom::{LinearFunction, Point};
//! use pref_service::{ServiceConfig, ShardedService, UpdateOp};
//!
//! let problem = Problem::new(
//!     vec![
//!         PreferenceFunction::new(0, LinearFunction::new(vec![0.8, 0.2]).unwrap()),
//!         PreferenceFunction::new(1, LinearFunction::new(vec![0.2, 0.8]).unwrap()),
//!     ],
//!     vec![
//!         ObjectRecord::new(0, Point::from_slice(&[0.5, 0.6])),
//!         ObjectRecord::new(1, Point::from_slice(&[0.2, 0.7])),
//!         ObjectRecord::new(2, Point::from_slice(&[0.8, 0.2])),
//!     ],
//! )
//! .unwrap();
//!
//! let service = ShardedService::start(vec![problem], &ServiceConfig::default()).unwrap();
//! let mut reader = service.reader();
//!
//! // a hot new object arrives; flush() is the read-your-writes barrier
//! service
//!     .submit(0, UpdateOp::InsertObject(ObjectRecord::new(3, Point::from_slice(&[0.9, 0.9]))))
//!     .unwrap();
//! service.flush().unwrap();
//!
//! let snapshot = reader.snapshot(0).unwrap();
//! let (object, _score) = snapshot.assignment_of(FunctionId(0)).unwrap().next().unwrap();
//! assert_eq!(object.0, 3); // the newcomer dominates: f0 is re-assigned to it
//! service.shutdown().unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cell;
mod durability;
#[cfg(test)]
mod model_tests;
mod queue;
mod service;
mod shard;
mod snapshot;

pub use cell::{SnapshotCell, SnapshotReader};
pub use durability::{decode_batch, encode_batch, DurabilityConfig, FsyncPolicy, ShardDurability};
pub use queue::UpdateQueue;
pub use service::{ServiceConfig, ServiceReader, ServiceStats, ShardedService};
pub use shard::{FaultEvent, ShardHandle, ShardStats, WriterFault};
pub use snapshot::AssignmentSnapshot;

use pref_engine::EngineError;
use pref_storage::StorageError;

pub use pref_engine::UpdateOp;

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The shard index is out of range.
    UnknownShard(usize),
    /// The service (or the addressed shard's writer) has stopped cleanly:
    /// the queue was closed by shutdown and the writer drained and exited.
    Stopped,
    /// The addressed shard's writer thread panicked. Unlike [`Stopped`],
    /// nothing submitted after the crash will ever be applied — producers
    /// blocked on a full queue are woken with this error instead of hanging
    /// on a drain that can no longer happen.
    ///
    /// [`Stopped`]: ServiceError::Stopped
    WriterCrashed,
    /// A non-blocking submission was refused because the shard's queue is at
    /// capacity. The admission-control path returns this instead of parking
    /// the caller in the queue's backpressure wait.
    Overloaded,
    /// The configuration is invalid (message describes the problem).
    InvalidConfig(String),
    /// Building a shard's engine failed.
    Engine(EngineError),
    /// A durability operation (WAL append/fsync, checkpoint, recovery)
    /// failed; the message carries the storage-level cause.
    Durability(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownShard(shard) => write!(f, "unknown shard {shard}"),
            ServiceError::Stopped => write!(f, "the service has stopped"),
            ServiceError::WriterCrashed => write!(f, "the shard's writer thread crashed"),
            ServiceError::Overloaded => write!(f, "the shard's update queue is at capacity"),
            ServiceError::InvalidConfig(msg) => write!(f, "invalid service config: {msg}"),
            ServiceError::Engine(e) => write!(f, "engine error: {e}"),
            ServiceError::Durability(msg) => write!(f, "durability error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

impl From<StorageError> for ServiceError {
    fn from(e: StorageError) -> Self {
        ServiceError::Durability(e.to_string())
    }
}
