//! The sharded front: routing, flush barriers and aggregated stats.

use crate::cell::SnapshotReader;
use crate::durability::DurabilityConfig;
use crate::shard::{ShardHandle, ShardStats};
use crate::snapshot::AssignmentSnapshot;
use crate::{ServiceError, UpdateOp};
use pref_assign::Problem;
use pref_engine::EngineOptions;
use pref_storage::wal;

/// Configuration of a [`ShardedService`] (applies to every shard).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bound of each shard's update queue, in queued updates. Producers
    /// block (backpressure) when a shard's queue is full.
    pub queue_capacity: usize,
    /// Maximum updates folded into one snapshot publication. Larger batches
    /// amortize export cost under bursts; smaller batches lower the
    /// update-to-visibility latency.
    pub max_batch: usize,
    /// Engine options for every shard's engine.
    pub engine: EngineOptions,
    /// Per-shard durability (WAL + checkpoints under a root directory).
    /// `None` (the default) serves purely in memory, exactly as before.
    pub durability: Option<DurabilityConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            max_batch: 64,
            engine: EngineOptions::default(),
            durability: None,
        }
    }
}

impl ServiceConfig {
    fn validate(&self) -> Result<(), ServiceError> {
        if self.queue_capacity == 0 {
            return Err(ServiceError::InvalidConfig(
                "queue_capacity must be at least 1".into(),
            ));
        }
        if self.max_batch == 0 {
            return Err(ServiceError::InvalidConfig(
                "max_batch must be at least 1".into(),
            ));
        }
        if let Some(durability) = &self.durability {
            durability.validate()?;
        }
        Ok(())
    }
}

/// Aggregated stats of the whole service plus the per-shard breakdown.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
}

impl ServiceStats {
    /// Updates submitted across all shards.
    pub fn submitted(&self) -> u64 {
        self.shards.iter().map(|s| s.submitted).sum()
    }

    /// Updates processed (applied + rejected) across all shards.
    pub fn processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Updates rejected across all shards.
    pub fn rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Live objects across all shards (as of the published snapshots).
    pub fn live_objects(&self) -> u64 {
        self.shards.iter().map(|s| s.engine.live_objects).sum()
    }

    /// Live functions across all shards (as of the published snapshots).
    pub fn live_functions(&self) -> u64 {
        self.shards.iter().map(|s| s.engine.live_functions).sum()
    }

    /// Sum of the published snapshot versions (a coarse progress measure).
    pub fn published_versions(&self) -> u64 {
        self.shards.iter().map(|s| s.published_version).sum()
    }
}

/// The serving front: `N` independent shards, each a single-writer engine
/// with its own queue and snapshot publication.
///
/// Routing is by **shard key**: any `u64` tenant / partition key the caller
/// chooses, mapped onto a shard with [`ShardedService::shard_of_key`].
/// There are no cross-shard transactions and no cross-shard reads — the
/// consistency unit is one shard (read-your-shard after
/// [`ShardedService::flush`]).
#[derive(Debug)]
pub struct ShardedService {
    shards: Vec<ShardHandle>,
}

impl ShardedService {
    /// Starts one shard per initial [`Problem`]: builds each engine,
    /// publishes its version-1 snapshot and spawns its writer thread.
    pub fn start(problems: Vec<Problem>, config: &ServiceConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        if problems.is_empty() {
            return Err(ServiceError::InvalidConfig(
                "a service needs at least one shard".into(),
            ));
        }
        let mut shards = Vec::with_capacity(problems.len());
        for (i, problem) in problems.iter().enumerate() {
            let shard = match &config.durability {
                Some(durability) => ShardHandle::start_durable(
                    problem,
                    &config.engine,
                    config.queue_capacity,
                    config.max_batch,
                    i,
                    &durability.shard_dir(i),
                    durability.fsync,
                    durability.checkpoint_every,
                )?,
                None => ShardHandle::start(
                    problem,
                    &config.engine,
                    config.queue_capacity,
                    config.max_batch,
                    i,
                )?,
            };
            shards.push(shard);
        }
        Ok(Self { shards })
    }

    /// Recovers a durable service from `config.durability.dir`: rediscovers
    /// the `shard-<i>` subdirectories, restores each shard from its newest
    /// valid checkpoint plus log tail, and resumes serving. The recovered
    /// state of every shard equals its pre-crash state at some batch
    /// boundary at or after the last acknowledged flush — never a torn
    /// batch. Versions restart at 1 (readers re-pin on the new cells).
    pub fn recover(config: &ServiceConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        let Some(durability) = &config.durability else {
            return Err(ServiceError::InvalidConfig(
                "recover needs a durability config".into(),
            ));
        };
        let dirs = wal::list_numbered_dirs(&durability.dir, "shard-")?;
        if dirs.is_empty() {
            return Err(ServiceError::Durability(format!(
                "no shard-<i> directories under {}",
                durability.dir.display()
            )));
        }
        for (want, &(found, _)) in dirs.iter().enumerate() {
            if found != want as u64 {
                return Err(ServiceError::Durability(format!(
                    "shard directories under {} are not consecutive: expected shard-{want}, found shard-{found}",
                    durability.dir.display()
                )));
            }
        }
        let mut shards = Vec::with_capacity(dirs.len());
        for (i, (_, dir)) in dirs.iter().enumerate() {
            shards.push(ShardHandle::recover(
                dir,
                &config.engine,
                config.queue_capacity,
                config.max_batch,
                i,
                durability.fsync,
                durability.checkpoint_every,
            )?);
        }
        Ok(Self { shards })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Maps a tenant / shard key onto a shard index.
    pub fn shard_of_key(&self, key: u64) -> usize {
        // splitmix-style finalizer: adjacent tenant keys spread uniformly
        let mut x = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        // widening-multiply range reduction (Lemire): maps the full 64-bit
        // hash onto [0, n) using the *high* bits. The previous `x % n`
        // reduction used only the low bits' residue and carries the classic
        // modulo bias for non-power-of-two shard counts; the multiply is
        // also division-free on the routing hot path.
        ((x as u128 * self.shards.len() as u128) >> 64) as usize
    }

    /// The shard handle at `shard` (e.g. for per-shard readers or stats).
    pub fn shard(&self, shard: usize) -> Result<&ShardHandle, ServiceError> {
        self.shards
            .get(shard)
            .ok_or(ServiceError::UnknownShard(shard))
    }

    /// Submits one update to a shard (blocking on that shard's backpressure).
    pub fn submit(&self, shard: usize, op: UpdateOp) -> Result<(), ServiceError> {
        self.shard(shard)?.submit(op)
    }

    /// Submits a batch to a shard; the batch becomes visible atomically in
    /// one published snapshot.
    pub fn submit_batch(&self, shard: usize, batch: Vec<UpdateOp>) -> Result<(), ServiceError> {
        self.shard(shard)?.submit_batch(batch)
    }

    /// Non-blocking [`ShardedService::submit_batch`]: fails with
    /// [`ServiceError::Overloaded`] instead of parking the caller when the
    /// shard's queue is at capacity (the admission-control entry point).
    pub fn try_submit_batch(&self, shard: usize, batch: Vec<UpdateOp>) -> Result<(), ServiceError> {
        self.shard(shard)?.try_submit_batch(batch)
    }

    /// Blocks until every update submitted (to any shard) before the call
    /// has been applied and published.
    pub fn flush(&self) -> Result<(), ServiceError> {
        for shard in &self.shards {
            shard.flush()?;
        }
        Ok(())
    }

    /// Blocks until one shard has published everything submitted to it.
    pub fn flush_shard(&self, shard: usize) -> Result<(), ServiceError> {
        self.shard(shard)?.flush()
    }

    /// A reader handle spanning every shard (one pinned snapshot per shard).
    pub fn reader(&self) -> ServiceReader {
        ServiceReader {
            readers: self.shards.iter().map(|s| s.reader()).collect(),
        }
    }

    /// Aggregated + per-shard stats as of the latest published snapshots.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            shards: self.shards.iter().map(|s| s.stats()).collect(),
        }
    }

    /// Stops the service: closes every queue, lets the writers drain and
    /// publish their in-flight batches, and joins them. Propagates a writer
    /// panic as [`ServiceError::WriterCrashed`].
    pub fn shutdown(mut self) -> Result<(), ServiceError> {
        for shard in &self.shards {
            shard.close();
        }
        let mut result = Ok(());
        for shard in &mut self.shards {
            if let Err(e) = shard.join() {
                result = Err(e);
            }
        }
        result
    }
}

/// A reader over every shard of a service.
///
/// Each reader thread owns one `ServiceReader`; per shard it behaves exactly
/// like a [`SnapshotReader`] — lock-free revalidation, strictly monotonic
/// versions.
#[derive(Debug)]
pub struct ServiceReader {
    readers: Vec<SnapshotReader>,
}

impl ServiceReader {
    /// Number of shards this reader spans.
    pub fn num_shards(&self) -> usize {
        self.readers.len()
    }

    /// The freshest snapshot of one shard (see [`SnapshotReader::snapshot`]).
    pub fn snapshot(&mut self, shard: usize) -> Result<&AssignmentSnapshot, ServiceError> {
        match self.readers.get_mut(shard) {
            Some(reader) => Ok(reader.snapshot()),
            None => Err(ServiceError::UnknownShard(shard)),
        }
    }

    /// The currently pinned snapshot of one shard, without revalidation.
    pub fn pinned(&self, shard: usize) -> Result<&AssignmentSnapshot, ServiceError> {
        match self.readers.get(shard) {
            Some(reader) => Ok(reader.pinned()),
            None => Err(ServiceError::UnknownShard(shard)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_assign::{FunctionId, ObjectRecord};
    use pref_geom::Point;
    use pref_rtree::RecordId;

    fn problem(seed: usize) -> Problem {
        let functions = pref_datagen::uniform_weight_functions(4, 2, seed as u64);
        let objects = pref_datagen::independent_objects(20, 2, seed as u64 + 100);
        Problem::from_parts(functions, objects).unwrap()
    }

    #[test]
    fn two_shards_are_independent_problems() {
        let service =
            ShardedService::start(vec![problem(1), problem(2)], &ServiceConfig::default()).unwrap();
        assert_eq!(service.num_shards(), 2);
        let mut reader = service.reader();
        assert_eq!(reader.num_shards(), 2);

        // an update to shard 1 never shows on shard 0
        let v0 = reader.snapshot(0).unwrap().version();
        service
            .submit(
                1,
                UpdateOp::InsertObject(ObjectRecord::new(999, Point::from_slice(&[0.9, 0.9]))),
            )
            .unwrap();
        service.flush_shard(1).unwrap();
        assert!(reader.snapshot(1).unwrap().version() > 1);
        assert!(reader
            .snapshot(1)
            .unwrap()
            .objects()
            .iter()
            .any(|o| o.id == RecordId(999)));
        assert_eq!(reader.snapshot(0).unwrap().version(), v0);
        assert!(!reader
            .snapshot(0)
            .unwrap()
            .objects()
            .iter()
            .any(|o| o.id == RecordId(999)));
        service.shutdown().unwrap();
    }

    #[test]
    fn shard_keys_route_deterministically_and_cover_all_shards() {
        let service = ShardedService::start(
            vec![problem(1), problem(2), problem(3)],
            &ServiceConfig::default(),
        )
        .unwrap();
        let mut hit = vec![false; service.num_shards()];
        for key in 0..64u64 {
            let shard = service.shard_of_key(key);
            assert_eq!(shard, service.shard_of_key(key), "routing must be stable");
            assert!(shard < service.num_shards());
            hit[shard] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 keys should cover 3 shards");
        service.shutdown().unwrap();
    }

    #[test]
    fn shard_routing_is_uniform_for_non_power_of_two_shard_counts() {
        // pins the widening-multiply range reduction: for shards ∈ {3, 5, 7}
        // (all non-powers-of-two, where a naive modulo reduction is biased),
        // sequential AND strided tenant keys must land within a tight band
        // around the uniform per-shard share
        for num_shards in [3usize, 5, 7] {
            let problems: Vec<Problem> = (0..num_shards).map(problem).collect();
            let service = ShardedService::start(problems, &ServiceConfig::default()).unwrap();
            for (label, stride) in [("sequential", 1u64), ("strided", 0x9e37_79b9)] {
                const KEYS: u64 = 30_000;
                let mut counts = vec![0u64; num_shards];
                for i in 0..KEYS {
                    counts[service.shard_of_key(i.wrapping_mul(stride))] += 1;
                }
                let expect = KEYS as f64 / num_shards as f64;
                for (shard, &count) in counts.iter().enumerate() {
                    let spread = (count as f64 - expect).abs() / expect;
                    assert!(
                        spread < 0.05,
                        "{label} keys over {num_shards} shards: shard {shard} got {count} \
                         of {KEYS} ({:.1}% off the uniform share)",
                        spread * 100.0
                    );
                }
            }
            service.shutdown().unwrap();
        }
    }

    #[test]
    fn try_submit_rejects_with_overloaded_when_the_queue_is_full() {
        let service = ShardedService::start(
            vec![problem(1)],
            &ServiceConfig {
                queue_capacity: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        // wedge the writer behind a storm of batches until a try_submit
        // bounces; the blocking path would park here, the try path must not
        let mut saw_overloaded = false;
        for _ in 0..10_000 {
            match service.try_submit_batch(0, vec![UpdateOp::RemoveObject(RecordId(999))]) {
                Ok(()) => {}
                Err(ServiceError::Overloaded) => {
                    saw_overloaded = true;
                    break;
                }
                Err(e) => panic!("only Overloaded is a legal try_submit rejection, got {e}"),
            }
        }
        assert!(
            saw_overloaded,
            "10k instant submissions against a capacity-2 queue never bounced"
        );
        // the reject is non-destructive: the shard keeps serving
        service.flush().unwrap();
        service
            .submit(0, UpdateOp::RemoveFunction(FunctionId(0)))
            .unwrap();
        service.flush().unwrap();
        service.shutdown().unwrap();
    }

    #[test]
    fn aggregate_stats_sum_over_shards() {
        let service =
            ShardedService::start(vec![problem(1), problem(2)], &ServiceConfig::default()).unwrap();
        service
            .submit(0, UpdateOp::RemoveFunction(FunctionId(0)))
            .unwrap();
        service
            .submit(1, UpdateOp::RemoveFunction(FunctionId(1)))
            .unwrap();
        service
            .submit(1, UpdateOp::RemoveFunction(FunctionId(777))) // rejected
            .unwrap();
        service.flush().unwrap();
        let stats = service.stats();
        assert_eq!(stats.shards.len(), 2);
        assert_eq!(stats.submitted(), 3);
        assert_eq!(stats.processed(), 3);
        assert_eq!(stats.rejected(), 1);
        assert_eq!(stats.live_functions(), 3 + 3);
        assert_eq!(stats.live_objects(), 40);
        assert!(stats.published_versions() >= 2 + 2);
        service.shutdown().unwrap();
    }

    #[test]
    fn invalid_configs_and_shards_are_rejected() {
        assert!(matches!(
            ShardedService::start(vec![], &ServiceConfig::default()),
            Err(ServiceError::InvalidConfig(_))
        ));
        assert!(matches!(
            ShardedService::start(
                vec![problem(1)],
                &ServiceConfig {
                    queue_capacity: 0,
                    ..ServiceConfig::default()
                }
            ),
            Err(ServiceError::InvalidConfig(_))
        ));
        assert!(matches!(
            ShardedService::start(
                vec![problem(1)],
                &ServiceConfig {
                    max_batch: 0,
                    ..ServiceConfig::default()
                }
            ),
            Err(ServiceError::InvalidConfig(_))
        ));
        let service = ShardedService::start(vec![problem(1)], &ServiceConfig::default()).unwrap();
        assert_eq!(
            service.submit(5, UpdateOp::RemoveObject(RecordId(0))),
            Err(ServiceError::UnknownShard(5))
        );
        assert!(matches!(
            service.reader().pinned(9),
            Err(ServiceError::UnknownShard(9))
        ));
        service.shutdown().unwrap();
    }
}
