//! Per-shard durability: a write-ahead log of update batches plus periodic
//! checkpoints, built on the file primitives of [`pref_storage::wal`].
//!
//! The crash-consistency model mirrors the serving layer's atomicity unit —
//! the batch. The writer appends one WAL record per submitted batch, makes it
//! durable per the [`FsyncPolicy`], and only then applies and publishes it;
//! an acknowledged (flushed) batch is therefore always recoverable. Recovery
//! loads the newest valid checkpoint and replays the log tail through a fresh
//! engine; because the engine re-solves deterministically from any coherent
//! population, the recovered shard publishes the same canonical matching the
//! pre-crash shard had at that batch boundary.
//!
//! All file access goes through [`pref_storage::wal`] — this module encodes
//! and decodes payloads but never opens a file itself, keeping raw
//! `std::fs` usage confined to the storage crate (enforced by the repo's
//! `no-raw-fs` lint).

use crate::UpdateOp;
use pref_assign::{FunctionId, ObjectRecord, PreferenceFunction};
use pref_geom::{LinearFunction, Point};
use pref_rtree::RecordId;
use pref_storage::wal::{self, SegmentTail, WalWriter};
use pref_storage::StorageError;
use std::path::{Path, PathBuf};

/// When the WAL is fsynced relative to batch acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync before every publication (default): an acknowledged batch is
    /// always durable. Strongest guarantee, one `fdatasync` per publication.
    Always,
    /// Fsync once every `n` logged batches (group commit): a crash can lose
    /// up to `n - 1` acknowledged batches, never a torn one.
    EveryN(u32),
    /// Never fsync from the writer (the OS flushes lazily): cheapest, loses
    /// recently acknowledged batches on a power failure, still never a torn
    /// batch thanks to the record checksums.
    Never,
}

/// Durability configuration of a [`crate::ShardedService`].
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root directory of the service's durable state; shard `i` owns the
    /// subdirectory `shard-<i>`.
    pub dir: PathBuf,
    /// When the WAL is fsynced relative to acknowledgement.
    pub fsync: FsyncPolicy,
    /// Checkpoint (and rotate the log) every this many logged batches.
    pub checkpoint_every: u64,
}

impl DurabilityConfig {
    /// Durability under `dir` with the safe defaults: fsync on every
    /// publication, checkpoint every 256 logged batches.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            checkpoint_every: 256,
        }
    }

    pub(crate) fn validate(&self) -> Result<(), crate::ServiceError> {
        if self.checkpoint_every == 0 {
            return Err(crate::ServiceError::InvalidConfig(
                "checkpoint_every must be at least 1".into(),
            ));
        }
        if let FsyncPolicy::EveryN(0) = self.fsync {
            return Err(crate::ServiceError::InvalidConfig(
                "FsyncPolicy::EveryN needs n >= 1".into(),
            ));
        }
        Ok(())
    }

    /// The directory one shard's generations live in.
    pub(crate) fn shard_dir(&self, shard_index: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard_index}"))
    }
}

// --- payload codecs -------------------------------------------------------
//
// Hand-rolled little-endian binary layouts (no serde: WAL payloads are
// checksummed byte streams, and bit-exact f64 round-trips are mandatory —
// a recovered weight that differs in the last ulp could flip a matching).

const TAG_INSERT_OBJECT: u8 = 0;
const TAG_REMOVE_OBJECT: u8 = 1;
const TAG_INSERT_FUNCTION: u8 = 2;
const TAG_REMOVE_FUNCTION: u8 = 3;

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        let out = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or_else(|| StorageError::Corrupt("durability payload truncated".into()))?;
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, StorageError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, StorageError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, StorageError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn done(&self) -> Result<(), StorageError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(StorageError::Corrupt(
                "trailing bytes after durability payload".into(),
            ))
        }
    }
}

fn encode_object(o: &ObjectRecord, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&o.id.raw().to_le_bytes());
    buf.extend_from_slice(&o.capacity.to_le_bytes());
    buf.extend_from_slice(&(o.point.dims() as u16).to_le_bytes());
    for &c in o.point.coords() {
        buf.extend_from_slice(&c.to_bits().to_le_bytes());
    }
}

fn decode_object(r: &mut Cursor<'_>) -> Result<ObjectRecord, StorageError> {
    let id = r.u64()?;
    let capacity = r.u32()?;
    let dims = r.u16()? as usize;
    let coords = r.f64s(dims)?;
    Ok(ObjectRecord {
        id: RecordId(id),
        point: Point::from_slice(&coords),
        capacity,
    })
}

fn encode_function(f: &PreferenceFunction, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(f.id.0 as u64).to_le_bytes());
    buf.extend_from_slice(&f.capacity.to_le_bytes());
    buf.extend_from_slice(&f.function.priority().to_bits().to_le_bytes());
    buf.extend_from_slice(&(f.function.dims() as u16).to_le_bytes());
    for &w in f.function.weights() {
        buf.extend_from_slice(&w.to_bits().to_le_bytes());
    }
}

fn decode_function(r: &mut Cursor<'_>) -> Result<PreferenceFunction, StorageError> {
    let id = r.u64()?;
    let capacity = r.u32()?;
    let priority = r.f64()?;
    let dims = r.u16()? as usize;
    let weights = r.f64s(dims)?;
    let function = LinearFunction::from_normalized(weights)
        .and_then(|f| f.prioritized(priority))
        .map_err(|e| StorageError::Corrupt(format!("invalid logged function: {e}")))?;
    Ok(PreferenceFunction {
        id: FunctionId(id as usize),
        function,
        capacity,
    })
}

/// Encodes one update batch as a checksummed binary payload — the layout
/// shared by WAL records and the wire protocol's `Update` frames (tagged
/// little-endian ops, bit-exact f64 round-trips).
pub fn encode_batch(batch: &[UpdateOp]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + batch.len() * 16);
    buf.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for op in batch {
        match op {
            UpdateOp::InsertObject(o) => {
                buf.push(TAG_INSERT_OBJECT);
                encode_object(o, &mut buf);
            }
            UpdateOp::RemoveObject(id) => {
                buf.push(TAG_REMOVE_OBJECT);
                buf.extend_from_slice(&id.raw().to_le_bytes());
            }
            UpdateOp::InsertFunction(f) => {
                buf.push(TAG_INSERT_FUNCTION);
                encode_function(f, &mut buf);
            }
            UpdateOp::RemoveFunction(id) => {
                buf.push(TAG_REMOVE_FUNCTION);
                buf.extend_from_slice(&(id.0 as u64).to_le_bytes());
            }
        }
    }
    buf
}

/// Decodes an [`encode_batch`] payload back into an update batch. Strict:
/// truncation, unknown op tags and trailing bytes are all errors.
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<UpdateOp>, StorageError> {
    let mut r = Cursor::new(bytes);
    let count = r.u32()? as usize;
    // the count is untrusted input (WAL corruption, hostile wire frames):
    // cap the preallocation by what the bytes could possibly hold (the
    // smallest op is a 9-byte remove) and let the strict reads below
    // surface the truncation as an error instead of an allocation
    let smallest_op = 9;
    let mut out = Vec::with_capacity(count.min(bytes.len() / smallest_op + 1));
    for _ in 0..count {
        let op = match r.u8()? {
            TAG_INSERT_OBJECT => UpdateOp::InsertObject(decode_object(&mut r)?),
            TAG_REMOVE_OBJECT => UpdateOp::RemoveObject(RecordId(r.u64()?)),
            TAG_INSERT_FUNCTION => UpdateOp::InsertFunction(decode_function(&mut r)?),
            TAG_REMOVE_FUNCTION => UpdateOp::RemoveFunction(FunctionId(r.u64()? as usize)),
            tag => {
                return Err(StorageError::Corrupt(format!(
                    "unknown update-op tag {tag} in logged batch"
                )))
            }
        };
        out.push(op);
    }
    r.done()?;
    Ok(out)
}

/// Encodes a checkpoint payload: the live populations, from which the engine
/// re-solves the identical canonical matching on restore. The pairs are
/// deliberately not stored — restart equivalence is a tested engine property.
pub(crate) fn encode_checkpoint(
    functions: &[PreferenceFunction],
    objects: &[ObjectRecord],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + functions.len() * 32 + objects.len() * 32);
    buf.extend_from_slice(&(functions.len() as u32).to_le_bytes());
    for f in functions {
        encode_function(f, &mut buf);
    }
    buf.extend_from_slice(&(objects.len() as u32).to_le_bytes());
    for o in objects {
        encode_object(o, &mut buf);
    }
    buf
}

/// Decodes a checkpoint payload back into its populations.
pub(crate) fn decode_checkpoint(
    bytes: &[u8],
) -> Result<(Vec<PreferenceFunction>, Vec<ObjectRecord>), StorageError> {
    let mut r = Cursor::new(bytes);
    let nfun = r.u32()? as usize;
    let mut functions = Vec::with_capacity(nfun);
    for _ in 0..nfun {
        functions.push(decode_function(&mut r)?);
    }
    let nobj = r.u32()? as usize;
    let mut objects = Vec::with_capacity(nobj);
    for _ in 0..nobj {
        objects.push(decode_object(&mut r)?);
    }
    r.done()?;
    Ok((functions, objects))
}

// --- the per-shard durability state ---------------------------------------

/// One shard's durable state: the active WAL segment plus the checkpoint
/// rotation bookkeeping. Owned by the shard's writer thread.
#[derive(Debug)]
pub struct ShardDurability {
    dir: PathBuf,
    writer: WalWriter,
    fsync: FsyncPolicy,
    checkpoint_every: u64,
    /// Sequence the newest checkpoint was taken at (= its segment's start).
    last_checkpoint_seq: u64,
    /// Batches appended since the last fsync (drives [`FsyncPolicy::EveryN`]).
    unsynced: u32,
}

impl ShardDurability {
    /// Initializes a fresh shard directory: the `wal-0` segment first, then
    /// `checkpoint-0` holding the initial populations (the same crash-safe
    /// segment-before-checkpoint order rotation uses, so recovery always
    /// finds a checkpoint's segment).
    pub fn create(
        dir: &Path,
        fsync: FsyncPolicy,
        checkpoint_every: u64,
        functions: &[PreferenceFunction],
        objects: &[ObjectRecord],
    ) -> Result<Self, StorageError> {
        wal::ensure_dir(dir)?;
        let writer = WalWriter::create(dir, 0)?;
        wal::write_checkpoint(dir, 0, &encode_checkpoint(functions, objects))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            writer,
            fsync,
            checkpoint_every,
            last_checkpoint_seq: 0,
            unsynced: 0,
        })
    }

    /// Recovers a shard directory: returns the checkpoint populations, the
    /// replayable batches logged after it, and a `ShardDurability` positioned
    /// to append right after the last whole record (any torn tail truncated,
    /// unreachable newer generations collected).
    pub fn recover(
        dir: &Path,
        fsync: FsyncPolicy,
        checkpoint_every: u64,
    ) -> Result<RecoveredShard, StorageError> {
        let state = wal::recover_dir(dir)?;
        let (functions, objects) = decode_checkpoint(&state.checkpoint)?;
        let mut batches = Vec::with_capacity(state.records.len());
        for (_seq, payload) in &state.records {
            batches.push(decode_batch(payload)?);
        }
        let writer = Self::reopen_active(dir, &state)?;
        // recovery re-declares the durable truth: newer files it deliberately
        // bypassed (corrupt checkpoints, segments beyond a torn tail) must
        // not stop a later replay at a stale boundary
        wal::remove_unreachable_generations(dir, state.checkpoint_seq, state.active_start_seq);
        Ok(RecoveredShard {
            functions,
            objects,
            batches,
            durability: Self {
                dir: dir.to_path_buf(),
                writer,
                fsync,
                checkpoint_every,
                last_checkpoint_seq: state.checkpoint_seq,
                unsynced: 0,
            },
        })
    }

    fn reopen_active(dir: &Path, state: &wal::RecoveredState) -> Result<WalWriter, StorageError> {
        let tail: &SegmentTail = &state.active_tail;
        WalWriter::open_after_recovery(dir, state.active_start_seq, tail)
    }

    /// Appends one batch to the WAL (durable per policy only after
    /// [`ShardDurability::sync_for_ack`]). Returns the record's sequence.
    pub fn log_batch(&mut self, batch: &[UpdateOp]) -> Result<u64, StorageError> {
        let seq = self.writer.append(&encode_batch(batch))?;
        self.unsynced += 1;
        Ok(seq)
    }

    /// Makes logged batches durable per the configured [`FsyncPolicy`].
    /// Called by the writer after logging a publication's batches and before
    /// applying them, so an acknowledged batch is recoverable.
    pub fn sync_for_ack(&mut self) -> Result<(), StorageError> {
        let due = match self.fsync {
            FsyncPolicy::Always => self.unsynced > 0,
            FsyncPolicy::EveryN(n) => self.unsynced >= n,
            FsyncPolicy::Never => false,
        };
        if due {
            self.writer.sync()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Rotates to a new generation when enough batches accumulated since the
    /// last checkpoint: fsync the log, create the next segment, write the
    /// checkpoint, collect generations older than the previous one. Skipped
    /// while a population is empty (an engine cannot restore from an empty
    /// problem; the log keeps the full history until the populations refill).
    /// Returns the new checkpoint's sequence when one was written.
    pub fn maybe_checkpoint(
        &mut self,
        functions: &[PreferenceFunction],
        objects: &[ObjectRecord],
    ) -> Result<Option<u64>, StorageError> {
        let next_seq = self.writer.next_seq();
        if next_seq - self.last_checkpoint_seq < self.checkpoint_every {
            return Ok(None);
        }
        if functions.is_empty() || objects.is_empty() {
            return Ok(None);
        }
        // every record the new checkpoint subsumes must be durable before
        // the old generation becomes collectible
        self.writer.sync()?;
        self.unsynced = 0;
        let previous = self.last_checkpoint_seq;
        self.writer = WalWriter::create(&self.dir, next_seq)?;
        wal::write_checkpoint(&self.dir, next_seq, &encode_checkpoint(functions, objects))?;
        wal::remove_generations_before(&self.dir, previous);
        self.last_checkpoint_seq = next_seq;
        Ok(Some(next_seq))
    }

    /// Sequence number of the newest checkpoint.
    pub fn last_checkpoint_seq(&self) -> u64 {
        self.last_checkpoint_seq
    }

    /// Sequence number the next logged batch will get.
    pub fn next_seq(&self) -> u64 {
        self.writer.next_seq()
    }

    /// The shard's durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// What [`ShardDurability::recover`] reconstructs from a shard directory.
#[derive(Debug)]
pub struct RecoveredShard {
    /// Functions of the recovered checkpoint.
    pub functions: Vec<PreferenceFunction>,
    /// Objects of the recovered checkpoint.
    pub objects: Vec<ObjectRecord>,
    /// Whole batches logged after the checkpoint, in log order.
    pub batches: Vec<Vec<UpdateOp>>,
    /// The durability state, positioned to append after the recovered tail.
    pub durability: ShardDurability,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "pref_service_durability_{}_{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&p); // lint: allow(no-raw-fs) -- test scaffolding cleanup
        p
    }

    fn functions() -> Vec<PreferenceFunction> {
        vec![
            PreferenceFunction {
                id: FunctionId(3),
                function: LinearFunction::from_normalized(vec![0.25, 0.75])
                    .unwrap()
                    .prioritized(2.5)
                    .unwrap(),
                capacity: 4,
            },
            PreferenceFunction::new(9, LinearFunction::new(vec![1.0, 3.0]).unwrap()),
        ]
    }

    fn objects() -> Vec<ObjectRecord> {
        vec![
            ObjectRecord {
                id: RecordId(7),
                point: Point::from_slice(&[0.125, 1.0 / 3.0]),
                capacity: 2,
            },
            ObjectRecord::new(u64::MAX, Point::from_slice(&[f64::MIN_POSITIVE, 0.0])),
        ]
    }

    fn batch() -> Vec<UpdateOp> {
        vec![
            UpdateOp::InsertObject(objects()[0].clone()),
            UpdateOp::RemoveObject(RecordId(42)),
            UpdateOp::InsertFunction(functions()[0].clone()),
            UpdateOp::RemoveFunction(FunctionId(11)),
        ]
    }

    #[test]
    fn batch_codec_roundtrips_bit_exactly() {
        let b = batch();
        assert_eq!(decode_batch(&encode_batch(&b)).unwrap(), b);
        assert_eq!(decode_batch(&encode_batch(&[])).unwrap(), vec![]);
    }

    #[test]
    fn batch_decode_rejects_garbage() {
        let bytes = encode_batch(&batch());
        for cut in 0..bytes.len() {
            assert!(decode_batch(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_batch(&trailing).is_err());
        let mut bad_tag = bytes;
        bad_tag[4] = 200;
        assert!(decode_batch(&bad_tag).is_err());
    }

    #[test]
    fn checkpoint_codec_roundtrips() {
        let payload = encode_checkpoint(&functions(), &objects());
        let (f, o) = decode_checkpoint(&payload).unwrap();
        assert_eq!(f, functions());
        assert_eq!(o, objects());
        // empty populations are representable (recovery-side guardrails
        // decide what to do with them)
        let (f, o) = decode_checkpoint(&encode_checkpoint(&[], &[])).unwrap();
        assert!(f.is_empty() && o.is_empty());
    }

    #[test]
    fn create_log_recover_roundtrips() {
        let dir = temp_dir("roundtrip");
        let mut d =
            ShardDurability::create(&dir, FsyncPolicy::Always, 100, &functions(), &objects())
                .unwrap();
        assert_eq!(d.log_batch(&batch()).unwrap(), 0);
        assert_eq!(d.log_batch(&[]).unwrap(), 1);
        d.sync_for_ack().unwrap();
        drop(d);

        let rec = ShardDurability::recover(&dir, FsyncPolicy::Always, 100).unwrap();
        assert_eq!(rec.functions, functions());
        assert_eq!(rec.objects, objects());
        assert_eq!(rec.batches, vec![batch(), vec![]]);
        assert_eq!(rec.durability.next_seq(), 2);
        assert_eq!(rec.durability.last_checkpoint_seq(), 0);
        std::fs::remove_dir_all(&dir).ok(); // lint: allow(no-raw-fs) -- test scaffolding cleanup
    }

    #[test]
    fn rotation_checkpoints_and_keeps_one_fallback_generation() {
        let dir = temp_dir("rotate");
        let mut d = ShardDurability::create(&dir, FsyncPolicy::Always, 2, &functions(), &objects())
            .unwrap();
        for _ in 0..2 {
            d.log_batch(&batch()).unwrap();
            d.sync_for_ack().unwrap();
        }
        assert_eq!(
            d.maybe_checkpoint(&functions(), &objects()).unwrap(),
            Some(2)
        );
        for _ in 0..2 {
            d.log_batch(&batch()).unwrap();
            d.sync_for_ack().unwrap();
        }
        assert_eq!(
            d.maybe_checkpoint(&functions(), &objects()).unwrap(),
            Some(4)
        );
        // generation 0 was collected, generation 2 kept as fallback
        let ckpts: Vec<u64> = wal::list_checkpoints(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(ckpts, vec![2, 4]);
        d.log_batch(&batch()).unwrap();
        d.sync_for_ack().unwrap();
        drop(d);
        let rec = ShardDurability::recover(&dir, FsyncPolicy::Always, 2).unwrap();
        assert_eq!(rec.durability.last_checkpoint_seq(), 4);
        assert_eq!(rec.batches.len(), 1);
        assert_eq!(rec.durability.next_seq(), 5);
        std::fs::remove_dir_all(&dir).ok(); // lint: allow(no-raw-fs) -- test scaffolding cleanup
    }

    #[test]
    fn checkpoints_skip_empty_populations() {
        let dir = temp_dir("empty_pop");
        let mut d =
            ShardDurability::create(&dir, FsyncPolicy::Never, 1, &functions(), &objects()).unwrap();
        d.log_batch(&batch()).unwrap();
        assert_eq!(d.maybe_checkpoint(&[], &objects()).unwrap(), None);
        assert_eq!(d.maybe_checkpoint(&functions(), &[]).unwrap(), None);
        // not due yet counts before emptiness: nothing logged since
        assert_eq!(
            d.maybe_checkpoint(&functions(), &objects()).unwrap(),
            Some(1)
        );
        std::fs::remove_dir_all(&dir).ok(); // lint: allow(no-raw-fs) -- test scaffolding cleanup
    }
}
