//! The bounded multi-producer update queue feeding a shard's writer thread.

use crate::{ServiceError, UpdateOp};
use pref_sync::{Condvar, Mutex};
use std::collections::VecDeque;

/// A bounded blocking queue of update **batches**.
///
/// Producers enqueue whole batches ([`UpdateQueue::push`], blocking while the
/// queue is over capacity); the shard's writer drains them
/// ([`UpdateQueue::pop`], blocking while empty). Batches are the atomicity
/// unit of the serving tier: the writer never publishes a snapshot in the
/// middle of a batch, so a batch submitted together becomes visible
/// together.
///
/// Capacity is counted in *updates* (summed batch lengths), which is what
/// actually bounds memory and writer lag. A single batch larger than the
/// whole capacity is still accepted — once the queue is empty — so oversized
/// batches degrade to a stop-and-go handoff instead of deadlocking.
#[derive(Debug)]
pub struct UpdateQueue {
    state: Mutex<QueueState>,
    /// Signalled when batches are enqueued or the queue closes.
    not_empty: Condvar,
    /// Signalled when the writer drains batches or the queue closes.
    not_full: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueState {
    batches: VecDeque<Vec<UpdateOp>>,
    /// Sum of the queued batch lengths.
    queued_updates: usize,
    closed: bool,
    /// Closed because the writer died (panic), not by shutdown: producers —
    /// including ones already parked in [`UpdateQueue::push`]'s backpressure
    /// wait — get [`ServiceError::WriterCrashed`] instead of blocking on a
    /// drain that can no longer happen.
    crashed: bool,
}

impl UpdateQueue {
    /// Creates a queue bounded at `capacity` queued updates (≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        Self {
            state: Mutex::new(QueueState {
                batches: VecDeque::new(),
                queued_updates: 0,
                closed: false,
                crashed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues one batch, blocking while the queue is at capacity. Empty
    /// batches are accepted and act as pure publication triggers (the writer
    /// applies nothing and publishes a snapshot). Fails with
    /// [`ServiceError::Stopped`] once the queue is closed by shutdown, and
    /// with [`ServiceError::WriterCrashed`] — including from the middle of
    /// the backpressure wait — once the writer has died.
    pub fn push(&self, batch: Vec<UpdateOp>) -> Result<(), ServiceError> {
        let mut state = self.state.lock();
        loop {
            if state.crashed {
                return Err(ServiceError::WriterCrashed);
            }
            if state.closed {
                return Err(ServiceError::Stopped);
            }
            let fits = state.queued_updates + batch.len() <= self.capacity
                // oversized batches are accepted into an empty queue
                || state.queued_updates == 0;
            if fits {
                state.queued_updates += batch.len();
                state.batches.push_back(batch);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state);
        }
    }

    /// Non-blocking [`UpdateQueue::push`] for the admission-control path:
    /// where `push` would park in the backpressure wait, this returns
    /// [`ServiceError::Overloaded`] immediately — the caller turns it into a
    /// typed reject instead of a stalled connection handler.
    pub fn try_push(&self, batch: Vec<UpdateOp>) -> Result<(), ServiceError> {
        let mut state = self.state.lock();
        if state.crashed {
            return Err(ServiceError::WriterCrashed);
        }
        if state.closed {
            return Err(ServiceError::Stopped);
        }
        let fits = state.queued_updates + batch.len() <= self.capacity
            // oversized batches are accepted into an empty queue
            || state.queued_updates == 0;
        if !fits {
            return Err(ServiceError::Overloaded);
        }
        state.queued_updates += batch.len();
        state.batches.push_back(batch);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues whole batches totalling at most `max_updates` (but always at
    /// least one batch), blocking while the queue is empty. Returns `None`
    /// once the queue is closed **and** drained — the writer's signal to
    /// exit.
    pub fn pop(&self, max_updates: usize) -> Option<Vec<Vec<UpdateOp>>> {
        let mut state = self.state.lock();
        loop {
            if !state.batches.is_empty() {
                let mut drained = Vec::new();
                let mut drained_updates = 0;
                loop {
                    let take = match state.batches.front() {
                        Some(front) => {
                            drained.is_empty() || drained_updates + front.len() <= max_updates
                        }
                        None => false,
                    };
                    if !take {
                        break;
                    }
                    match state.batches.pop_front() {
                        Some(front) => {
                            drained_updates += front.len();
                            drained.push(front);
                        }
                        None => break,
                    }
                }
                state.queued_updates -= drained_updates;
                self.not_full.notify_all();
                return Some(drained);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state);
        }
    }

    /// Closes the queue: producers fail fast, the writer drains what is left
    /// and exits.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Closes the queue because the writer died: every producer — parked in
    /// the backpressure wait or arriving later — fails with
    /// [`ServiceError::WriterCrashed`]. Called from the writer's exit guard
    /// on unwind only; a clean writer exit leaves the plain `closed` /
    /// `Stopped` semantics untouched.
    pub(crate) fn close_crashed(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        state.crashed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Updates currently queued (diagnostics).
    pub fn queued_updates(&self) -> usize {
        self.state.lock().queued_updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_rtree::RecordId;
    use std::sync::Arc;

    fn op(id: u64) -> UpdateOp {
        UpdateOp::RemoveObject(RecordId(id))
    }

    #[test]
    fn pop_drains_whole_batches_up_to_the_update_budget() {
        let queue = UpdateQueue::new(16);
        queue.push(vec![op(0), op(1)]).unwrap();
        queue.push(vec![op(2)]).unwrap();
        queue.push(vec![op(3), op(4), op(5)]).unwrap();
        assert_eq!(queue.queued_updates(), 6);
        // budget 3 takes the first two batches (2 + 1), not half of batch 3
        let drained = queue.pop(3).unwrap();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].len(), 2);
        assert_eq!(drained[1].len(), 1);
        assert_eq!(queue.queued_updates(), 3);
        // a batch larger than the budget still comes out whole
        let drained = queue.pop(1).unwrap();
        assert_eq!(drained, vec![vec![op(3), op(4), op(5)]]);
        assert_eq!(queue.queued_updates(), 0);
    }

    #[test]
    fn close_fails_producers_and_drains_consumers() {
        let queue = UpdateQueue::new(4);
        queue.push(vec![op(0)]).unwrap();
        queue.close();
        assert_eq!(queue.push(vec![op(1)]), Err(ServiceError::Stopped));
        // the consumer still sees the pre-close batch, then the exit signal
        assert_eq!(queue.pop(8), Some(vec![vec![op(0)]]));
        assert_eq!(queue.pop(8), None);
    }

    #[test]
    fn producers_block_at_capacity_until_the_writer_drains() {
        let queue = Arc::new(UpdateQueue::new(2));
        queue.push(vec![op(0), op(1)]).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(vec![op(2)]))
        };
        // the producer cannot finish until we drain; drain and join
        let drained = queue.pop(8).unwrap();
        assert_eq!(drained.len(), 1);
        producer.join().unwrap().unwrap();
        assert_eq!(queue.pop(8), Some(vec![vec![op(2)]]));
    }

    #[test]
    fn oversized_batches_enter_an_empty_queue() {
        let queue = UpdateQueue::new(2);
        queue.push(vec![op(0), op(1), op(2), op(3)]).unwrap();
        assert_eq!(queue.queued_updates(), 4);
        assert_eq!(queue.pop(1).unwrap()[0].len(), 4);
    }

    #[test]
    fn empty_batches_pass_through() {
        let queue = UpdateQueue::new(2);
        queue.push(Vec::new()).unwrap();
        assert_eq!(queue.pop(4), Some(vec![Vec::new()]));
    }

    #[test]
    fn try_push_rejects_at_capacity_instead_of_blocking() {
        let queue = UpdateQueue::new(2);
        queue.try_push(vec![op(0), op(1)]).unwrap();
        assert_eq!(queue.try_push(vec![op(2)]), Err(ServiceError::Overloaded));
        // nothing was partially enqueued by the reject
        assert_eq!(queue.queued_updates(), 2);
        // draining reopens admission
        queue.pop(8).unwrap();
        queue.try_push(vec![op(2)]).unwrap();
        // oversized batches still enter an empty queue on the try path
        queue.pop(8).unwrap();
        queue.try_push(vec![op(3), op(4), op(5)]).unwrap();
        assert_eq!(queue.queued_updates(), 3);
    }

    #[test]
    fn crash_close_fails_parked_and_future_producers_with_writer_crashed() {
        let queue = Arc::new(UpdateQueue::new(1));
        queue.push(vec![op(0)]).unwrap();
        let parked = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(vec![op(1)]))
        };
        // the producer is (about to be) parked in the backpressure wait; a
        // writer crash must wake it with the typed error, not leave it
        // hanging on a drain that will never come
        queue.close_crashed();
        assert_eq!(parked.join().unwrap(), Err(ServiceError::WriterCrashed));
        assert_eq!(
            queue.push(vec![op(2)]),
            Err(ServiceError::WriterCrashed),
            "future producers see the crash too"
        );
        assert_eq!(
            queue.try_push(vec![op(2)]),
            Err(ServiceError::WriterCrashed),
            "the non-blocking path reports the crash, not Overloaded"
        );
    }
}
