//! One shard: a single-writer engine thread behind a bounded queue,
//! publishing versioned snapshots.

use crate::cell::{SnapshotCell, SnapshotReader};
use crate::durability::{FsyncPolicy, ShardDurability};
use crate::queue::UpdateQueue;
use crate::snapshot::AssignmentSnapshot;
use crate::{ServiceError, UpdateOp};
use pref_assign::Problem;
use pref_engine::{AssignmentEngine, EngineOptions, EngineStats};
use pref_sync::thread::JoinHandle;
use pref_sync::{AtomicU64, Condvar, Mutex, Ordering};
use std::path::Path;
use std::sync::Arc;

/// Writer-side progress, shared with flush waiters.
#[derive(Debug, Default)]
struct ProgressState {
    /// Updates consumed from the queue (applied + rejected), counted at
    /// publication time — an update is "processed" only once the snapshot
    /// reflecting it is visible to readers.
    processed: u64,
    /// Updates the engine rejected (duplicate / unknown ids, dimension
    /// mismatches). Rejections do not tear the batch: the remaining ops
    /// still apply, and the batch still publishes.
    rejected: u64,
    /// Snapshots published (equals the published version).
    published_version: u64,
    /// Description of the most recent rejection, for diagnostics.
    last_rejection: Option<String>,
    /// Set when the writer thread exits (clean shutdown or panic).
    writer_exited: bool,
    /// Set when the writer thread exited by *panic*: flush waiters get the
    /// typed [`ServiceError::WriterCrashed`] instead of the clean-shutdown
    /// `Stopped`.
    writer_crashed: bool,
}

#[derive(Debug, Default)]
struct Progress {
    state: Mutex<ProgressState>,
    advanced: Condvar,
}

/// Notifies flush waiters that the writer exited, even on unwind: a panicking
/// writer must fail flushes, not hang them. On unwind it also poisons the
/// update queue — a producer parked in the queue's backpressure wait is
/// woken with [`ServiceError::WriterCrashed`] instead of blocking forever on
/// a drain that can no longer happen. Also stops the shard's background
/// compactor (when one runs): with the writer gone no new debt arrives, and a
/// compactor parked on its condvar would otherwise hang the shard's join.
struct ExitNotice {
    progress: Arc<Progress>,
    queue: Arc<UpdateQueue>,
    compactor: Option<Arc<CompactSignal>>,
}

impl Drop for ExitNotice {
    fn drop(&mut self) {
        let crashed = pref_sync::thread::panicking();
        if crashed {
            // poison BEFORE taking the progress lock: a parked producer
            // holds no lock, and waking it first narrows the window where a
            // flush error races a still-parked submit
            self.queue.close_crashed();
        }
        let mut state = self.progress.state.lock();
        state.writer_exited = true;
        state.writer_crashed = crashed;
        self.progress.advanced.notify_all();
        drop(state);
        if let Some(signal) = &self.compactor {
            signal.stop();
        }
    }
}

/// The engine plus the shard's snapshot version allocator, behind one lock.
///
/// With background compaction the shard has **two** publishers — the writer
/// (applied batches) and the compactor (drained tombstone debt). Both mutate
/// the engine, allocate the next version and install it in the
/// [`SnapshotCell`] inside the same critical section, so versions are
/// allocated and published in one order and the cell's strict monotonicity
/// holds by construction. Without a compactor the lock is uncontended and
/// the writer's path is unchanged.
#[derive(Debug)]
struct EngineSlot {
    engine: AssignmentEngine,
    /// Version of the latest published snapshot.
    version: u64,
}

#[derive(Debug, Default)]
struct CompactGate {
    /// Set by the writer when an applied batch left compaction due.
    pending: bool,
    /// Set on shard shutdown (or writer exit, clean or panicking).
    stop: bool,
}

/// Wake-up channel from the writer to the background compactor.
#[derive(Debug, Default)]
struct CompactSignal {
    gate: Mutex<CompactGate>,
    wake: Condvar,
}

impl CompactSignal {
    fn notify(&self) {
        let mut gate = self.gate.lock();
        gate.pending = true;
        self.wake.notify_all();
    }

    fn stop(&self) {
        let mut gate = self.gate.lock();
        gate.stop = true;
        self.wake.notify_all();
    }

    fn stopped(&self) -> bool {
        self.gate.lock().stop
    }

    /// Parks until work is pending (returns `true`) or the shard stops
    /// (returns `false`), consuming the pending flag.
    fn wait_for_work(&self) -> bool {
        let mut gate = self.gate.lock();
        loop {
            if gate.stop {
                return false;
            }
            if gate.pending {
                gate.pending = false;
                return true;
            }
            gate = self.wake.wait(gate);
        }
    }
}

/// Milestones the writer reports to an injected fault hook, in the order
/// they happen within one publication cycle. Crash tests pick a milestone
/// and panic the writer there: [`FaultEvent::PrePublish`] is the classic
/// torn window — updates logged and consumed, snapshot not yet published.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// One batch was appended to the WAL (not necessarily fsynced yet);
    /// `seq` is its log record sequence number.
    BatchLogged {
        /// Log record sequence number of the appended batch.
        seq: u64,
    },
    /// Every consumed update was applied; the writer is about to publish
    /// snapshot `version`.
    PrePublish {
        /// The version about to be published.
        version: u64,
    },
    /// A checkpoint was written at log sequence `seq` and older generations
    /// were collected.
    CheckpointWritten {
        /// Log sequence the checkpoint was taken at.
        seq: u64,
    },
}

/// Fault injection for crash tests: called by the writer at each
/// [`FaultEvent`] milestone. A hook that panics simulates a writer crash at
/// that point — the exact windows where a buggy flush would hang forever or
/// a buggy recovery would observe a torn batch.
#[doc(hidden)]
pub type WriterFault = Box<dyn FnMut(FaultEvent) + Send + 'static>;

/// Point-in-time counters of one shard.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Updates submitted to the shard's queue so far.
    pub submitted: u64,
    /// Updates processed (applied + rejected) and published.
    pub processed: u64,
    /// Updates the engine rejected.
    pub rejected: u64,
    /// Version of the latest published snapshot. Version 1 is the initial
    /// stabilization; each publication — which covers one or **more** whole
    /// batches when the writer drains a backlog — advances it by 1.
    pub published_version: u64,
    /// Description of the most recent rejection, if any.
    pub last_rejection: Option<String>,
    /// Engine stats as of the latest published snapshot.
    pub engine: EngineStats,
}

/// Handle to one shard: submit side + publication side.
///
/// Created by [`crate::ShardedService`]; the shard owns its writer thread.
#[derive(Debug)]
pub struct ShardHandle {
    queue: Arc<UpdateQueue>,
    cell: Arc<SnapshotCell>,
    progress: Arc<Progress>,
    /// Updates submitted (accepted by the queue) so far.
    submitted: AtomicU64,
    writer: Option<JoinHandle<()>>,
    /// The background compactor (only with
    /// [`pref_engine::EngineOptions::deferred_compaction`]).
    compactor: Option<JoinHandle<()>>,
    compact_signal: Option<Arc<CompactSignal>>,
}

impl ShardHandle {
    /// Builds the shard's engine from its initial problem, publishes the
    /// version-1 snapshot and starts the writer thread.
    pub(crate) fn start(
        problem: &Problem,
        engine_options: &EngineOptions,
        queue_capacity: usize,
        max_batch: usize,
        shard_index: usize,
    ) -> Result<Self, ServiceError> {
        Self::start_with_fault(
            problem,
            engine_options,
            queue_capacity,
            max_batch,
            shard_index,
            None,
        )
    }

    /// [`ShardHandle::start`] plus an optional injected writer fault (model
    /// scenario tests use it to crash the writer at a chosen publication).
    pub(crate) fn start_with_fault(
        problem: &Problem,
        engine_options: &EngineOptions,
        queue_capacity: usize,
        max_batch: usize,
        shard_index: usize,
        fault: Option<WriterFault>,
    ) -> Result<Self, ServiceError> {
        let engine = AssignmentEngine::new(problem, engine_options)?;
        Self::start_inner(engine, queue_capacity, max_batch, shard_index, None, fault)
    }

    /// Starts a shard with per-shard durability: initializes (or reuses the
    /// layout of) `dir` with a generation-0 checkpoint of the initial
    /// populations, then logs every subsequent batch ahead of applying it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start_durable(
        problem: &Problem,
        engine_options: &EngineOptions,
        queue_capacity: usize,
        max_batch: usize,
        shard_index: usize,
        dir: &Path,
        fsync: FsyncPolicy,
        checkpoint_every: u64,
    ) -> Result<Self, ServiceError> {
        Self::start_durable_with_fault(
            problem,
            engine_options,
            queue_capacity,
            max_batch,
            shard_index,
            dir,
            fsync,
            checkpoint_every,
            None,
        )
    }

    /// [`ShardHandle::start_durable`] plus an injected writer fault. Public
    /// (but hidden) so the crash-recovery battery can kill writers at exact
    /// milestones from integration tests.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn start_durable_with_fault(
        problem: &Problem,
        engine_options: &EngineOptions,
        queue_capacity: usize,
        max_batch: usize,
        shard_index: usize,
        dir: &Path,
        fsync: FsyncPolicy,
        checkpoint_every: u64,
        fault: Option<WriterFault>,
    ) -> Result<Self, ServiceError> {
        let engine = AssignmentEngine::new(problem, engine_options)?;
        let snapshot = engine.export_snapshot();
        let durability = ShardDurability::create(
            dir,
            fsync,
            checkpoint_every,
            &snapshot.functions,
            &snapshot.objects,
        )?;
        Self::start_inner(
            engine,
            queue_capacity,
            max_batch,
            shard_index,
            Some(durability),
            fault,
        )
    }

    /// Recovers a shard from its durability directory: restores the engine
    /// from the newest valid checkpoint, replays the whole logged batches
    /// after it (rejections are counted-not-fatal, exactly as on the live
    /// path), truncates any torn tail, and resumes serving. The recovered
    /// shard re-publishes as version 1.
    pub(crate) fn recover(
        dir: &Path,
        engine_options: &EngineOptions,
        queue_capacity: usize,
        max_batch: usize,
        shard_index: usize,
        fsync: FsyncPolicy,
        checkpoint_every: u64,
    ) -> Result<Self, ServiceError> {
        Self::recover_with_fault(
            dir,
            engine_options,
            queue_capacity,
            max_batch,
            shard_index,
            fsync,
            checkpoint_every,
            None,
        )
    }

    /// [`ShardHandle::recover`] plus an injected writer fault (see
    /// [`ShardHandle::start_durable_with_fault`]).
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn recover_with_fault(
        dir: &Path,
        engine_options: &EngineOptions,
        queue_capacity: usize,
        max_batch: usize,
        shard_index: usize,
        fsync: FsyncPolicy,
        checkpoint_every: u64,
        fault: Option<WriterFault>,
    ) -> Result<Self, ServiceError> {
        let recovered = ShardDurability::recover(dir, fsync, checkpoint_every)?;
        let problem = Problem::new(recovered.functions, recovered.objects).map_err(|e| {
            ServiceError::Durability(format!(
                "checkpoint in {} does not form a valid problem: {e}",
                dir.display()
            ))
        })?;
        let mut engine = AssignmentEngine::new(&problem, engine_options)?;
        for batch in &recovered.batches {
            for op in batch {
                // rejections (duplicate ids, unknown ids) were counted, not
                // fatal, when first applied — replay treats them the same
                let _ = op.apply(&mut engine);
            }
        }
        Self::start_inner(
            engine,
            queue_capacity,
            max_batch,
            shard_index,
            Some(recovered.durability),
            fault,
        )
    }

    /// Common tail of every constructor: publish version 1 from the (built,
    /// restored, or replayed) engine, spawn the writer thread and — when the
    /// engine defers compaction — the background compactor thread.
    fn start_inner(
        engine: AssignmentEngine,
        queue_capacity: usize,
        max_batch: usize,
        shard_index: usize,
        durability: Option<ShardDurability>,
        fault: Option<WriterFault>,
    ) -> Result<Self, ServiceError> {
        let cell = Arc::new(SnapshotCell::new(AssignmentSnapshot::from_export(
            engine.export_snapshot(),
            1,
        )));
        let queue = Arc::new(UpdateQueue::new(queue_capacity));
        let progress = Arc::new(Progress::default());
        {
            let mut state = progress.state.lock();
            state.published_version = 1;
        }
        let background = engine.compaction_deferred();
        let slot = Arc::new(Mutex::new(EngineSlot { engine, version: 1 }));
        let compact_signal = background.then(|| {
            let signal = Arc::new(CompactSignal::default());
            // a recovered / restored engine may carry inherited tombstone
            // debt: let the compactor check once at startup
            signal.notify();
            signal
        });
        let writer = {
            let queue = Arc::clone(&queue);
            let cell = Arc::clone(&cell);
            let progress = Arc::clone(&progress);
            let slot = Arc::clone(&slot);
            let compact_signal = compact_signal.clone();
            pref_sync::thread::Builder::new()
                .name(format!("shard-{shard_index}-writer"))
                .spawn(move || {
                    let _notice = ExitNotice {
                        progress: Arc::clone(&progress),
                        queue: Arc::clone(&queue),
                        compactor: compact_signal.clone(),
                    };
                    writer_loop(
                        &slot,
                        &queue,
                        &cell,
                        &progress,
                        max_batch,
                        durability,
                        fault,
                        compact_signal.as_deref(),
                    );
                })
                .map_err(|e| ServiceError::InvalidConfig(format!("spawn failed: {e}")))?
        };
        let compactor = match &compact_signal {
            Some(signal) => Some(
                {
                    let cell = Arc::clone(&cell);
                    let progress = Arc::clone(&progress);
                    let slot = Arc::clone(&slot);
                    let signal = Arc::clone(signal);
                    pref_sync::thread::Builder::new()
                        .name(format!("shard-{shard_index}-compactor"))
                        .spawn(move || compactor_loop(&slot, &cell, &progress, &signal))
                }
                .map_err(|e| ServiceError::InvalidConfig(format!("spawn failed: {e}")))?,
            ),
            None => None,
        };
        Ok(Self {
            queue,
            cell,
            progress,
            submitted: AtomicU64::new(0),
            writer: Some(writer),
            compactor,
            compact_signal,
        })
    }

    /// Submits one batch (blocking while the queue is at capacity). The
    /// batch will become visible atomically in one published snapshot.
    pub fn submit_batch(&self, batch: Vec<UpdateOp>) -> Result<(), ServiceError> {
        // Count the submission BEFORE the queue accepts it (rolled back on a
        // closed queue): an update can only be processed after it was
        // queued, so `processed <= submitted` holds at every instant and
        // stats consumers can rely on `submitted - processed` as a backlog
        // gauge.
        let len = batch.len() as u64;
        // ordering: Relaxed is enough for this counter. Its consumers never
        // use it to reach other data: flush() reads it on the *same* thread
        // that incremented it (program order), and the `processed >=
        // submitted` comparison is ordered by the queue/progress mutexes —
        // fetch_add happens-before queue.push (program order), push
        // happens-before the writer's drain (queue mutex), and the writer's
        // progress update happens-before the waiter's read (progress mutex).
        // The previous AcqRel ordered nothing extra and put a full barrier
        // on every submission.
        self.submitted.fetch_add(len, Ordering::Relaxed);
        if let Err(e) = self.queue.push(batch) {
            // ordering: Relaxed — same-thread rollback of the count above;
            // per-location coherence keeps the counter itself consistent
            self.submitted.fetch_sub(len, Ordering::Relaxed);
            return Err(e);
        }
        Ok(())
    }

    /// Submits a single update (a batch of one).
    pub fn submit(&self, op: UpdateOp) -> Result<(), ServiceError> {
        self.submit_batch(vec![op])
    }

    /// Non-blocking [`ShardHandle::submit_batch`]: where the blocking path
    /// would park in the queue's backpressure wait, this fails immediately
    /// with [`ServiceError::Overloaded`] — the admission-control entry point
    /// for callers (the network front door) that must never stall a
    /// connection handler on a full shard.
    pub fn try_submit_batch(&self, batch: Vec<UpdateOp>) -> Result<(), ServiceError> {
        // same counting protocol as submit_batch: count first, roll back on
        // any rejection, so `processed <= submitted` holds at every instant
        let len = batch.len() as u64;
        // ordering: Relaxed — see submit_batch: consumers of this counter
        // are ordered by program order or by the queue/progress mutexes
        self.submitted.fetch_add(len, Ordering::Relaxed);
        if let Err(e) = self.queue.try_push(batch) {
            // ordering: Relaxed — same-thread rollback of the count above
            self.submitted.fetch_sub(len, Ordering::Relaxed);
            return Err(e);
        }
        Ok(())
    }

    /// Updates currently queued (the admission-control gauge: the front
    /// door refuses new updates once this crosses its high-water mark,
    /// before they would park in the backpressure wait).
    pub fn queue_depth(&self) -> usize {
        self.queue.queued_updates()
    }

    /// Blocks until every update submitted to this shard before the call has
    /// been processed and published — the read-your-writes barrier. Fails
    /// with [`ServiceError::Stopped`] if the writer exited cleanly first,
    /// and with [`ServiceError::WriterCrashed`] if it panicked.
    pub fn flush(&self) -> Result<(), ServiceError> {
        // ordering: Relaxed — the caller's own submissions are ordered by
        // program order; concurrent submitters' in-flight updates are not
        // part of this caller's read-your-writes contract (see submit_batch
        // for why the counter itself needs no barrier)
        let target = self.submitted.load(Ordering::Relaxed);
        let mut state = self.progress.state.lock();
        loop {
            if state.processed >= target {
                return Ok(());
            }
            if state.writer_crashed {
                return Err(ServiceError::WriterCrashed);
            }
            if state.writer_exited {
                return Err(ServiceError::Stopped);
            }
            state = self.progress.advanced.wait(state);
        }
    }

    /// A new reader pinned to the latest published snapshot.
    pub fn reader(&self) -> SnapshotReader {
        self.cell.reader()
    }

    /// Pins the latest published snapshot once (slow path; readers that
    /// query repeatedly should hold a [`SnapshotReader`]).
    pub fn latest(&self) -> Arc<AssignmentSnapshot> {
        self.cell.latest()
    }

    /// The shard's current counters plus the engine stats of the latest
    /// published snapshot.
    pub fn stats(&self) -> ShardStats {
        let state = self.progress.state.lock();
        ShardStats {
            // ordering: Relaxed — a monitoring read; the progress mutex held
            // here orders it against the writer's processed/rejected updates
            // well enough for `submitted >= processed` to hold (an update is
            // counted before it is queued, and processed only after)
            submitted: self.submitted.load(Ordering::Relaxed),
            processed: state.processed,
            rejected: state.rejected,
            published_version: state.published_version,
            last_rejection: state.last_rejection.clone(),
            engine: *self.latest().stats(),
        }
    }

    /// Closes the shard's queue: in-flight batches still apply and publish,
    /// then the writer exits. Producers fail fast from now on.
    pub(crate) fn close(&self) {
        self.queue.close();
    }

    /// Joins the writer and compactor threads (after [`ShardHandle::close`]);
    /// propagates a writer panic as [`ServiceError::WriterCrashed`]. The
    /// writer's exit (via `ExitNotice`, even on panic) stops the compactor,
    /// so the second join cannot hang.
    pub(crate) fn join(&mut self) -> Result<(), ServiceError> {
        let result = match self.writer.take() {
            Some(writer) => writer.join().map_err(|_| ServiceError::WriterCrashed),
            None => Ok(()),
        };
        if let Some(signal) = &self.compact_signal {
            // defensive double-stop: a no-op after the writer's ExitNotice
            signal.stop();
        }
        if let Some(compactor) = self.compactor.take() {
            let _ = compactor.join();
        }
        result
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        self.close();
        if let Some(writer) = self.writer.take() {
            // on drop-without-shutdown, still reap the threads; a panic is
            // already recorded via ExitNotice and must not double-panic here
            let _ = writer.join();
        }
        if let Some(signal) = &self.compact_signal {
            signal.stop();
        }
        if let Some(compactor) = self.compactor.take() {
            let _ = compactor.join();
        }
    }
}

/// The shard's writer loop: drain → log → fsync → apply → export →
/// checkpoint (when due) → publish → acknowledge.
///
/// The log-before-apply order is the durability contract: a batch reaches
/// the engine only after its WAL record exists (and, per policy, is
/// fsynced), so an acknowledged batch is always recoverable and recovery can
/// never observe a torn one (record checksums cut torn tails). A durability
/// I/O failure panics the writer — acknowledging without the log would lie —
/// which surfaces to producers as [`ServiceError::Stopped`] via `ExitNotice`.
///
/// With background compaction, the apply → publish window runs under the
/// engine slot lock (the compactor shares the engine) and the writer's ack
/// path never compacts: it only *checks* for debt after publishing and pokes
/// the compactor, so departure acks no longer pay for physical deletion.
#[allow(clippy::too_many_arguments)]
fn writer_loop(
    slot: &Mutex<EngineSlot>,
    queue: &UpdateQueue,
    cell: &SnapshotCell,
    progress: &Progress,
    max_batch: usize,
    mut durability: Option<ShardDurability>,
    mut fault: Option<WriterFault>,
    compactor: Option<&CompactSignal>,
) {
    while let Some(batches) = queue.pop(max_batch) {
        if let Some(dur) = durability.as_mut() {
            for batch in &batches {
                if batch.is_empty() {
                    // an empty batch publishes a fresh snapshot but changes
                    // nothing: no record needed
                    continue;
                }
                let seq = dur
                    .log_batch(batch)
                    .unwrap_or_else(|e| panic!("shard WAL append failed: {e}"));
                if let Some(fault) = fault.as_mut() {
                    fault(FaultEvent::BatchLogged { seq });
                }
            }
            dur.sync_for_ack()
                .unwrap_or_else(|e| panic!("shard WAL fsync failed: {e}"));
        }
        let mut processed = 0u64;
        let mut rejected = 0u64;
        let mut last_rejection = None;
        let mut slot = slot.lock();
        for batch in &batches {
            for op in batch {
                processed += 1;
                if let Err(e) = op.apply(&mut slot.engine) {
                    rejected += 1;
                    last_rejection = Some(format!("{op:?}: {e}"));
                }
            }
        }
        slot.version += 1;
        let version = slot.version;
        if let Some(fault) = fault.as_mut() {
            // may panic here, i.e. after logging + consuming the updates but
            // before publishing them — the canonical torn window
            fault(FaultEvent::PrePublish { version });
        }
        let export = slot.engine.export_snapshot();
        if let Some(dur) = durability.as_mut() {
            match dur.maybe_checkpoint(&export.functions, &export.objects) {
                Ok(Some(seq)) => {
                    if let Some(fault) = fault.as_mut() {
                        fault(FaultEvent::CheckpointWritten { seq });
                    }
                }
                Ok(None) => {}
                Err(e) => panic!("shard checkpoint failed: {e}"),
            }
        }
        // publish while still holding the slot: versions are installed in
        // allocation order even with the compactor publishing concurrently
        cell.publish(AssignmentSnapshot::from_export(export, version));
        let compaction_due = slot.engine.compaction_due();
        drop(slot);
        // acknowledge only after publication: a flushed producer is
        // guaranteed its updates are visible to every subsequent read
        let mut state = progress.state.lock();
        state.processed += processed;
        state.rejected += rejected;
        // max(): the compactor may already have published a later version
        state.published_version = state.published_version.max(version);
        if last_rejection.is_some() {
            state.last_rejection = last_rejection;
        }
        progress.advanced.notify_all();
        drop(state);
        if compaction_due {
            if let Some(signal) = compactor {
                signal.notify();
            }
        }
    }
}

/// The background compactor: parks until the writer signals tombstone debt,
/// then drains it in bounded batches — each batch takes the engine slot,
/// physically deletes up to `compaction_batch` tombstones, publishes the
/// compacted state under the same lock, and releases the slot so a
/// concurrent writer batch gets in between. The matching never changes
/// (compaction only touches the index and the bookkeeping), so compactor
/// publications carry the same populations and pairs as the snapshot before
/// them — only the stats gauges move.
fn compactor_loop(
    slot: &Mutex<EngineSlot>,
    cell: &SnapshotCell,
    progress: &Progress,
    signal: &CompactSignal,
) {
    while signal.wait_for_work() {
        loop {
            // re-check stop between batches: shutdown must not wait for a
            // long drain to finish
            if signal.stopped() {
                return;
            }
            let mut slot = slot.lock();
            if !slot.engine.compaction_due() {
                break;
            }
            slot.engine.run_compaction_batch();
            slot.version += 1;
            let version = slot.version;
            let export = slot.engine.export_snapshot();
            cell.publish(AssignmentSnapshot::from_export(export, version));
            drop(slot);
            let mut state = progress.state.lock();
            state.published_version = state.published_version.max(version);
            progress.advanced.notify_all();
            drop(state);
            pref_sync::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_assign::{FunctionId, ObjectRecord, PreferenceFunction};
    use pref_geom::{LinearFunction, Point};
    use pref_rtree::RecordId;

    fn problem() -> Problem {
        Problem::new(
            vec![
                PreferenceFunction::new(0, LinearFunction::new(vec![0.8, 0.2]).unwrap()),
                PreferenceFunction::new(1, LinearFunction::new(vec![0.2, 0.8]).unwrap()),
            ],
            vec![
                ObjectRecord::new(0, Point::from_slice(&[0.5, 0.6])),
                ObjectRecord::new(1, Point::from_slice(&[0.2, 0.7])),
                ObjectRecord::new(2, Point::from_slice(&[0.8, 0.2])),
            ],
        )
        .unwrap()
    }

    fn start_shard() -> ShardHandle {
        ShardHandle::start(&problem(), &EngineOptions::default(), 64, 16, 0).unwrap()
    }

    #[test]
    fn flush_is_a_read_your_writes_barrier() {
        let mut shard = start_shard();
        assert_eq!(shard.latest().version(), 1);
        shard
            .submit(UpdateOp::InsertObject(ObjectRecord::new(
                9,
                Point::from_slice(&[0.95, 0.95]),
            )))
            .unwrap();
        shard.flush().unwrap();
        let snap = shard.latest();
        assert!(snap.version() >= 2);
        assert!(snap.objects().iter().any(|o| o.id == RecordId(9)));
        snap.verify().unwrap();
        // the newcomer dominates everything: it must hold an assignment
        assert_eq!(snap.functions_of(RecordId(9)).unwrap().len(), 1);
        shard.close();
        shard.join().unwrap();
    }

    #[test]
    fn rejected_updates_are_counted_not_fatal() {
        let mut shard = start_shard();
        shard
            .submit_batch(vec![
                UpdateOp::RemoveObject(RecordId(777)), // unknown: rejected
                UpdateOp::InsertObject(ObjectRecord::new(5, Point::from_slice(&[0.4, 0.4]))),
            ])
            .unwrap();
        shard.flush().unwrap();
        let stats = shard.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.processed, 2);
        assert_eq!(stats.rejected, 1);
        assert!(stats.last_rejection.unwrap().contains("unknown object"));
        // the non-rejected op of the batch still applied
        assert!(shard.latest().objects().iter().any(|o| o.id == RecordId(5)));
        shard.close();
        shard.join().unwrap();
    }

    #[test]
    fn submits_after_close_fail_fast() {
        let mut shard = start_shard();
        shard.close();
        shard.join().unwrap();
        assert_eq!(
            shard.submit(UpdateOp::RemoveFunction(FunctionId(0))),
            Err(ServiceError::Stopped)
        );
    }

    #[test]
    fn background_compactor_drains_off_the_ack_path() {
        let functions = pref_datagen::uniform_weight_functions(4, 2, 91);
        let objects = pref_datagen::independent_objects(40, 2, 92);
        let problem = Problem::from_parts(functions, objects).unwrap();
        let options = EngineOptions {
            compaction_threshold: Some(0.1),
            compaction_batch: 2,
            deferred_compaction: true,
            ..EngineOptions::default()
        };
        let mut shard = ShardHandle::start(&problem, &options, 64, 16, 0).unwrap();
        for id in 0..12u64 {
            shard.submit(UpdateOp::RemoveObject(RecordId(id))).unwrap();
        }
        shard.flush().unwrap();
        // the ack path never compacted: flush returns with the removes
        // published; the physical deletions surface in later compactor
        // publications, which this spin waits for
        let mut reader = shard.reader();
        loop {
            let snapshot = reader.snapshot();
            let stats = snapshot.stats();
            if stats.physical_deletes > 0 && stats.tombstone_ratio() <= 0.1 {
                break;
            }
            std::thread::yield_now();
        }
        // compactor publications carry the same populations and matching
        let snapshot = reader.snapshot();
        assert_eq!(snapshot.objects().len(), 40 - 12);
        assert!(snapshot.objects().iter().all(|o| o.id.0 >= 12));
        snapshot.verify().unwrap();
        // the shard keeps serving after the drain
        shard
            .submit(UpdateOp::InsertObject(ObjectRecord::new(
                100,
                Point::from_slice(&[0.9, 0.9]),
            )))
            .unwrap();
        shard.flush().unwrap();
        assert!(shard
            .latest()
            .objects()
            .iter()
            .any(|o| o.id == RecordId(100)));
        shard.close();
        shard.join().unwrap();
    }

    #[test]
    fn empty_batches_publish_fresh_snapshots() {
        let mut shard = start_shard();
        let v1 = shard.latest().version();
        shard.submit_batch(Vec::new()).unwrap();
        // an empty batch cannot be flushed on (it adds no updates), so spin
        // on the published version
        while shard.latest().version() == v1 {
            std::thread::yield_now();
        }
        assert_eq!(shard.latest().num_pairs(), 2);
        shard.close();
        shard.join().unwrap();
    }
}
