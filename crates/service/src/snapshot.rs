//! Immutable, versioned snapshots of a shard's assignment state.

use pref_assign::{
    verify_stable, AssignedFunctions, AssignedObjects, AssignmentView, FunctionId, ObjectRecord,
    PreferenceFunction, Problem, ProblemError, StabilityViolation,
};
use pref_engine::{EngineSnapshot, EngineStats};
use pref_rtree::RecordId;

/// One immutable snapshot of a shard's state, published after a batch of
/// updates was applied.
///
/// A snapshot is self-contained: the matching in compact CSR form
/// ([`AssignmentView`]) for allocation-free point lookups, plus the full live
/// populations, so consumers can rebuild the exact [`Problem`] the matching
/// answers for — that is what the stress battery uses to run
/// [`verify_stable`] against every observed snapshot, and what a restart
/// needs to rebuild a shard from its last published state.
///
/// Versions start at 1 (the initial stabilization) and increase by exactly 1
/// per publication — a publication covers one or more *whole* batches, never
/// a partial one. All methods take `&self`; the snapshot never changes after
/// publication.
#[derive(Debug, Clone)]
pub struct AssignmentSnapshot {
    version: u64,
    view: AssignmentView,
    functions: Vec<PreferenceFunction>,
    objects: Vec<ObjectRecord>,
    stats: EngineStats,
}

impl AssignmentSnapshot {
    /// Builds the snapshot from an engine export (writer thread only).
    pub(crate) fn from_export(export: EngineSnapshot, version: u64) -> Self {
        let view = export.view();
        Self {
            version,
            view,
            functions: export.functions,
            objects: export.objects,
            stats: export.stats,
        }
    }

    /// The snapshot's version: strictly monotonic per shard, one step per
    /// publication.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The matching as a compact read-only view.
    pub fn view(&self) -> &AssignmentView {
        &self.view
    }

    /// The objects currently assigned to a function, best score first —
    /// `None` for a function this shard does not know, an empty iterator for
    /// a known but currently unassigned function. Zero locks, zero
    /// allocation.
    pub fn assignment_of(&self, function: FunctionId) -> Option<AssignedObjects<'_>> {
        self.view.objects_of(function)
    }

    /// The functions an object is currently assigned to, best score first.
    /// Zero locks, zero allocation.
    pub fn functions_of(&self, object: RecordId) -> Option<AssignedFunctions<'_>> {
        self.view.functions_of(object)
    }

    /// Engine stats (lifetime counters + gauges) at publication time.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The live preference functions at publication time.
    pub fn functions(&self) -> &[PreferenceFunction] {
        &self.functions
    }

    /// The live objects at publication time.
    pub fn objects(&self) -> &[ObjectRecord] {
        &self.objects
    }

    /// Number of matched pairs.
    pub fn num_pairs(&self) -> usize {
        self.view.len()
    }

    /// Rebuilds the exact [`Problem`] this snapshot's matching answers for
    /// (allocates; meant for verification, diagnostics and restarts — not
    /// the read hot path). `None` when a population is empty.
    pub fn to_problem(&self) -> Option<Problem> {
        Problem::new(self.functions.clone(), self.objects.clone()).ok()
    }

    /// Verifies that the snapshot's matching is a stable assignment for the
    /// snapshot's own problem (quadratic; test / audit use). Only a genuinely
    /// empty population is trivially stable — a snapshot whose problem fails
    /// to rebuild for any other reason (duplicate ids, mismatched
    /// dimensionalities) is corrupted state and must surface as a violation,
    /// not pass silently.
    pub fn verify(&self) -> Result<(), StabilityViolation> {
        match Problem::new(self.functions.clone(), self.objects.clone()) {
            Ok(problem) => verify_stable(&problem, &self.view.to_assignment()),
            // an empty population has an empty (trivially stable) matching
            Err(ProblemError::Empty) => Ok(()),
            Err(e) => Err(StabilityViolation::UnknownId(format!(
                "snapshot cannot rebuild its own problem: {e}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_engine::{AssignmentEngine, EngineOptions};
    use pref_geom::{LinearFunction, Point};

    fn snapshot() -> AssignmentSnapshot {
        let problem = Problem::new(
            vec![
                PreferenceFunction::new(0, LinearFunction::new(vec![0.8, 0.2]).unwrap()),
                PreferenceFunction::new(1, LinearFunction::new(vec![0.2, 0.8]).unwrap()),
            ],
            vec![
                ObjectRecord::new(0, Point::from_slice(&[0.5, 0.6])),
                ObjectRecord::new(1, Point::from_slice(&[0.2, 0.7])),
                ObjectRecord::new(2, Point::from_slice(&[0.8, 0.2])),
            ],
        )
        .unwrap();
        let engine = AssignmentEngine::new(&problem, &EngineOptions::default()).unwrap();
        AssignmentSnapshot::from_export(engine.export_snapshot(), 1)
    }

    #[test]
    fn snapshot_answers_point_lookups_and_verifies() {
        let snap = snapshot();
        assert_eq!(snap.version(), 1);
        assert_eq!(snap.num_pairs(), 2);
        assert_eq!(snap.functions().len(), 2);
        assert_eq!(snap.objects().len(), 3);
        snap.verify().unwrap();

        let (object, score) = snap.assignment_of(FunctionId(0)).unwrap().next().unwrap();
        assert_eq!(object, RecordId(2));
        assert!((score - 0.68).abs() < 1e-12);
        let mut functions = snap.functions_of(RecordId(1)).unwrap();
        assert_eq!(functions.next().map(|(f, _)| f), Some(FunctionId(1)));

        // unknown vs. known-but-unmatched
        assert!(snap.assignment_of(FunctionId(99)).is_none());
        assert_eq!(snap.functions_of(RecordId(0)).unwrap().len(), 0);

        // the snapshot can rebuild its own problem
        let problem = snap.to_problem().unwrap();
        assert_eq!(problem.num_functions(), 2);
        assert_eq!(problem.num_objects(), 3);
        assert_eq!(snap.stats().live_objects, 3);
    }
}
