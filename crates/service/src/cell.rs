//! Versioned snapshot publication: single writer, many lock-free readers.

use crate::snapshot::AssignmentSnapshot;
use pref_sync::{AtomicU64, Mutex, Ordering};
use std::sync::Arc;

/// The publication point of one shard: holds the latest
/// [`AssignmentSnapshot`] and its version.
///
/// The writer installs a new snapshot with [`SnapshotCell::publish`]; readers
/// pin snapshots through a [`SnapshotReader`]. The design splits the read
/// path in two:
///
/// * the **hot path** is one `Acquire` load of the version counter — if it
///   equals the version the reader already holds (the overwhelmingly common
///   case between publications), the reader keeps serving from its pinned
///   `Arc` with no lock, no allocation and no shared-cache writes;
/// * the **refresh path** (at most once per published version per reader)
///   briefly takes the slot mutex to clone the new `Arc`. The writer holds
///   that mutex only for the duration of a pointer store, so the refresh is
///   bounded and cannot be blocked behind engine work.
///
/// Safe Rust cannot dereference a raw swapped pointer without a reclamation
/// protocol, so the version counter *is* the atomically swapped publication
/// pointer here: it tells readers, wait-free, whether the slot changed, and
/// the slot itself is only touched when it did. Old snapshots are freed by
/// the last reader that drops its pin (`Arc` reference counting) — the
/// writer never blocks on readers, readers never block each other, and a
/// slow reader keeps its consistent snapshot alive instead of blocking the
/// world.
#[derive(Debug)]
pub struct SnapshotCell {
    /// Version of the snapshot currently in `slot`.
    version: AtomicU64,
    /// The latest published snapshot.
    slot: Mutex<Arc<AssignmentSnapshot>>,
}

impl SnapshotCell {
    /// Creates the cell with its initial snapshot.
    pub fn new(initial: AssignmentSnapshot) -> Self {
        let version = initial.version();
        Self {
            version: AtomicU64::new(version),
            slot: Mutex::new(Arc::new(initial)),
        }
    }

    /// Installs a new snapshot (single writer). Versions must be strictly
    /// increasing; publishing a stale version is a writer bug and panics.
    pub fn publish(&self, snapshot: AssignmentSnapshot) {
        let version = snapshot.version();
        let mut slot = self.slot.lock();
        assert!(
            version > slot.version(),
            "snapshot versions must be strictly monotonic: {} after {}",
            version,
            slot.version()
        );
        *slot = Arc::new(snapshot);
        // Publish the version while still holding the slot lock: a reader
        // that observes the new version and then takes the lock is
        // guaranteed to find (at least) this snapshot installed.
        // ordering: Release pairs with the Acquire loads in version() and
        // SnapshotReader::snapshot(); it orders the slot update above before
        // the version becomes visible, so version-then-slot readers never
        // see the new version with the old snapshot
        self.version.store(version, Ordering::Release);
    }

    /// The latest published version (one atomic load).
    pub fn version(&self) -> u64 {
        // ordering: Acquire pairs with the Release store in publish(); any
        // snapshot at or above the returned version is already in the slot
        self.version.load(Ordering::Acquire)
    }

    /// Pins the latest snapshot (slow path: takes the slot lock briefly).
    pub fn latest(&self) -> Arc<AssignmentSnapshot> {
        self.slot.lock().clone()
    }

    /// Creates a reader pinned to the current snapshot.
    pub fn reader(self: &Arc<Self>) -> SnapshotReader {
        SnapshotReader {
            cached: self.latest(),
            cell: Arc::clone(self),
        }
    }
}

/// One reader's handle onto a [`SnapshotCell`].
///
/// Each reader thread owns its handle (`snapshot()` takes `&mut self` to
/// swap the pin); handles are independent — clone-free reads, strictly
/// monotonic versions per handle.
#[derive(Debug)]
pub struct SnapshotReader {
    cell: Arc<SnapshotCell>,
    cached: Arc<AssignmentSnapshot>,
}

impl SnapshotReader {
    /// The freshest published snapshot: revalidates the pinned version with
    /// one atomic load and only touches the shared slot when it moved.
    /// Returned versions are strictly monotonic across calls on one handle.
    pub fn snapshot(&mut self) -> &AssignmentSnapshot {
        // ordering: Acquire pairs with publish()'s Release store — observing
        // a new version guarantees the slot already holds that snapshot
        let published = self.cell.version.load(Ordering::Acquire);
        if published != self.cached.version() {
            let latest = self.cell.latest();
            // the single writer only ever installs newer snapshots, so the
            // pin can only move forward
            if latest.version() > self.cached.version() {
                self.cached = latest;
            }
        }
        &self.cached
    }

    /// The currently pinned snapshot without revalidation (pure local read —
    /// useful when a batch of lookups must be answered from one consistent
    /// snapshot).
    pub fn pinned(&self) -> &AssignmentSnapshot {
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_assign::{ObjectRecord, PreferenceFunction, Problem};
    use pref_engine::{AssignmentEngine, EngineOptions};
    use pref_geom::{LinearFunction, Point};

    fn engine() -> AssignmentEngine {
        let problem = Problem::new(
            vec![PreferenceFunction::new(
                0,
                LinearFunction::new(vec![0.5, 0.5]).unwrap(),
            )],
            vec![
                ObjectRecord::new(0, Point::from_slice(&[0.9, 0.9])),
                ObjectRecord::new(1, Point::from_slice(&[0.1, 0.1])),
            ],
        )
        .unwrap();
        AssignmentEngine::new(&problem, &EngineOptions::default()).unwrap()
    }

    #[test]
    fn readers_see_publications_in_version_order() {
        let mut engine = engine();
        let cell = Arc::new(SnapshotCell::new(AssignmentSnapshot::from_export(
            engine.export_snapshot(),
            1,
        )));
        let mut reader = cell.reader();
        assert_eq!(reader.snapshot().version(), 1);
        assert_eq!(reader.pinned().version(), 1);

        engine
            .insert_object(ObjectRecord::new(7, Point::from_slice(&[0.95, 0.95])))
            .unwrap();
        cell.publish(AssignmentSnapshot::from_export(engine.export_snapshot(), 2));
        assert_eq!(cell.version(), 2);
        // pinned stays at 1 until revalidation, then moves forward
        assert_eq!(reader.pinned().version(), 1);
        assert_eq!(reader.snapshot().version(), 2);
        assert_eq!(reader.snapshot().version(), 2);
        // a fresh reader starts at the latest snapshot
        assert_eq!(cell.reader().pinned().version(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly monotonic")]
    fn stale_publications_panic() {
        let engine = engine();
        let cell = SnapshotCell::new(AssignmentSnapshot::from_export(engine.export_snapshot(), 3));
        cell.publish(AssignmentSnapshot::from_export(engine.export_snapshot(), 3));
    }
}
