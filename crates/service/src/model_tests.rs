//! Model-checked scenario tests for the serving tier's concurrency protocols.
//!
//! Each test runs a small fixed scenario under `pref_sync`'s deterministic
//! scheduler (`cargo test` builds enable the shim's `model` feature), which
//! explores interleavings via seeded random walks or bounded-preemption DFS
//! and checks happens-before invariants on every run. Set `MODEL_ITERS` /
//! `MODEL_SEED` to widen a search or reproduce a reported failure; failing
//! traces land in `target/model-traces` (override with `MODEL_TRACE_DIR`).
//!
//! The wall-clock stress tests in `tests/` still cover real parallelism;
//! these tests cover the interleavings the OS scheduler never produces.

use crate::cell::SnapshotCell;
use crate::queue::UpdateQueue;
use crate::shard::ShardHandle;
use crate::snapshot::AssignmentSnapshot;
use crate::{ServiceError, UpdateOp};
use pref_assign::{ObjectRecord, PreferenceFunction, Problem};
use pref_engine::{AssignmentEngine, EngineOptions};
use pref_geom::{LinearFunction, Point};
use pref_rtree::RecordId;
use pref_sync::model::{self, DfsConfig, ModelConfig, ViolationKind};
use pref_sync::{thread, AtomicU64, Ordering, RaceCell};
use std::sync::Arc;

fn problem() -> Problem {
    Problem::new(
        vec![PreferenceFunction::new(
            0,
            LinearFunction::new(vec![0.5, 0.5]).unwrap(),
        )],
        vec![
            ObjectRecord::new(0, Point::from_slice(&[0.9, 0.9])),
            ObjectRecord::new(1, Point::from_slice(&[0.1, 0.1])),
        ],
    )
    .unwrap()
}

fn engine() -> AssignmentEngine {
    AssignmentEngine::new(&problem(), &EngineOptions::default()).unwrap()
}

fn op(id: u64) -> UpdateOp {
    UpdateOp::RemoveObject(RecordId(id))
}

/// The ISSUE's acceptance floor: with the default iteration budget the three
/// named scenarios must each cover ≥ 1,000 distinct interleavings. When the
/// budget is overridden (MODEL_ITERS) the floor scales down with it.
fn coverage_floor(cfg: &ModelConfig) -> usize {
    if cfg.iterations >= 1_200 {
        1_000
    } else {
        cfg.iterations / 2
    }
}

// ---- scenario: publish/read on the real SnapshotCell ---------------------

#[test]
fn model_publish_read_is_clean() {
    let cfg = ModelConfig::new("publish-read");
    let report = model::explore(&cfg, || {
        let mut engine = engine();
        let cell = Arc::new(SnapshotCell::new(AssignmentSnapshot::from_export(
            engine.export_snapshot(),
            1,
        )));
        let writer = {
            let cell = Arc::clone(&cell);
            thread::Builder::new()
                .name("cell-writer".to_string())
                .spawn(move || {
                    for version in 2..=3u64 {
                        engine
                            .insert_object(ObjectRecord::new(
                                5 + version,
                                Point::from_slice(&[0.3, 0.3]),
                            ))
                            .unwrap();
                        cell.publish(AssignmentSnapshot::from_export(
                            engine.export_snapshot(),
                            version,
                        ));
                    }
                })
                .unwrap()
        };
        // a second reader thread: two readers racing the writer (and each
        // other's slot refreshes) is what makes the interleaving space deep
        let other = {
            let cell = Arc::clone(&cell);
            thread::Builder::new()
                .name("cell-reader".to_string())
                .spawn(move || {
                    let mut reader = cell.reader();
                    let mut seen = reader.snapshot().version();
                    for _ in 0..2 {
                        let snapshot = reader.snapshot();
                        model::check(
                            snapshot.version() >= seen,
                            "per-reader versions are monotonic",
                        );
                        seen = snapshot.version();
                    }
                })
                .unwrap()
        };
        let mut reader = cell.reader();
        let mut seen = reader.snapshot().version();
        // spin until the final publication is visible; every step is a
        // schedule point, so the walk interleaves reads with publishes
        loop {
            let snapshot = reader.snapshot();
            let version = snapshot.version();
            model::check(version >= seen, "per-reader versions are monotonic");
            // publication is atomic: version v snapshots carry exactly the
            // objects inserted up to v (2 initial + one per publication)
            model::check(
                snapshot.objects().len() as u64 == 1 + version,
                "snapshot contents match the version (no torn publication)",
            );
            seen = version;
            if version >= 3 {
                break;
            }
            thread::yield_now();
        }
        writer.join().unwrap();
        other.join().unwrap();
        model::check(cell.version() == 3, "final version published");
    });
    assert!(report.clean(), "violation: {:?}", report.violation);
    assert!(
        report.distinct_interleavings >= coverage_floor(&cfg),
        "only {} distinct interleavings",
        report.distinct_interleavings
    );
}

#[test]
fn model_publish_read_is_clean_under_exhaustive_dfs() {
    let report = model::explore_dfs(&DfsConfig::new("publish-read-dfs"), || {
        let mut engine = engine();
        let cell = Arc::new(SnapshotCell::new(AssignmentSnapshot::from_export(
            engine.export_snapshot(),
            1,
        )));
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                engine
                    .insert_object(ObjectRecord::new(9, Point::from_slice(&[0.3, 0.3])))
                    .unwrap();
                cell.publish(AssignmentSnapshot::from_export(engine.export_snapshot(), 2));
            })
        };
        let mut reader = cell.reader();
        let first = reader.snapshot().version();
        let second = reader.snapshot().version();
        model::check(second >= first, "per-reader versions are monotonic");
        writer.join().unwrap();
        model::check(reader.snapshot().version() == 2, "join makes v2 visible");
    });
    // the preemption-bounded space of this small scenario is genuinely
    // small; exhaustive coverage of it, not raw volume, is the point here
    assert!(report.clean(), "violation: {:?}", report.violation);
    assert!(report.distinct_interleavings >= 10, "DFS barely branched");
}

// ---- scenario: queue backpressure (incl. oversized stop-and-go) ----------

#[test]
fn model_queue_backpressure_is_clean() {
    let cfg = ModelConfig::new("queue-backpressure");
    let report = model::explore(&cfg, || {
        let queue = Arc::new(UpdateQueue::new(2));
        let consumer = {
            let queue = Arc::clone(&queue);
            thread::Builder::new()
                .name("consumer".to_string())
                .spawn(move || {
                    let mut drained = 0usize;
                    while let Some(batches) = queue.pop(2) {
                        drained += batches.iter().map(Vec::len).sum::<usize>();
                    }
                    drained
                })
                .unwrap()
        };
        // capacity 2: the second and third pushes exercise blocking
        // backpressure; the oversized batch exercises stop-and-go (it only
        // enters an *empty* queue)
        queue.push(vec![op(0), op(1)]).unwrap();
        queue.push(vec![op(2)]).unwrap();
        queue.push(vec![op(3), op(4), op(5)]).unwrap(); // oversized
        queue.close();
        let drained = consumer.join().unwrap();
        model::check(drained == 6, "every queued update is drained exactly once");
        model::check(queue.queued_updates() == 0, "queue fully drained");
    });
    assert!(report.clean(), "violation: {:?}", report.violation);
    assert!(
        report.distinct_interleavings >= coverage_floor(&cfg),
        "only {} distinct interleavings",
        report.distinct_interleavings
    );
}

#[test]
fn model_capacity_one_oversized_batch_with_concurrent_shutdown() {
    let cfg = ModelConfig::new("queue-shutdown-race");
    let report = model::explore(&cfg, || {
        let queue = Arc::new(UpdateQueue::new(1));
        let consumer = {
            let queue = Arc::clone(&queue);
            thread::Builder::new()
                .name("consumer".to_string())
                .spawn(move || {
                    let mut drained = 0usize;
                    while let Some(batches) = queue.pop(1) {
                        drained += batches.iter().map(Vec::len).sum::<usize>();
                    }
                    drained
                })
                .unwrap()
        };
        let closer = {
            let queue = Arc::clone(&queue);
            thread::Builder::new()
                .name("closer".to_string())
                .spawn(move || queue.close())
                .unwrap()
        };
        // oversized (3 > capacity 1) while a concurrent close races the
        // push: either the batch is accepted and fully drained, or it is
        // rejected with Stopped and never partially visible
        let pushed = queue.push(vec![op(0), op(1), op(2)]);
        closer.join().unwrap();
        let drained = consumer.join().unwrap();
        match pushed {
            Ok(()) => model::check(drained == 3, "accepted batch drains whole"),
            Err(ServiceError::Stopped) => {
                model::check(drained == 0, "rejected batch leaves no trace")
            }
            Err(_) => model::check(false, "only Stopped is a legal push failure"),
        }
    });
    assert!(report.clean(), "violation: {:?}", report.violation);
}

#[test]
fn model_multi_producer_fairness_no_lost_wakeups() {
    let cfg = ModelConfig::new("queue-multi-producer");
    let report = model::explore(&cfg, || {
        let queue = Arc::new(UpdateQueue::new(1));
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let queue = Arc::clone(&queue);
                thread::Builder::new()
                    .name(format!("producer-{p}"))
                    .spawn(move || {
                        for i in 0..2u64 {
                            queue.push(vec![op(10 * p + i)]).unwrap();
                        }
                    })
                    .unwrap()
            })
            .collect();
        let consumer = {
            let queue = Arc::clone(&queue);
            thread::Builder::new()
                .name("consumer".to_string())
                .spawn(move || {
                    let mut got = Vec::new();
                    while let Some(batches) = queue.pop(1) {
                        for batch in batches {
                            got.extend(batch);
                        }
                    }
                    got
                })
                .unwrap()
        };
        for producer in producers {
            // a lost not_full wakeup would park a producer forever — the
            // scheduler reports that as a lost-wakeup deadlock on its own
            producer.join().unwrap();
        }
        queue.close();
        let got = consumer.join().unwrap();
        model::check(got.len() == 4, "all four updates arrive");
        // per-producer FIFO: each producer's second push follows its first
        for p in 0..2u64 {
            let ids: Vec<u64> = got
                .iter()
                .filter_map(|u| match u {
                    UpdateOp::RemoveObject(RecordId(id)) if id / 10 == p => Some(*id),
                    _ => None,
                })
                .collect();
            model::check(ids == vec![10 * p, 10 * p + 1], "per-producer FIFO holds");
        }
    });
    assert!(report.clean(), "violation: {:?}", report.violation);
}

// ---- scenario: flush barrier on a real shard -----------------------------

#[test]
fn model_flush_barrier_is_read_your_writes() {
    let cfg = ModelConfig::new("flush-barrier");
    let report = model::explore(&cfg, || {
        let shard = ShardHandle::start(&problem(), &EngineOptions::default(), 4, 8, 0).unwrap();
        shard
            .submit(UpdateOp::InsertObject(ObjectRecord::new(
                9,
                Point::from_slice(&[0.95, 0.95]),
            )))
            .unwrap();
        shard.flush().unwrap();
        // flush() acked: the write must already be published — reading the
        // cell *now* must see it (flush acked before publication would fail
        // here on some interleaving)
        let snapshot = shard.latest();
        model::check(snapshot.version() >= 2, "flush implies publication");
        model::check(
            snapshot.objects().iter().any(|o| o.id == RecordId(9)),
            "flushed write is visible to a subsequent read",
        );
        let stats = shard.stats();
        model::check(stats.processed >= 1, "flush implies processing");
        model::check(
            stats.submitted >= stats.processed,
            "submitted never trails processed",
        );
        drop(shard);
    });
    assert!(report.clean(), "violation: {:?}", report.violation);
    assert!(
        report.distinct_interleavings >= coverage_floor(&cfg),
        "only {} distinct interleavings",
        report.distinct_interleavings
    );
}

#[test]
fn model_flush_fails_not_hangs_when_the_writer_panics() {
    let mut cfg = ModelConfig::new("flush-vs-writer-panic");
    // the injected writer crash is the scenario, not a finding
    cfg.allow_panic_from = vec!["writer".to_string()];
    let report = model::explore(&cfg, || {
        let fault: crate::shard::WriterFault = Box::new(|event| {
            if matches!(
                event,
                crate::shard::FaultEvent::PrePublish { version } if version >= 2
            ) {
                // quiet panic (no hook noise): simulates a writer crash
                // after consuming updates, before publishing them
                std::panic::resume_unwind(Box::new("injected writer fault".to_string()));
            }
        });
        let shard = ShardHandle::start_with_fault(
            &problem(),
            &EngineOptions::default(),
            4,
            8,
            0,
            Some(fault),
        )
        .unwrap();
        let submitted = shard.submit(UpdateOp::InsertObject(ObjectRecord::new(
            9,
            Point::from_slice(&[0.95, 0.95]),
        )));
        match submitted {
            Ok(()) => {
                // the writer dies before publishing this batch: flush must
                // fail fast with the typed crash error (a hang here would
                // surface as a deadlock violation with the full trace)
                model::check(
                    shard.flush() == Err(ServiceError::WriterCrashed),
                    "flush fails typed (not hangs) after a writer crash",
                );
            }
            Err(e) => model::check(
                e == ServiceError::WriterCrashed,
                "only WriterCrashed is legal",
            ),
        }
        drop(shard);
    });
    assert!(report.clean(), "violation: {:?}", report.violation);
}

#[test]
fn model_parked_producer_fails_not_hangs_when_the_writer_crashes_on_a_full_queue() {
    let mut cfg = ModelConfig::new("full-queue-vs-writer-crash");
    // the injected writer crash is the scenario, not a finding
    cfg.allow_panic_from = vec!["writer".to_string()];
    let report = model::explore(&cfg, || {
        // capacity 1: the producer's second submission parks in the
        // backpressure wait unless the writer drained first. The writer
        // crashes at its first publication, i.e. possibly *while* a producer
        // is parked — before the fix, close() was never called on a panic
        // and the parked producer waited on not_full forever (the scheduler
        // reports exactly that as a whole-system deadlock with the trace).
        let fault: crate::shard::WriterFault = Box::new(|event| {
            // any writer publication (the caller publishes version 1)
            if matches!(event, crate::shard::FaultEvent::PrePublish { .. }) {
                std::panic::resume_unwind(Box::new("injected writer fault".to_string()));
            }
        });
        let shard = ShardHandle::start_with_fault(
            &problem(),
            &EngineOptions::default(),
            1,
            8,
            0,
            Some(fault),
        )
        .unwrap();
        let mut outcomes = Vec::new();
        for id in 0..2u64 {
            outcomes.push(shard.submit(UpdateOp::RemoveObject(RecordId(id))));
        }
        // every submission either made it into the queue before the crash
        // or failed with the typed crash error — never hung, never Stopped
        // (nothing closed this queue cleanly)
        for outcome in outcomes {
            model::check(
                matches!(outcome, Ok(()) | Err(ServiceError::WriterCrashed)),
                "a producer racing a writer crash sees Ok or WriterCrashed",
            );
        }
        // flush after the crash surfaces the typed error as well
        model::check(
            shard.flush() == Err(ServiceError::WriterCrashed),
            "flush after the crash is the typed error",
        );
        drop(shard);
    });
    assert!(report.clean(), "violation: {:?}", report.violation);
    assert!(
        report.distinct_interleavings >= coverage_floor(&cfg),
        "only {} distinct interleavings",
        report.distinct_interleavings
    );
}

// ---- scenario: background compactor vs writer publications ---------------

#[test]
fn model_background_compactor_is_clean() {
    let cfg = ModelConfig::new("background-compactor");
    let report = model::explore(&cfg, || {
        // eager threshold + batch 1: every departure leaves debt, every
        // compactor batch publishes — the maximum number of writer/compactor
        // publication interleavings this tiny scenario can produce
        let options = EngineOptions {
            compaction_threshold: Some(0.0),
            compaction_batch: 1,
            deferred_compaction: true,
            ..EngineOptions::default()
        };
        let shard = ShardHandle::start(&problem(), &options, 4, 8, 0).unwrap();
        let mut reader = shard.reader();
        let mut seen = reader.snapshot().version();
        // a departure (creates tombstone debt, wakes the compactor) racing
        // an arrival batch (a second writer publication)
        shard.submit(UpdateOp::RemoveObject(RecordId(1))).unwrap();
        shard
            .submit(UpdateOp::InsertObject(ObjectRecord::new(
                9,
                Point::from_slice(&[0.95, 0.95]),
            )))
            .unwrap();
        shard.flush().unwrap();
        let snapshot = reader.snapshot();
        model::check(
            snapshot.version() >= seen,
            "per-reader versions are monotonic",
        );
        model::check(
            snapshot.objects().iter().all(|o| o.id != RecordId(1))
                && snapshot.objects().iter().any(|o| o.id == RecordId(9)),
            "flush is read-your-writes with a compactor racing the writer",
        );
        seen = snapshot.version();
        // spin until a compactor publication shows the physical deletion;
        // every read interleaves with the compactor's bounded batches
        loop {
            let snapshot = reader.snapshot();
            let version = snapshot.version();
            model::check(version >= seen, "per-reader versions are monotonic");
            seen = version;
            // compaction never touches the matching: every published
            // snapshot, writer's or compactor's, carries the live population
            model::check(
                snapshot.objects().iter().all(|o| o.id != RecordId(1))
                    && snapshot.objects().iter().any(|o| o.id == RecordId(9)),
                "compactor publications carry the same live population",
            );
            if snapshot.stats().physical_deletes >= 1 {
                model::check(
                    snapshot.stats().tombstoned_objects == 0,
                    "the drain leaves no tombstone debt",
                );
                break;
            }
            thread::yield_now();
        }
        drop(shard);
    });
    assert!(report.clean(), "violation: {:?}", report.violation);
    assert!(
        report.distinct_interleavings >= coverage_floor(&cfg),
        "only {} distinct interleavings",
        report.distinct_interleavings
    );
}

// ---- mutation self-test: the detector detects ----------------------------

/// A deliberately broken `SnapshotCell` twin: the version counter is bumped
/// with a `Relaxed` store *before* the payload is written, and the payload
/// is plain (race-checked) data instead of being mutex-protected. Readers
/// that trust the version counter read the payload unordered — the exact
/// bug class the real cell's `Release`-while-holding-the-lock publish
/// protocol exists to prevent.
struct BrokenSnapshotCell {
    version: AtomicU64,
    payload: RaceCell<u64>,
}

impl BrokenSnapshotCell {
    fn new() -> Self {
        Self {
            version: AtomicU64::new(1),
            payload: RaceCell::new(1),
        }
    }

    fn publish(&self, version: u64) {
        // ordering: deliberately wrong — the mutant under test: Relaxed
        // severs the happens-before edge, and the payload write lands after
        // the version bump
        self.version.store(version, Ordering::Relaxed);
        self.payload.set(version);
    }

    fn read(&self) -> Option<u64> {
        // ordering: Acquire, but the mutant's store is Relaxed, so there is
        // no release to pair with — the payload read below is unordered
        if self.version.load(Ordering::Acquire) >= 2 {
            Some(self.payload.get())
        } else {
            None
        }
    }
}

#[test]
fn model_catches_the_broken_cell_mutant() {
    let mut cfg = ModelConfig::new("broken-cell-mutant");
    cfg.trace_dir = None; // expected failure; don't litter target/
    let report = model::explore(&cfg, || {
        let cell = Arc::new(BrokenSnapshotCell::new());
        let writer = {
            let cell = Arc::clone(&cell);
            thread::Builder::new()
                .name("mutant-writer".to_string())
                .spawn(move || cell.publish(2))
                .unwrap()
        };
        let _ = cell.read();
        writer.join().unwrap();
    });
    let violation = report
        .violation
        .expect("the detector must flag the Relaxed-publication mutant");
    assert_eq!(violation.kind, ViolationKind::DataRace);
    assert!(
        violation.seed.is_some(),
        "failure reports a replayable seed"
    );
    assert!(!violation.trace.is_empty(), "failure reports a trace");
    // the exact phrasing depends on which side of the race the walk hits
    // first (unordered read vs racing write) — both name the cell
    assert!(
        violation.message.contains("not ordered") || violation.message.contains("races"),
        "diagnostic explains the missing edge: {}",
        violation.message
    );
}
