//! Concurrency stress battery: many readers against a live, churning service.
//!
//! One producer thread drives thousands of updates (seeded streams plus
//! atomically-submitted "cohort" batches) into a two-shard service while
//! reader threads hammer the snapshot path. Every reader asserts, for every
//! snapshot it observes:
//!
//! * **versions are strictly monotonic** per reader and shard,
//! * **no torn batch is ever visible** — a cohort of objects submitted in one
//!   batch appears all-or-nothing, never partially,
//! * **every snapshot is internally consistent** — the matching passes
//!   [`verify_stable`] against the snapshot's own problem, and the
//!   function→objects / object→functions CSR directions agree,
//! * **flush is a read-your-writes barrier** — after the final flush, a
//!   fresh snapshot reflects every submitted update.
//!
//! `STRESS_EVENTS` / `STRESS_READERS` raise the load in the CI stress job.

use pref_assign::{ObjectRecord, Problem};
use pref_datagen::{update_stream, ObjectDistribution, UpdateStreamConfig};
use pref_engine::EngineOptions;
use pref_geom::Point;
use pref_rtree::RecordId;
use pref_service::{ServiceConfig, ShardedService, UpdateOp};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Cohort object ids live far above everything the update streams mint.
const COHORT_BASE: u64 = 1_000_000;
/// Objects per cohort: a cohort is inserted (and later removed) in ONE batch,
/// so every snapshot must contain 0 or all 3 of its members.
const COHORT_SIZE: u64 = 3;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn build_problem(seed: u64) -> Problem {
    let functions = pref_datagen::uniform_weight_functions(8, 3, seed);
    let objects = pref_datagen::independent_objects(50, 3, seed + 1000);
    Problem::from_parts(functions, objects).unwrap()
}

/// The cohort's member ids.
fn cohort_ids(cohort: u64) -> impl Iterator<Item = u64> {
    (0..COHORT_SIZE).map(move |i| COHORT_BASE + cohort * COHORT_SIZE + i)
}

/// Checks one observed snapshot: stability, CSR cross-consistency, and the
/// all-or-nothing cohort invariant.
fn check_snapshot(snapshot: &pref_service::AssignmentSnapshot, shard: usize) {
    snapshot.verify().unwrap_or_else(|v| {
        panic!(
            "shard {shard} snapshot v{} is unstable: {v}",
            snapshot.version()
        )
    });
    // cohort atomicity: group the high-range ids by cohort and demand 0 or all
    let mut cohort_counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for object in snapshot.objects() {
        if object.id.0 >= COHORT_BASE {
            *cohort_counts
                .entry((object.id.0 - COHORT_BASE) / COHORT_SIZE)
                .or_insert(0) += 1;
        }
    }
    for (cohort, count) in cohort_counts {
        assert_eq!(
            count,
            COHORT_SIZE,
            "shard {shard} snapshot v{} shows a torn cohort {cohort}: {count} of {COHORT_SIZE} members visible",
            snapshot.version()
        );
    }
    // CSR cross-consistency: both directions describe the same matching
    for function in snapshot.functions() {
        for (object, score) in snapshot
            .assignment_of(function.id)
            .expect("live function is known")
        {
            let reverse: Vec<_> = snapshot
                .functions_of(object)
                .expect("assigned object is known")
                .collect();
            assert!(
                reverse.iter().any(|&(f, s)| f == function.id && s == score),
                "shard {shard} snapshot v{}: pair ({}, {object}) missing from the reverse view",
                snapshot.version(),
                function.id
            );
        }
    }
}

#[test]
fn readers_never_observe_torn_or_unstable_state() {
    let num_events = env_or("STRESS_EVENTS", 2_000);
    let num_readers = env_or("STRESS_READERS", 8);
    let num_shards = 2usize;

    let service = Arc::new(
        ShardedService::start(
            vec![build_problem(71), build_problem(72)],
            &ServiceConfig {
                queue_capacity: 256,
                max_batch: 32,
                engine: EngineOptions {
                    compaction_threshold: Some(0.25),
                    compaction_batch: 16,
                    ..EngineOptions::default()
                },
                durability: None,
            },
        )
        .unwrap(),
    );
    let done = Arc::new(AtomicBool::new(false));
    let snapshots_seen = Arc::new(AtomicU64::new(0));

    // --- reader fleet ------------------------------------------------------
    let readers: Vec<_> = (0..num_readers)
        .map(|r| {
            let service = Arc::clone(&service);
            let done = Arc::clone(&done);
            let snapshots_seen = Arc::clone(&snapshots_seen);
            std::thread::Builder::new()
                .name(format!("stress-reader-{r}"))
                .spawn(move || {
                    let mut reader = service.reader();
                    let mut last_version = vec![0u64; num_shards];
                    let mut observed = 0u64;
                    let mut rounds = 0u64;
                    while !done.load(Ordering::Acquire) || rounds < 1 {
                        rounds += 1;
                        for (shard, last) in last_version.iter_mut().enumerate() {
                            let snapshot = reader.snapshot(shard).unwrap();
                            let version = snapshot.version();
                            match version.cmp(last) {
                                std::cmp::Ordering::Less => panic!(
                                    "reader {r} shard {shard}: version went backwards ({version} after {last})"
                                ),
                                std::cmp::Ordering::Equal => continue, // unchanged snapshot
                                std::cmp::Ordering::Greater => {}
                            }
                            *last = version;
                            observed += 1;
                            check_snapshot(snapshot, shard);
                        }
                    }
                    snapshots_seen.fetch_add(observed, Ordering::AcqRel);
                    observed
                })
                .unwrap()
        })
        .collect();

    // --- one producer: seeded stream batches + atomic cohort batches -------
    let mut streams: Vec<Vec<UpdateOp>> = (0..num_shards)
        .map(|shard| {
            let problem = build_problem(71 + shard as u64);
            let live_objects: Vec<RecordId> = problem.objects().iter().map(|o| o.id).collect();
            let live_functions: Vec<u64> =
                problem.functions().iter().map(|f| f.id.0 as u64).collect();
            update_stream(
                &UpdateStreamConfig {
                    num_events: num_events / num_shards,
                    dims: 3,
                    distribution: ObjectDistribution::Independent,
                    insert_fraction: 0.5,
                    object_fraction: 0.8,
                    min_objects: 8,
                    min_functions: 2,
                    max_capacity: 2,
                    seed: 4040 + shard as u64,
                },
                &live_objects,
                &live_functions,
            )
            .iter()
            .map(UpdateOp::from_event)
            .collect()
        })
        .collect();

    let mut next_cohort = 0u64;
    let mut live_cohorts: Vec<u64> = Vec::new();
    let mut batch_no = 0usize;
    while streams.iter().any(|s| !s.is_empty()) {
        for (shard, stream) in streams.iter_mut().enumerate() {
            if stream.is_empty() {
                continue;
            }
            // a small stream batch (1..=8 events), applied atomically
            let take = (batch_no % 8) + 1;
            let batch: Vec<UpdateOp> = stream.drain(..take.min(stream.len())).collect();
            service.submit_batch(shard, batch).unwrap();
        }
        // every 4th round: insert a cohort in one batch on shard 0, and
        // remove the oldest live cohort in one batch
        if batch_no.is_multiple_of(4) {
            let cohort = next_cohort;
            next_cohort += 1;
            let batch: Vec<UpdateOp> = cohort_ids(cohort)
                .enumerate()
                .map(|(i, id)| {
                    let c = 0.15 + 0.2 * i as f64;
                    UpdateOp::InsertObject(ObjectRecord::new(
                        id,
                        Point::from_slice(&[c, 1.0 - c, 0.5]),
                    ))
                })
                .collect();
            service.submit_batch(0, batch).unwrap();
            live_cohorts.push(cohort);
            if live_cohorts.len() > 2 {
                let victim = live_cohorts.remove(0);
                let batch: Vec<UpdateOp> = cohort_ids(victim)
                    .map(|id| UpdateOp::RemoveObject(RecordId(id)))
                    .collect();
                service.submit_batch(0, batch).unwrap();
            }
        }
        batch_no += 1;
    }

    // read-your-writes: after the flush a fresh snapshot reflects everything
    service.flush().unwrap();
    done.store(true, Ordering::Release);
    let mut total_reader_observed = 0u64;
    for reader in readers {
        total_reader_observed += reader.join().expect("reader panicked");
    }

    let stats = service.stats();
    assert_eq!(
        stats.rejected(),
        0,
        "stream events and cohort batches are all valid: {:?}",
        stats
            .shards
            .iter()
            .filter_map(|s| s.last_rejection.clone())
            .collect::<Vec<_>>()
    );
    assert_eq!(stats.processed(), stats.submitted());
    assert!(stats.submitted() >= num_events as u64);

    // final state: the last flush published everything; check the cohorts
    // that must still be live are exactly the visible ones
    let mut reader = service.reader();
    for shard in 0..num_shards {
        let snapshot = reader.snapshot(shard).unwrap();
        check_snapshot(snapshot, shard);
    }
    let snapshot = reader.snapshot(0).unwrap();
    let visible: HashSet<u64> = snapshot
        .objects()
        .iter()
        .filter(|o| o.id.0 >= COHORT_BASE)
        .map(|o| o.id.0)
        .collect();
    let expected: HashSet<u64> = live_cohorts.iter().flat_map(|&c| cohort_ids(c)).collect();
    assert_eq!(visible, expected, "flush barrier must be read-your-writes");

    // the readers actually exercised concurrent snapshots (each saw at least
    // its initial version; collectively far more)
    assert_eq!(
        total_reader_observed,
        snapshots_seen.load(Ordering::Acquire)
    );
    assert!(
        total_reader_observed >= num_readers as u64 * num_shards as u64,
        "readers observed too few snapshots: {total_reader_observed}"
    );

    Arc::try_unwrap(service)
        .expect("all clones dropped")
        .shutdown()
        .unwrap();
}

/// A writer that stops mid-stream (service drop without shutdown) must not
/// hang or poison anything: producers fail fast, readers keep serving the
/// last published snapshot.
#[test]
fn dropping_the_service_leaves_readers_serving() {
    let service = ShardedService::start(vec![build_problem(5)], &ServiceConfig::default()).unwrap();
    service
        .submit(
            0,
            UpdateOp::InsertObject(ObjectRecord::new(
                COHORT_BASE,
                Point::from_slice(&[0.9, 0.9, 0.9]),
            )),
        )
        .unwrap();
    service.flush().unwrap();
    let mut reader = service.reader();
    let version = reader.snapshot(0).unwrap().version();
    drop(service); // closes queues and joins writers
    let snapshot = reader.snapshot(0).unwrap();
    assert_eq!(snapshot.version(), version);
    snapshot.verify().unwrap();
    assert!(snapshot
        .objects()
        .iter()
        .any(|o| o.id == RecordId(COHORT_BASE)));
}
