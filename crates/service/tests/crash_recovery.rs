//! Fault-injection battery for the per-shard durability layer.
//!
//! The invariant under test, end to end: **recovery never observes a torn
//! batch and never loses an acknowledged one.** Every recovered matching
//! must equal — canonically, pair for pair and score bit for score bit —
//! the pre-crash matching at some batch boundary at or after the last
//! acknowledged flush. The battery kills writers at every fault milestone,
//! truncates the log at every byte offset, corrupts records and
//! checkpoints, and crosses recovery with every compaction policy.

use pref_assign::{ObjectRecord, PreferenceFunction, Problem};
use pref_engine::{AssignmentEngine, EngineOptions};
use pref_geom::{LinearFunction, Point};
use pref_rtree::RecordId;
use pref_service::{
    AssignmentSnapshot, DurabilityConfig, FaultEvent, FsyncPolicy, ServiceConfig, ShardHandle,
    ShardedService, UpdateOp, WriterFault,
};
use pref_storage::wal;
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

/// Size of a WAL record header (mirrors `pref_storage::wal`): length (u32) +
/// sequence (u64) + crc (u64).
const RECORD_HEADER: usize = 20;

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pref_service_crash_{}_{name}", std::process::id()));
    let _ = fs::remove_dir_all(&p);
    p
}

/// Deterministic pseudo-random unit coordinates (splitmix64).
fn coord(seed: &mut u64) -> f64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

fn point(seed: &mut u64) -> Point {
    Point::from_slice(&[coord(seed), coord(seed)])
}

fn base_problem() -> Problem {
    let mut seed = 0xdead_beefu64;
    let functions = vec![
        PreferenceFunction::new(0, LinearFunction::new(vec![0.9, 0.1]).unwrap()),
        PreferenceFunction::new(1, LinearFunction::new(vec![0.5, 0.5]).unwrap()),
        PreferenceFunction::new(2, LinearFunction::new(vec![0.1, 0.9]).unwrap()),
    ];
    let objects = (0..8u64)
        .map(|i| ObjectRecord::new(i, point(&mut seed)))
        .collect();
    Problem::new(functions, objects).unwrap()
}

/// The scripted workload: six batches mixing arrivals, departures, a
/// rejected op (unknown id) and function churn.
fn batches() -> Vec<Vec<UpdateOp>> {
    let mut seed = 0x0b57_ac1eu64;
    let mut obj = |id: u64| UpdateOp::InsertObject(ObjectRecord::new(id, point(&mut seed)));
    let fun = |id: usize, w: [f64; 2]| {
        UpdateOp::InsertFunction(PreferenceFunction::new(
            id,
            LinearFunction::new(w.to_vec()).unwrap(),
        ))
    };
    vec![
        vec![obj(100), obj(101)],
        vec![UpdateOp::RemoveObject(RecordId(0)), fun(10, [0.7, 0.3])],
        vec![
            UpdateOp::RemoveFunction(pref_assign::FunctionId(1)),
            obj(102),
        ],
        vec![
            UpdateOp::RemoveObject(RecordId(100)),
            UpdateOp::RemoveObject(RecordId(777)), // unknown: rejected, not fatal
        ],
        vec![obj(103), obj(104), UpdateOp::RemoveObject(RecordId(2))],
        vec![fun(11, [0.2, 0.8]), UpdateOp::RemoveObject(RecordId(101))],
    ]
}

/// Canonical matching of a published snapshot: sorted
/// `(function, object, score-bits)` triples — the byte-identity the issue's
/// acceptance criterion is stated in.
fn canonical(snap: &AssignmentSnapshot) -> Vec<(usize, u64, u64)> {
    let mut out = Vec::new();
    for f in snap.functions() {
        if let Some(assigned) = snap.assignment_of(f.id) {
            for (object, score) in assigned {
                out.push((f.id.0, object.0, score.to_bits()));
            }
        }
    }
    out.sort_unstable();
    out
}

fn engine_canonical(engine: &AssignmentEngine) -> Vec<(usize, u64, u64)> {
    let mut out: Vec<(usize, u64, u64)> = engine
        .export_snapshot()
        .pairs
        .iter()
        .map(|&(f, o, s)| (f.0, o.0, s.to_bits()))
        .collect();
    out.sort_unstable();
    out
}

/// The oracle: a reference engine (no service, no durability) applied batch
/// by batch. `oracle[b]` is the canonical matching after the first `b`
/// batches.
fn oracle(
    problem: &Problem,
    batches: &[Vec<UpdateOp>],
    options: &EngineOptions,
) -> Vec<Vec<(usize, u64, u64)>> {
    let mut engine = AssignmentEngine::new(problem, options).unwrap();
    let mut out = vec![engine_canonical(&engine)];
    for batch in batches {
        for op in batch {
            let _ = op.apply(&mut engine);
        }
        out.push(engine_canonical(&engine));
    }
    out
}

/// Runs a durable shard over the scripted batches, one batch per
/// publication, optionally killing the writer at a fault milestone. Returns
/// the number of batches acknowledged (flushed) before the crash.
fn run_durable(
    dir: &Path,
    options: &EngineOptions,
    checkpoint_every: u64,
    fault: Option<WriterFault>,
) -> usize {
    let shard = ShardHandle::start_durable_with_fault(
        &base_problem(),
        options,
        64,
        16,
        0,
        dir,
        FsyncPolicy::Always,
        checkpoint_every,
        fault,
    )
    .unwrap();
    let mut acked = 0;
    for batch in batches() {
        if shard.submit_batch(batch).is_err() {
            break;
        }
        if shard.flush().is_err() {
            break;
        }
        acked += 1;
    }
    drop(shard); // joins the (possibly dead) writer
    acked
}

fn recover_canonical(
    dir: &Path,
    options: &EngineOptions,
    checkpoint_every: u64,
) -> Vec<(usize, u64, u64)> {
    let shard = ShardHandle::recover_with_fault(
        dir,
        options,
        64,
        16,
        0,
        FsyncPolicy::Always,
        checkpoint_every,
        None,
    )
    .unwrap();
    let snap = shard.latest();
    assert_eq!(snap.version(), 1, "recovered shards restart at version 1");
    snap.verify().expect("recovered matching must be stable");
    canonical(&snap)
}

/// A quiet injected crash (no panic-hook noise in the test output).
fn crash() -> ! {
    std::panic::resume_unwind(Box::new("injected writer crash".to_string()))
}

#[test]
fn writer_killed_before_each_publication_recovers_the_logged_boundary() {
    let options = EngineOptions::default();
    let canon = oracle(&base_problem(), &batches(), &options);
    // batch b (1-based) publishes version b + 1; a kill at PrePublish V
    // means batches 1..=V-1 are logged and synced, batches 1..=V-2 acked
    for kill_at in 2..=7u64 {
        let dir = temp_dir(&format!("kill_v{kill_at}"));
        let fault: WriterFault = Box::new(move |event| {
            if event == (FaultEvent::PrePublish { version: kill_at }) {
                crash();
            }
        });
        let acked = run_durable(&dir, &options, 100, Some(fault));
        assert_eq!(acked as u64, kill_at.min(7) - 2, "kill at {kill_at}");
        let recovered = recover_canonical(&dir, &options, 100);
        let logged = (kill_at - 1) as usize;
        assert_eq!(
            recovered, canon[logged],
            "kill at version {kill_at}: recovery must land on the logged batch boundary"
        );
        assert!(
            recovered == canon[logged] && logged >= acked,
            "an acknowledged batch may never be lost"
        );
        fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn writer_killed_right_after_a_checkpoint_recovers_identically() {
    let options = EngineOptions::default();
    let canon = oracle(&base_problem(), &batches(), &options);
    let dir = temp_dir("kill_after_ckpt");
    // checkpoint every 3 batches; die the instant the first rotation ends
    // (new segment + checkpoint written, old generation collected)
    let fault: WriterFault = Box::new(|event| {
        if matches!(event, FaultEvent::CheckpointWritten { .. }) {
            crash();
        }
    });
    run_durable(&dir, &options, 3, Some(fault));
    let recovered = recover_canonical(&dir, &options, 3);
    assert_eq!(recovered, canon[3], "crash right after rotation");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn log_truncated_at_every_byte_offset_recovers_a_batch_prefix() {
    let options = EngineOptions::default();
    let canon = oracle(&base_problem(), &batches(), &options);
    let dir = temp_dir("truncate_src");
    let acked = run_durable(&dir, &options, 100, None);
    assert_eq!(acked, 6);

    let full = fs::read(wal::segment_path(&dir, 0)).unwrap();
    // batch boundaries within the segment: record b ends batch b + 1
    let mut boundaries = vec![0usize];
    for (_, payload) in wal::read_segment(&dir, 0).unwrap().records {
        boundaries.push(boundaries.last().unwrap() + RECORD_HEADER + payload.len());
    }
    assert_eq!(*boundaries.last().unwrap(), full.len());

    let work = temp_dir("truncate_work");
    for cut in 0..=full.len() {
        fs::create_dir_all(&work).unwrap();
        fs::copy(
            wal::checkpoint_path(&dir, 0),
            wal::checkpoint_path(&work, 0),
        )
        .unwrap();
        fs::write(wal::segment_path(&work, 0), &full[..cut]).unwrap();
        let whole = boundaries[1..].iter().filter(|&&b| b <= cut).count();
        let recovered = recover_canonical(&work, &options, 100);
        assert_eq!(
            recovered, canon[whole],
            "cut at byte {cut}: exactly {whole} whole batches must replay"
        );
        fs::remove_dir_all(&work).ok();
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_record_stops_replay_at_the_previous_boundary() {
    let options = EngineOptions::default();
    let canon = oracle(&base_problem(), &batches(), &options);
    let dir = temp_dir("corrupt_src");
    run_durable(&dir, &options, 100, None);
    let full = fs::read(wal::segment_path(&dir, 0)).unwrap();
    let records = wal::read_segment(&dir, 0).unwrap().records;
    let mut offsets = vec![0usize];
    for (_, payload) in &records {
        offsets.push(offsets.last().unwrap() + RECORD_HEADER + payload.len());
    }

    let work = temp_dir("corrupt_work");
    for (k, window) in offsets.windows(2).enumerate() {
        fs::create_dir_all(&work).unwrap();
        fs::copy(
            wal::checkpoint_path(&dir, 0),
            wal::checkpoint_path(&work, 0),
        )
        .unwrap();
        let mut bad = full.clone();
        // flip one payload byte of record k: its checksum must reject the
        // record and everything after it
        bad[window[0] + RECORD_HEADER] ^= 0x40;
        fs::write(wal::segment_path(&work, 0), &bad).unwrap();
        let recovered = recover_canonical(&work, &options, 100);
        assert_eq!(
            recovered, canon[k],
            "corruption in record {k} must truncate replay to {k} batches"
        );
        fs::remove_dir_all(&work).ok();
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_newest_checkpoint_falls_back_to_the_previous_generation() {
    let options = EngineOptions::default();
    let canon = oracle(&base_problem(), &batches(), &options);
    let dir = temp_dir("ckpt_fallback");
    // checkpoint_every=2 over 6 batches: rotations at sequences 2, 4 and 6;
    // generation 4 is kept as fallback behind generation 6
    run_durable(&dir, &options, 2, None);
    let ckpts: Vec<u64> = wal::list_checkpoints(&dir)
        .unwrap()
        .into_iter()
        .map(|(s, _)| s)
        .collect();
    assert_eq!(
        ckpts,
        vec![4, 6],
        "GC keeps exactly one fallback generation"
    );

    // sanity: the pristine directory recovers to the final state
    assert_eq!(recover_canonical(&dir, &options, 2), canon[6]);

    // corrupt the newest checkpoint: recovery must fall back to generation
    // 4 and replay across both remaining segments to the same final state
    let path = wal::checkpoint_path(&dir, 6);
    let mut bytes = fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&path, &bytes).unwrap();
    assert_eq!(
        recover_canonical(&dir, &options, 2),
        canon[6],
        "fallback recovery must reach the identical final matching"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_is_equivalent_across_compaction_policies() {
    // eager, default, and tombstone-only compaction change *when* departures
    // are physically deleted, never the matching: a crash + recovery under
    // any policy must land on the same canonical boundary
    let policies = [
        ("eager", Some(0.0)),
        ("default", Some(0.25)),
        ("tombstone-only", None),
    ];
    let mut recovered = Vec::new();
    for (name, threshold) in policies {
        let options = EngineOptions {
            compaction_threshold: threshold,
            compaction_batch: 4,
            ..EngineOptions::default()
        };
        let canon = oracle(&base_problem(), &batches(), &options);
        let dir = temp_dir(&format!("policy_{name}"));
        let fault: WriterFault = Box::new(|event| {
            if event == (FaultEvent::PrePublish { version: 6 }) {
                crash();
            }
        });
        run_durable(&dir, &options, 2, Some(fault));
        let got = recover_canonical(&dir, &options, 2);
        assert_eq!(got, canon[5], "policy {name}");
        recovered.push(got);
        fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(recovered[0], recovered[1]);
    assert_eq!(recovered[1], recovered[2]);
}

#[test]
fn sharded_service_recovers_all_shards_after_clean_shutdown_and_crash() {
    let root = temp_dir("service");
    let config = ServiceConfig {
        durability: Some(DurabilityConfig {
            dir: root.clone(),
            fsync: FsyncPolicy::Always,
            checkpoint_every: 3,
        }),
        ..ServiceConfig::default()
    };
    let mut seed = 0x5e5e_5e5eu64;
    let service = ShardedService::start(vec![base_problem(), base_problem()], &config).unwrap();
    for (b, batch) in batches().into_iter().enumerate() {
        service.submit_batch(b % 2, batch).unwrap();
        service.flush().unwrap();
    }
    service
        .submit(
            1,
            UpdateOp::InsertObject(ObjectRecord::new(500, point(&mut seed))),
        )
        .unwrap();
    service.flush().unwrap();
    let before: Vec<_> = (0..2)
        .map(|s| canonical(&service.shard(s).unwrap().latest()))
        .collect();
    service.shutdown().unwrap();

    let recovered = ShardedService::recover(&config).unwrap();
    assert_eq!(recovered.num_shards(), 2);
    for (s, expected) in before.iter().enumerate() {
        let snap = recovered.shard(s).unwrap().latest();
        snap.verify().unwrap();
        assert_eq!(
            &canonical(&snap),
            expected,
            "shard {s} must recover its pre-shutdown matching"
        );
    }
    // the recovered service keeps serving and stays durable
    recovered
        .submit(
            0,
            UpdateOp::InsertObject(ObjectRecord::new(600, point(&mut seed))),
        )
        .unwrap();
    recovered.flush().unwrap();
    let after = canonical(&recovered.shard(0).unwrap().latest());
    recovered.shutdown().unwrap();
    let again = ShardedService::recover(&config).unwrap();
    assert_eq!(canonical(&again.shard(0).unwrap().latest()), after);
    again.shutdown().unwrap();
    fs::remove_dir_all(&root).ok();
}

#[derive(Debug, Clone)]
enum PropOp {
    Insert {
        coords: Vec<f64>,
    },
    /// Remove the i-th (modulo population) live object.
    RemoveNth(usize),
}

fn arb_batches() -> impl Strategy<Value = Vec<Vec<PropOp>>> {
    let insert =
        proptest::collection::vec(0.0f64..1.0, 2).prop_map(|coords| PropOp::Insert { coords });
    let remove = (0usize..64).prop_map(PropOp::RemoveNth);
    let batch = proptest::collection::vec(prop_oneof![3 => insert, 2 => remove], 1..4);
    proptest::collection::vec(batch, 1..10)
}

/// Resolves the abstract ops into concrete `UpdateOp` batches (ids are
/// assigned deterministically, removals target live objects).
fn resolve(batches: &[Vec<PropOp>]) -> Vec<Vec<UpdateOp>> {
    let mut live: Vec<u64> = (0..8).collect();
    let mut next_id = 1000u64;
    let mut out = Vec::new();
    for batch in batches {
        let mut ops = Vec::new();
        for op in batch {
            match op {
                PropOp::Insert { coords } => {
                    ops.push(UpdateOp::InsertObject(ObjectRecord::new(
                        next_id,
                        Point::from_slice(coords),
                    )));
                    live.push(next_id);
                    next_id += 1;
                }
                PropOp::RemoveNth(n) => {
                    if live.len() > 1 {
                        let id = live.swap_remove(n % live.len());
                        ops.push(UpdateOp::RemoveObject(RecordId(id)));
                    }
                }
            }
        }
        if !ops.is_empty() {
            out.push(ops);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Recovery is exact and idempotent under arbitrary churn: a cleanly
    /// shut down shard recovers to its final matching, and recovering the
    /// recovered directory again (no new writes) yields the identical state.
    #[test]
    fn recovery_is_exact_and_idempotent(abstract_batches in arb_batches()) {
        let options = EngineOptions::default();
        let batches = resolve(&abstract_batches);
        let canon = oracle(&base_problem(), &batches, &options);
        let dir = temp_dir(&format!("prop_{:x}", abstract_batches.len() * 31 + batches.len()));

        let shard = ShardHandle::start_durable_with_fault(
            &base_problem(), &options, 64, 16, 0, &dir,
            FsyncPolicy::Always, 4, None,
        ).unwrap();
        for batch in &batches {
            shard.submit_batch(batch.clone()).unwrap();
            shard.flush().unwrap();
        }
        drop(shard);

        let first = recover_canonical(&dir, &options, 4);
        prop_assert_eq!(&first, canon.last().unwrap(), "recovery must be exact");
        // idempotence: the first recovery truncated tails / collected
        // unreachable generations; a second recovery sees the same truth
        let second = recover_canonical(&dir, &options, 4);
        prop_assert_eq!(&first, &second, "recovery must be idempotent");
        fs::remove_dir_all(&dir).ok();
    }
}
