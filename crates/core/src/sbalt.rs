//! SB-alt: the storage variant for disk-resident function sets (Section 7.6).
//!
//! When `F` is larger than `O` (and does not fit in memory), the `D` sorted
//! coefficient lists are materialized on disk and the best function for every
//! current skyline object is found with one *batched* scan over the lists per
//! loop, instead of per-object TA searches. List I/O is charged explicitly and
//! reported in [`RunMetrics::aux_io`].

use crate::matching::Assignment;
use crate::metrics::{AssignmentResult, MemoryGauge, RunMetrics};
use crate::problem::Problem;
use pref_geom::Point;
use pref_rtree::{RTree, RecordId};
use pref_skyline::{compute_skyline_bbs, update_skyline, Skyline};
use pref_topk::{batch_best_functions, DiskFunctionLists};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Runs the SB-alt assignment algorithm. `list_buffer_frames` is the size (in
/// 4 KiB blocks) of the LRU buffer in front of the on-disk coefficient lists;
/// the paper uses 2% of `|F|`.
pub fn sb_alt(problem: &Problem, tree: &mut RTree, list_buffer_frames: usize) -> AssignmentResult {
    let start = Instant::now();
    let stats_before = tree.stats();

    let functions: Vec<pref_geom::LinearFunction> = problem
        .functions()
        .iter()
        .map(|f| f.function.clone())
        .collect();
    let mut disk = DiskFunctionLists::new(&functions, list_buffer_frames);

    let mut f_remaining: Vec<u32> = problem.functions().iter().map(|f| f.capacity).collect();
    let mut o_remaining: HashMap<RecordId, u32> = problem
        .objects()
        .iter()
        .map(|o| (o.id, o.capacity))
        .collect();
    let mut demand: u64 = f_remaining.iter().map(|&c| c as u64).sum();
    let mut supply: u64 = o_remaining.values().map(|&c| c as u64).sum();

    let mut skyline: Skyline = compute_skyline_bbs(tree);
    let mut excluded: HashSet<RecordId> = HashSet::new();
    let _ = &excluded;

    let mut assignment = Assignment::new();
    let mut gauge = MemoryGauge::new();
    let mut loops: u64 = 0;
    let mut searches: u64 = 0;

    while demand > 0 && supply > 0 && !skyline.is_empty() {
        loops += 1;
        let sky_objects: Vec<(RecordId, Point)> = skyline
            .data_entries()
            .map(|d| (d.record, d.point.clone()))
            .collect();
        let points: Vec<Point> = sky_objects.iter().map(|(_, p)| p.clone()).collect();
        searches += 1;
        let best = batch_best_functions(&mut disk, &points);

        let mut object_best: HashMap<RecordId, (usize, f64)> = HashMap::new();
        for ((record, _), best) in sky_objects.iter().zip(best) {
            match best {
                Some(pair) => {
                    object_best.insert(*record, pair);
                }
                None => break,
            }
        }
        if object_best.is_empty() {
            break;
        }

        let candidate_functions: HashSet<usize> = object_best.values().map(|&(f, _)| f).collect();
        let mut function_best: HashMap<usize, (RecordId, f64)> = HashMap::new();
        for &fi in &candidate_functions {
            let mut best: Option<(RecordId, f64)> = None;
            for (record, point) in &sky_objects {
                let s = disk.inner().score(fi, point);
                if best.is_none_or(|(_, bs)| s > bs) {
                    best = Some((*record, s));
                }
            }
            if let Some(b) = best {
                function_best.insert(fi, b);
            }
        }

        let mut pairs: Vec<(usize, RecordId, f64)> = Vec::new();
        for (&fi, &(obj, score)) in &function_best {
            if object_best.get(&obj).map(|&(f, _)| f) == Some(fi) {
                pairs.push((fi, obj, score));
            }
        }
        if pairs.is_empty() {
            if let Some((&fi, &(obj, score))) = function_best.iter().max_by(|a, b| {
                a.1 .1
                    .partial_cmp(&b.1 .1)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }) {
                pairs.push((fi, obj, score));
            } else {
                break;
            }
        }

        pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        let mut removed_objects = Vec::new();
        for (fi, obj, score) in pairs {
            if demand == 0 || supply == 0 {
                break;
            }
            assignment.push(problem.functions()[fi].id, obj, score);
            demand -= 1;
            supply -= 1;
            f_remaining[fi] -= 1;
            if f_remaining[fi] == 0 {
                disk.remove(fi);
            }
            let oc = o_remaining.get_mut(&obj).expect("object exists");
            *oc -= 1;
            if *oc == 0 {
                excluded.insert(obj);
                if let Some(sky_obj) = skyline.remove(obj) {
                    removed_objects.push(sky_obj);
                }
            }
        }
        if !removed_objects.is_empty() {
            update_skyline(tree, &mut skyline, removed_objects);
        }
        gauge.observe(skyline.memory_bytes());
    }

    let metrics = RunMetrics {
        object_io: tree.stats().since(&stats_before),
        aux_io: disk.stats(),
        cpu_time: start.elapsed(),
        peak_memory_bytes: gauge.peak(),
        loops,
        searches,
    };
    AssignmentResult {
        assignment,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::verify_stable;
    use crate::oracle::oracle;
    use crate::problem::{ObjectRecord, PreferenceFunction};
    use crate::sb::{sb, SbOptions};
    use pref_datagen::{anti_correlated_objects, independent_objects, uniform_weight_functions};

    #[test]
    fn matches_oracle_on_random_instances() {
        for seed in [201u64, 202] {
            let functions = uniform_weight_functions(150, 3, seed);
            let objects = independent_objects(80, 3, seed + 10);
            let p = Problem::from_parts(functions, objects).unwrap();
            let mut tree = p.build_tree(Some(8), 0.0);
            let result = sb_alt(&p, &mut tree, 4);
            verify_stable(&p, &result.assignment).unwrap();
            assert_eq!(result.assignment.canonical(), oracle(&p).canonical());
        }
    }

    #[test]
    fn agrees_with_standard_sb() {
        let functions = uniform_weight_functions(200, 4, 211);
        let objects = anti_correlated_objects(100, 4, 212);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree_a = p.build_tree(Some(8), 0.0);
        let mut tree_b = p.build_tree(Some(8), 0.0);
        let alt = sb_alt(&p, &mut tree_a, 8);
        let std = sb(&p, &mut tree_b, &SbOptions::default());
        assert_eq!(alt.assignment.canonical(), std.assignment.canonical());
    }

    #[test]
    fn charges_list_io_as_aux() {
        let functions = uniform_weight_functions(3000, 3, 221);
        let objects = independent_objects(60, 3, 222);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(8), 0.0);
        let result = sb_alt(&p, &mut tree, 8);
        assert!(result.metrics.aux_io.logical_reads > 0);
        assert!(result.metrics.total_io() >= result.metrics.aux_io.io_accesses());
        verify_stable(&p, &result.assignment).unwrap();
    }

    #[test]
    fn capacitated_variant() {
        let functions: Vec<PreferenceFunction> = uniform_weight_functions(40, 3, 231)
            .into_iter()
            .enumerate()
            .map(|(i, f)| PreferenceFunction::new(i, f).with_capacity(1 + (i as u32 % 3)))
            .collect();
        let objects: Vec<ObjectRecord> = independent_objects(30, 3, 232)
            .into_iter()
            .map(|(id, p)| ObjectRecord {
                id,
                point: p,
                capacity: 2,
            })
            .collect();
        let p = Problem::new(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(8), 0.0);
        let result = sb_alt(&p, &mut tree, 4);
        verify_stable(&p, &result.assignment).unwrap();
        assert_eq!(result.assignment.canonical(), oracle(&p).canonical());
    }
}
