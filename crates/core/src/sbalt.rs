//! SB-alt: the storage variant for disk-resident function sets (Section 7.6).
//!
//! When `F` is larger than `O` (and does not fit in memory), the `D` sorted
//! coefficient lists are materialized on disk and the best function for every
//! current skyline object is found with one *batched* scan over the lists per
//! loop, instead of per-object TA searches. List I/O is charged explicitly and
//! reported in [`RunMetrics::aux_io`].

use crate::metrics::{AssignmentResult, MemoryGauge, RunMetrics};
use crate::problem::Problem;
use crate::scaffold::StableLoop;
use pref_geom::Point;
use pref_rtree::RTree;
use pref_skyline::{compute_skyline_bbs, update_skyline, Skyline};
use pref_topk::{batch_best_functions, DiskFunctionLists};
use std::time::Instant;

/// Runs the SB-alt assignment algorithm. `list_buffer_frames` is the size (in
/// 4 KiB blocks) of the LRU buffer in front of the on-disk coefficient lists;
/// the paper uses 2% of `|F|`. Scoring threads resolve from the environment
/// (see [`sb_alt_with_threads`]).
pub fn sb_alt(problem: &Problem, tree: &mut RTree, list_buffer_frames: usize) -> AssignmentResult {
    sb_alt_with_threads(problem, tree, list_buffer_frames, None)
}

/// [`sb_alt`] with an explicit worker-thread count for the reciprocal-pair
/// scoring phase. `None` resolves via [`pref_sync::resolve_threads`]
/// (`PREF_THREADS`, then available parallelism; always 1 in model-capable
/// builds). The matching is canonical-identical at any thread count.
pub fn sb_alt_with_threads(
    problem: &Problem,
    tree: &mut RTree,
    list_buffer_frames: usize,
    threads: Option<usize>,
) -> AssignmentResult {
    let start = Instant::now();
    let stats_before = tree.stats();

    let functions: Vec<pref_geom::LinearFunction> = problem
        .functions()
        .iter()
        .map(|f| f.function.clone())
        .collect();
    let mut disk = DiskFunctionLists::new(&functions, list_buffer_frames);
    let score_table = disk.inner().score_table();
    let threads = pref_sync::resolve_threads(threads);
    let pool = (threads > 1).then(|| pref_sync::WorkStealingPool::with_threads(threads));

    let mut skyline: Skyline = compute_skyline_bbs(tree);

    let mut state = StableLoop::new(problem);
    let mut gauge = MemoryGauge::new();
    let mut searches: u64 = 0;

    while state.active(&skyline) {
        let stamp = state.begin_loop();
        let sky_views: Vec<(usize, pref_rtree::RecordId, &Point)> =
            state.sky_views(problem, &skyline);
        // the batch scanner needs the query points as one owned slice
        let points: Vec<Point> = sky_views.iter().map(|&(_, _, p)| p.clone()).collect();
        searches += 1;
        let best = batch_best_functions(&mut disk, &points);

        let mut any_best = false;
        for (&(oi, _, _), best) in sky_views.iter().zip(best) {
            match best {
                Some((fi, score)) => {
                    state.note_best(stamp, oi, fi, score);
                    any_best = true;
                }
                None => break,
            }
        }
        if !any_best {
            break;
        }

        // --- reciprocal pairs (shared with sb, see `pairing`) ---------------
        let pairs = state.reciprocal_pairs(stamp, &sky_views, &score_table, pool.as_ref());
        if pairs.is_empty() {
            break;
        }

        let removed_objects = state.commit(
            problem,
            pairs,
            &mut skyline,
            |fi| {
                disk.remove(fi);
            },
            |_| {},
        );
        if !removed_objects.is_empty() {
            update_skyline(tree, &mut skyline, removed_objects);
        }
        gauge.observe(skyline.memory_bytes());
    }

    let metrics = RunMetrics {
        object_io: tree.stats().since(&stats_before),
        aux_io: disk.stats(),
        cpu_time: start.elapsed(),
        peak_memory_bytes: gauge.peak(),
        loops: state.loops,
        searches,
    };
    AssignmentResult {
        assignment: state.assignment,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::verify_stable;
    use crate::oracle::oracle;
    use crate::problem::{ObjectRecord, PreferenceFunction};
    use crate::sb::{sb, SbOptions};
    use pref_datagen::{anti_correlated_objects, independent_objects, uniform_weight_functions};

    #[test]
    fn matches_oracle_on_random_instances() {
        for seed in [201u64, 202] {
            let functions = uniform_weight_functions(150, 3, seed);
            let objects = independent_objects(80, 3, seed + 10);
            let p = Problem::from_parts(functions, objects).unwrap();
            let mut tree = p.build_tree(Some(8), 0.0);
            let result = sb_alt(&p, &mut tree, 4);
            verify_stable(&p, &result.assignment).unwrap();
            assert_eq!(result.assignment.canonical(), oracle(&p).canonical());
        }
    }

    #[test]
    fn agrees_with_standard_sb() {
        let functions = uniform_weight_functions(200, 4, 211);
        let objects = anti_correlated_objects(100, 4, 212);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree_a = p.build_tree(Some(8), 0.0);
        let mut tree_b = p.build_tree(Some(8), 0.0);
        let alt = sb_alt(&p, &mut tree_a, 8);
        let std = sb(&p, &mut tree_b, &SbOptions::default());
        assert_eq!(alt.assignment.canonical(), std.assignment.canonical());
    }

    #[test]
    fn charges_list_io_as_aux() {
        let functions = uniform_weight_functions(3000, 3, 221);
        let objects = independent_objects(60, 3, 222);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(8), 0.0);
        let result = sb_alt(&p, &mut tree, 8);
        assert!(result.metrics.aux_io.logical_reads > 0);
        assert!(result.metrics.total_io() >= result.metrics.aux_io.io_accesses());
        verify_stable(&p, &result.assignment).unwrap();
    }

    #[test]
    fn threaded_scoring_is_canonical_identical() {
        let functions = uniform_weight_functions(250, 3, 241);
        let objects = anti_correlated_objects(120, 3, 242);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut baseline = None;
        for threads in [1usize, 2, 4, 8] {
            let mut tree = p.build_tree(Some(8), 0.0);
            let result = sb_alt_with_threads(&p, &mut tree, 8, Some(threads));
            verify_stable(&p, &result.assignment).unwrap();
            let canon = result.assignment.canonical();
            match &baseline {
                None => baseline = Some(canon),
                Some(want) => assert_eq!(&canon, want, "threads={threads}"),
            }
        }
    }

    #[test]
    fn capacitated_variant() {
        let functions: Vec<PreferenceFunction> = uniform_weight_functions(40, 3, 231)
            .into_iter()
            .enumerate()
            .map(|(i, f)| PreferenceFunction::new(i, f).with_capacity(1 + (i as u32 % 3)))
            .collect();
        let objects: Vec<ObjectRecord> = independent_objects(30, 3, 232)
            .into_iter()
            .map(|(id, p)| ObjectRecord {
                id,
                point: p,
                capacity: 2,
            })
            .collect();
        let p = Problem::new(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(8), 0.0);
        let result = sb_alt(&p, &mut tree, 4);
        verify_stable(&p, &result.assignment).unwrap();
        assert_eq!(result.assignment.canonical(), oracle(&p).canonical());
    }
}
