//! The stable-loop scaffolding shared by the skyline-based solvers.
//!
//! `sb` and `sb_alt` run the same outer loop: keep dense per-function and
//! per-object capacity slabs, find every skyline object's best function, keep
//! the reciprocal pairs, commit them, and hand the removed skyline objects to
//! the maintenance module. They differ only in *how* the best function for a
//! skyline point is located (per-object TA searches vs. one batched scan of
//! disk-resident lists). This module owns the shared state and the shared
//! steps, so the [`crate::solver::Solver`] implementations cannot drift apart
//! on capacity bookkeeping or tie handling.

use crate::matching::Assignment;
use crate::pairing::PairScratch;
use crate::problem::Problem;
use pref_geom::{Point, ScoreTable};
use pref_rtree::RecordId;
use pref_skyline::{Skyline, SkylineObject};
use pref_sync::WorkStealingPool;

/// Dense per-run state of the skyline-based stable loop.
///
/// All slabs are indexed by the [`Problem`]'s dense function / object indices;
/// the per-loop argmax slabs (`object_best`, `function_best`) are invalidated
/// by a loop stamp instead of being cleared between loops.
pub(crate) struct StableLoop {
    /// Remaining capacity per function (dense index).
    pub f_remaining: Vec<u32>,
    /// Remaining capacity per object (dense index).
    pub o_remaining: Vec<u32>,
    /// Total remaining demand (sum of `f_remaining`).
    pub demand: u64,
    /// Total remaining supply (sum of `o_remaining`).
    pub supply: u64,
    /// `object_best[oi] = (stamp, best function, score)`.
    pub object_best: Vec<(u64, usize, f64)>,
    /// `function_best[fi] = (stamp, best dense object index, score)`.
    function_best: Vec<(u64, usize, f64)>,
    /// Stamp guard deduplicating `candidate_functions` per loop.
    candidate_stamp: Vec<u64>,
    /// Functions named by some `object_best` entry this loop.
    candidate_functions: Vec<usize>,
    /// Columnar scratch reused by every pairing step (see
    /// [`crate::pairing::PairScratch`]).
    pair_scratch: PairScratch,
    /// Pairs established so far.
    pub assignment: Assignment,
    /// Outer loops executed.
    pub loops: u64,
}

impl StableLoop {
    pub(crate) fn new(problem: &Problem) -> Self {
        let f_remaining: Vec<u32> = problem.functions().iter().map(|f| f.capacity).collect();
        let o_remaining: Vec<u32> = problem.objects().iter().map(|o| o.capacity).collect();
        let demand = f_remaining.iter().map(|&c| c as u64).sum();
        let supply = o_remaining.iter().map(|&c| c as u64).sum();
        let n_fun = problem.num_functions();
        let n_obj = problem.num_objects();
        Self {
            f_remaining,
            o_remaining,
            demand,
            supply,
            object_best: vec![(0, 0, 0.0); n_obj],
            function_best: vec![(0, 0, 0.0); n_fun],
            candidate_stamp: vec![0; n_fun],
            candidate_functions: Vec::new(),
            pair_scratch: PairScratch::new(),
            assignment: Assignment::new(),
            loops: 0,
        }
    }

    /// `true` while another loop can still establish pairs.
    pub(crate) fn active(&self, skyline: &Skyline) -> bool {
        self.demand > 0 && self.supply > 0 && !skyline.is_empty()
    }

    /// Starts a loop and returns its stamp.
    pub(crate) fn begin_loop(&mut self) -> u64 {
        self.loops += 1;
        self.candidate_functions.clear();
        self.loops
    }

    /// Borrowed views of the current skyline as `(dense index, record,
    /// &point)` triples — the per-loop working set of both solvers.
    pub(crate) fn sky_views<'a>(
        &self,
        problem: &Problem,
        skyline: &'a Skyline,
    ) -> Vec<(usize, RecordId, &'a Point)> {
        skyline
            .entry_views()
            .map(|(record, point)| {
                let oi = problem
                    .object_index(record)
                    .expect("skyline records are problem objects");
                (oi, record, point)
            })
            .collect()
    }

    /// Records a skyline object's best function for the stamped loop.
    pub(crate) fn note_best(&mut self, stamp: u64, oi: usize, fi: usize, score: f64) {
        self.object_best[oi] = (stamp, fi, score);
        if self.candidate_stamp[fi] != stamp {
            self.candidate_stamp[fi] = stamp;
            self.candidate_functions.push(fi);
        }
    }

    /// Completes the loop's argmax exchange: finds every candidate function's
    /// best skyline object and returns the reciprocal (stable) pairs in
    /// descending score order (see [`crate::pairing::reciprocal_pairs`] for
    /// the tie rules and the columnar/parallel scoring contract).
    pub(crate) fn reciprocal_pairs(
        &mut self,
        stamp: u64,
        sky_views: &[(usize, RecordId, &Point)],
        table: &ScoreTable,
        pool: Option<&WorkStealingPool>,
    ) -> Vec<(usize, usize, f64)> {
        crate::pairing::reciprocal_pairs(
            stamp,
            sky_views,
            &self.object_best,
            &mut self.function_best,
            &mut self.candidate_functions,
            table,
            pool,
            &mut self.pair_scratch,
        )
    }

    /// Commits the loop's pairs: pushes them onto the assignment, updates the
    /// capacity slabs, removes exhausted objects from the skyline and returns
    /// them (with their pruned lists) for the maintenance module.
    /// `on_function_exhausted` / `on_object_exhausted` let the solver retire
    /// its per-function / per-object search state (sorted lists, TA states).
    pub(crate) fn commit(
        &mut self,
        problem: &Problem,
        pairs: Vec<(usize, usize, f64)>,
        skyline: &mut Skyline,
        mut on_function_exhausted: impl FnMut(usize),
        mut on_object_exhausted: impl FnMut(usize),
    ) -> Vec<SkylineObject> {
        let mut removed_objects = Vec::new();
        for (fi, oi, score) in pairs {
            if self.demand == 0 || self.supply == 0 {
                break;
            }
            let record = problem.objects()[oi].id;
            self.assignment
                .push(problem.functions()[fi].id, record, score);
            self.demand -= 1;
            self.supply -= 1;
            self.f_remaining[fi] -= 1;
            if self.f_remaining[fi] == 0 {
                on_function_exhausted(fi);
            }
            self.o_remaining[oi] -= 1;
            if self.o_remaining[oi] == 0 {
                on_object_exhausted(oi);
                if let Some(sky_obj) = skyline.remove(record) {
                    removed_objects.push(sky_obj);
                }
            }
        }
        removed_objects
    }
}
