//! Fair (stable) assignment between multiple preference queries and objects.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*A Fair Assignment Algorithm for Multiple Preference Queries*, VLDB 2009):
//! given a set `F` of linear preference functions (with optional priorities
//! and capacities) and a set `O` of multidimensional objects (with optional
//! capacities) indexed by an R-tree, compute the **stable 1-1 matching**
//! obtained by repeatedly assigning the function-object pair with the highest
//! score and removing it from the problem.
//!
//! Three algorithm families are provided:
//!
//! * [`brute_force`] — one incremental top-1 search per function with
//!   resumable heaps (Section 4.1),
//! * [`chain`] — the adaptation of the spatial Chain/ECP algorithm, with the
//!   functions indexed by a weight-space R-tree (Section 2.1 / Section 7),
//! * [`sb`] — the paper's skyline-based algorithm with its optimizations
//!   (I/O-optimal UpdateSkyline maintenance, resumable reverse top-1 search
//!   with the fractional-knapsack threshold, multiple stable pairs per loop),
//!   plus the problem variants of Section 6 (capacities, priorities,
//!   two-skyline search) and the batch variant [`sb_alt`] for disk-resident
//!   function sets (Section 7.6).
//!
//! All of them are also available behind the common [`Solver`] trait
//! ([`SbSolver`], [`SbAltSolver`], [`ChainSolver`], [`BruteForceSolver`]), so
//! harnesses and the streaming engine can treat "a way to compute the stable
//! matching" as a value; `sb` and `sb_alt` share one stable-loop scaffolding
//! underneath, which pins their capacity bookkeeping and tie handling
//! together by construction.
//!
//! The [`oracle`] module computes the exact stable matching by brute force and
//! [`verify_stable`] checks Property 2 directly; both are used heavily by the
//! test-suite.
//!
//! # Quick start
//!
//! ```
//! use pref_assign::{Problem, PreferenceFunction, ObjectRecord, solve};
//! use pref_geom::{LinearFunction, Point};
//!
//! // three users, four internship positions (Figure 1 of the paper)
//! let functions = vec![
//!     PreferenceFunction::new(0, LinearFunction::new(vec![0.8, 0.2]).unwrap()),
//!     PreferenceFunction::new(1, LinearFunction::new(vec![0.2, 0.8]).unwrap()),
//!     PreferenceFunction::new(2, LinearFunction::new(vec![0.5, 0.5]).unwrap()),
//! ];
//! let objects = vec![
//!     ObjectRecord::new(0, Point::from_slice(&[0.5, 0.6])), // a
//!     ObjectRecord::new(1, Point::from_slice(&[0.2, 0.7])), // b
//!     ObjectRecord::new(2, Point::from_slice(&[0.8, 0.2])), // c
//!     ObjectRecord::new(3, Point::from_slice(&[0.4, 0.4])), // d
//! ];
//! let problem = Problem::new(functions, objects).unwrap();
//! let assignment = solve(&problem);
//! // user 0 gets position c, user 1 gets b, user 2 gets a
//! assert_eq!(assignment.object_of(pref_assign::FunctionId(0)).unwrap().raw(), 2);
//! assert_eq!(assignment.object_of(pref_assign::FunctionId(1)).unwrap().raw(), 1);
//! assert_eq!(assignment.object_of(pref_assign::FunctionId(2)).unwrap().raw(), 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod brute;
mod chain;
mod matching;
mod metrics;
mod oracle;
mod pairing;
mod problem;
mod sb;
mod sbalt;
mod scaffold;
mod solver;
mod view;

pub use brute::brute_force;
pub use chain::chain;
pub use matching::{verify_stable, Assignment, MatchPair, StabilityViolation};
pub use metrics::{AssignmentResult, RunMetrics};
pub use oracle::oracle;
pub use problem::{FunctionId, ObjectRecord, PreferenceFunction, Problem, ProblemError};
pub use sb::{sb, BestPairStrategy, MaintenanceStrategy, SbOptions};
pub use sbalt::{sb_alt, sb_alt_with_threads};
pub use solver::{all_solvers, BruteForceSolver, ChainSolver, SbAltSolver, SbSolver, Solver};
pub use view::{AssignedFunctions, AssignedObjects, AssignmentView, ViewError};

use pref_rtree::RTree;

/// Solves a problem with the fully optimized SB algorithm and a default
/// object index, returning the full [`AssignmentResult`] — the matching plus
/// the [`RunMetrics`] (I/O, CPU, memory, loop counts) collected along the way.
pub fn solve_with_metrics(problem: &Problem) -> AssignmentResult {
    let mut tree: RTree = problem.build_tree(None, 0.02);
    sb(problem, &mut tree, &SbOptions::default())
}

/// Solves a problem with the fully optimized SB algorithm and a default
/// object index (the convenience entry point used by the examples). A thin
/// wrapper over [`solve_with_metrics`] for callers that only want the
/// matching; use the latter when the run's measurements matter.
pub fn solve(problem: &Problem) -> Assignment {
    solve_with_metrics(problem).assignment
}
