//! Problem definition: preference functions, objects, capacities, priorities.

use pref_geom::{LinearFunction, Point};
use pref_rtree::{RTree, RTreeConfig, RecordId};
use serde::{Deserialize, Serialize};

/// Identifier of a preference function (a user / query).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FunctionId(pub usize);

impl std::fmt::Display for FunctionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A user's preference query: a linear function plus a capacity (how many
/// identical requests this entry stands for, Section 6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct PreferenceFunction {
    /// Identifier of the function.
    pub id: FunctionId,
    /// The scoring function (weights and optional priority γ).
    pub function: LinearFunction,
    /// Number of identical requests represented by this entry (≥ 1).
    pub capacity: u32,
}

impl PreferenceFunction {
    /// A unit-capacity preference function.
    pub fn new(id: usize, function: LinearFunction) -> Self {
        Self {
            id: FunctionId(id),
            function,
            capacity: 1,
        }
    }

    /// Sets the capacity (must be at least 1).
    pub fn with_capacity(mut self, capacity: u32) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        self.capacity = capacity;
        self
    }
}

/// An object of the searched set `O`: a feature vector plus a capacity (how
/// many identical objects this entry stands for).
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectRecord {
    /// Identifier of the object (doubles as the R-tree record id).
    pub id: RecordId,
    /// Feature vector, larger-is-better, normalized to `[0, 1]`.
    pub point: Point,
    /// Number of identical objects represented by this entry (≥ 1).
    pub capacity: u32,
}

impl ObjectRecord {
    /// A unit-capacity object.
    pub fn new(id: u64, point: Point) -> Self {
        Self {
            id: RecordId(id),
            point,
            capacity: 1,
        }
    }

    /// Sets the capacity (must be at least 1).
    pub fn with_capacity(mut self, capacity: u32) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        self.capacity = capacity;
        self
    }
}

/// Errors raised while constructing a [`Problem`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemError {
    /// There must be at least one function and one object.
    Empty,
    /// Functions and objects must share one dimensionality.
    DimensionMismatch(String),
    /// Identifiers must be unique within their set.
    DuplicateId(String),
}

impl std::fmt::Display for ProblemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProblemError::Empty => write!(f, "problem needs at least one function and one object"),
            ProblemError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            ProblemError::DuplicateId(msg) => write!(f, "duplicate identifier: {msg}"),
        }
    }
}

impl std::error::Error for ProblemError {}

/// A fair-assignment problem instance: the function set `F` (kept in memory)
/// and the object set `O` (to be indexed by an R-tree).
#[derive(Debug, Clone)]
pub struct Problem {
    functions: Vec<PreferenceFunction>,
    objects: Vec<ObjectRecord>,
    dims: usize,
}

impl Problem {
    /// Validates and creates a problem instance.
    pub fn new(
        functions: Vec<PreferenceFunction>,
        objects: Vec<ObjectRecord>,
    ) -> Result<Self, ProblemError> {
        if functions.is_empty() || objects.is_empty() {
            return Err(ProblemError::Empty);
        }
        let dims = functions[0].function.dims();
        for f in &functions {
            if f.function.dims() != dims {
                return Err(ProblemError::DimensionMismatch(format!(
                    "function {} has {} dimensions, expected {dims}",
                    f.id.0,
                    f.function.dims()
                )));
            }
        }
        for o in &objects {
            if o.point.dims() != dims {
                return Err(ProblemError::DimensionMismatch(format!(
                    "object {} has {} dimensions, expected {dims}",
                    o.id,
                    o.point.dims()
                )));
            }
        }
        let mut fids: Vec<usize> = functions.iter().map(|f| f.id.0).collect();
        fids.sort_unstable();
        if fids.windows(2).any(|w| w[0] == w[1]) {
            return Err(ProblemError::DuplicateId("function ids".into()));
        }
        let mut oids: Vec<u64> = objects.iter().map(|o| o.id.0).collect();
        oids.sort_unstable();
        if oids.windows(2).any(|w| w[0] == w[1]) {
            return Err(ProblemError::DuplicateId("object ids".into()));
        }
        Ok(Self {
            functions,
            objects,
            dims,
        })
    }

    /// Builds a problem from plain functions and points, assigning sequential
    /// ids and unit capacities. Convenient for generators and tests.
    pub fn from_parts(
        functions: Vec<LinearFunction>,
        objects: Vec<(RecordId, Point)>,
    ) -> Result<Self, ProblemError> {
        let functions = functions
            .into_iter()
            .enumerate()
            .map(|(i, f)| PreferenceFunction::new(i, f))
            .collect();
        let objects = objects
            .into_iter()
            .map(|(id, p)| ObjectRecord {
                id,
                point: p,
                capacity: 1,
            })
            .collect();
        Self::new(functions, objects)
    }

    /// Dimensionality of the problem.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The preference functions.
    pub fn functions(&self) -> &[PreferenceFunction] {
        &self.functions
    }

    /// The objects.
    pub fn objects(&self) -> &[ObjectRecord] {
        &self.objects
    }

    /// Number of functions (not counting capacities).
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Number of objects (not counting capacities).
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Total demand: the sum of function capacities.
    pub fn total_function_capacity(&self) -> u64 {
        self.functions.iter().map(|f| f.capacity as u64).sum()
    }

    /// Total supply: the sum of object capacities.
    pub fn total_object_capacity(&self) -> u64 {
        self.objects.iter().map(|o| o.capacity as u64).sum()
    }

    /// Number of pairs the stable assignment will contain:
    /// `min(total demand, total supply)`.
    pub fn expected_pairs(&self) -> u64 {
        self.total_function_capacity()
            .min(self.total_object_capacity())
    }

    /// `true` if any function carries a priority γ ≠ 1.
    pub fn has_priorities(&self) -> bool {
        self.functions
            .iter()
            .any(|f| (f.function.priority() - 1.0).abs() > f64::EPSILON)
    }

    /// Looks up a function by id.
    pub fn function(&self, id: FunctionId) -> Option<&PreferenceFunction> {
        self.functions.iter().find(|f| f.id == id)
    }

    /// Looks up an object by id.
    pub fn object(&self, id: RecordId) -> Option<&ObjectRecord> {
        self.objects.iter().find(|o| o.id == id)
    }

    /// Score of a function applied to an object, by id. `None` if either id is
    /// unknown.
    pub fn score(&self, f: FunctionId, o: RecordId) -> Option<f64> {
        Some(self.function(f)?.function.score(&self.object(o)?.point))
    }

    /// Bulk-loads the object R-tree with an optional fanout override and an
    /// LRU buffer sized as a fraction of the built tree (the paper's default
    /// is 2%). Construction does not charge I/O.
    pub fn build_tree(&self, fanout: Option<usize>, buffer_fraction: f64) -> RTree {
        let mut config = RTreeConfig::for_dims(self.dims);
        if let Some(fanout) = fanout {
            config = config.with_fanout(fanout);
        }
        let records: Vec<(RecordId, Point)> = self
            .objects
            .iter()
            .map(|o| (o.id, o.point.clone()))
            .collect();
        let mut tree = RTree::bulk_load(config, records).expect("problem dimensions are validated");
        tree.set_buffer_fraction(buffer_fraction);
        tree.reset_stats();
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_problem() -> Problem {
        let functions = vec![
            PreferenceFunction::new(0, LinearFunction::new(vec![0.8, 0.2]).unwrap()),
            PreferenceFunction::new(1, LinearFunction::new(vec![0.2, 0.8]).unwrap()),
            PreferenceFunction::new(2, LinearFunction::new(vec![0.5, 0.5]).unwrap()),
        ];
        let objects = vec![
            ObjectRecord::new(0, Point::from_slice(&[0.5, 0.6])),
            ObjectRecord::new(1, Point::from_slice(&[0.2, 0.7])),
            ObjectRecord::new(2, Point::from_slice(&[0.8, 0.2])),
            ObjectRecord::new(3, Point::from_slice(&[0.4, 0.4])),
        ];
        Problem::new(functions, objects).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let p = figure1_problem();
        assert_eq!(p.dims(), 2);
        assert_eq!(p.num_functions(), 3);
        assert_eq!(p.num_objects(), 4);
        assert_eq!(p.expected_pairs(), 3);
        assert!(!p.has_priorities());
        assert!(p.function(FunctionId(1)).is_some());
        assert!(p.function(FunctionId(9)).is_none());
        assert!(p.object(RecordId(3)).is_some());
        let s = p.score(FunctionId(0), RecordId(2)).unwrap();
        assert!((s - 0.68).abs() < 1e-12);
        assert!(p.score(FunctionId(0), RecordId(99)).is_none());
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            Problem::new(vec![], vec![]),
            Err(ProblemError::Empty)
        ));
        let f2 = PreferenceFunction::new(0, LinearFunction::new(vec![0.5, 0.5]).unwrap());
        let f3 = PreferenceFunction::new(1, LinearFunction::new(vec![0.3, 0.3, 0.4]).unwrap());
        let o = ObjectRecord::new(0, Point::from_slice(&[0.5, 0.5]));
        assert!(matches!(
            Problem::new(vec![f2.clone(), f3], vec![o.clone()]),
            Err(ProblemError::DimensionMismatch(_))
        ));
        let o3 = ObjectRecord::new(1, Point::from_slice(&[0.5, 0.5, 0.5]));
        assert!(matches!(
            Problem::new(vec![f2.clone()], vec![o.clone(), o3]),
            Err(ProblemError::DimensionMismatch(_))
        ));
        let dup_f = PreferenceFunction::new(0, LinearFunction::new(vec![0.6, 0.4]).unwrap());
        assert!(matches!(
            Problem::new(vec![f2.clone(), dup_f], vec![o.clone()]),
            Err(ProblemError::DuplicateId(_))
        ));
        let dup_o = ObjectRecord::new(0, Point::from_slice(&[0.1, 0.1]));
        assert!(matches!(
            Problem::new(vec![f2], vec![o, dup_o]),
            Err(ProblemError::DuplicateId(_))
        ));
    }

    #[test]
    fn capacities_feed_expected_pairs() {
        let functions = vec![
            PreferenceFunction::new(0, LinearFunction::new(vec![0.5, 0.5]).unwrap())
                .with_capacity(3),
            PreferenceFunction::new(1, LinearFunction::new(vec![0.6, 0.4]).unwrap()),
        ];
        let objects = vec![
            ObjectRecord::new(0, Point::from_slice(&[0.5, 0.5])).with_capacity(2),
            ObjectRecord::new(1, Point::from_slice(&[0.4, 0.6])),
        ];
        let p = Problem::new(functions, objects).unwrap();
        assert_eq!(p.total_function_capacity(), 4);
        assert_eq!(p.total_object_capacity(), 3);
        assert_eq!(p.expected_pairs(), 3);
    }

    #[test]
    fn build_tree_indexes_all_objects() {
        let p = figure1_problem();
        let mut tree = p.build_tree(None, 0.0);
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.stats().logical_reads, 0);
        assert_eq!(tree.scan().len(), 4);
    }

    #[test]
    fn from_parts_assigns_sequential_ids() {
        let fs = vec![
            LinearFunction::new(vec![0.5, 0.5]).unwrap(),
            LinearFunction::new(vec![0.9, 0.1]).unwrap(),
        ];
        let os = vec![
            (RecordId(10), Point::from_slice(&[0.5, 0.5])),
            (RecordId(11), Point::from_slice(&[0.2, 0.4])),
        ];
        let p = Problem::from_parts(fs, os).unwrap();
        assert_eq!(p.functions()[1].id, FunctionId(1));
        assert_eq!(p.objects()[0].id, RecordId(10));
    }

    #[test]
    fn priorities_detected() {
        let functions = vec![PreferenceFunction::new(
            0,
            LinearFunction::with_priority(vec![0.5, 0.5], 2.0).unwrap(),
        )];
        let objects = vec![ObjectRecord::new(0, Point::from_slice(&[0.5, 0.5]))];
        let p = Problem::new(functions, objects).unwrap();
        assert!(p.has_priorities());
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = ObjectRecord::new(0, Point::from_slice(&[0.5, 0.5])).with_capacity(0);
    }
}
