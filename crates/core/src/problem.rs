//! Problem definition: preference functions, objects, capacities, priorities.

use pref_geom::{LinearFunction, Point};
use pref_rtree::{RTree, RTreeConfig, RecordId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a preference function (a user / query).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FunctionId(pub usize);

impl std::fmt::Display for FunctionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A user's preference query: a linear function plus a capacity (how many
/// identical requests this entry stands for, Section 6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct PreferenceFunction {
    /// Identifier of the function.
    pub id: FunctionId,
    /// The scoring function (weights and optional priority γ).
    pub function: LinearFunction,
    /// Number of identical requests represented by this entry (≥ 1).
    pub capacity: u32,
}

impl PreferenceFunction {
    /// A unit-capacity preference function.
    pub fn new(id: usize, function: LinearFunction) -> Self {
        Self {
            id: FunctionId(id),
            function,
            capacity: 1,
        }
    }

    /// Sets the capacity (must be at least 1).
    pub fn with_capacity(mut self, capacity: u32) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        self.capacity = capacity;
        self
    }
}

/// An object of the searched set `O`: a feature vector plus a capacity (how
/// many identical objects this entry stands for).
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectRecord {
    /// Identifier of the object (doubles as the R-tree record id).
    pub id: RecordId,
    /// Feature vector, larger-is-better, normalized to `[0, 1]`.
    pub point: Point,
    /// Number of identical objects represented by this entry (≥ 1).
    pub capacity: u32,
}

impl ObjectRecord {
    /// A unit-capacity object.
    pub fn new(id: u64, point: Point) -> Self {
        Self {
            id: RecordId(id),
            point,
            capacity: 1,
        }
    }

    /// Sets the capacity (must be at least 1).
    pub fn with_capacity(mut self, capacity: u32) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        self.capacity = capacity;
        self
    }
}

/// Errors raised while constructing a [`Problem`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemError {
    /// There must be at least one function and one object.
    Empty,
    /// Functions and objects must share one dimensionality.
    DimensionMismatch(String),
    /// Identifiers must be unique within their set.
    DuplicateId(String),
}

impl std::fmt::Display for ProblemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProblemError::Empty => write!(f, "problem needs at least one function and one object"),
            ProblemError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            ProblemError::DuplicateId(msg) => write!(f, "duplicate identifier: {msg}"),
        }
    }
}

impl std::error::Error for ProblemError {}

/// Sentinel marking an absent slot in a direct-lookup id table.
const NO_INDEX: u32 = u32::MAX;

/// `RecordId → dense index` map, built once per [`Problem`].
///
/// Record ids drawn from a small range (the overwhelmingly common case:
/// generators and loaders assign sequential ids) get a flat lookup table so
/// the solver hot paths pay one bounds-checked array read per translation;
/// genuinely sparse id spaces fall back to hashing.
#[derive(Debug, Clone)]
enum ObjectIndexMap {
    /// `table[id] = dense index`, `NO_INDEX` where absent.
    Direct(Vec<u32>),
    Hashed(HashMap<RecordId, usize>),
}

impl ObjectIndexMap {
    /// Builds the direct table when the id range is at most `2·n + 1024`
    /// slots (bounded waste), the hash map otherwise. Returns `None` when two
    /// objects share an id — this doubles as the duplicate-id check.
    fn build(objects: &[ObjectRecord]) -> Option<Self> {
        let max_id = objects.iter().map(|o| o.id.0).max().unwrap_or(0);
        let budget = 2 * objects.len() as u64 + 1024;
        if max_id < budget && max_id < u64::from(NO_INDEX) {
            let mut table = vec![NO_INDEX; max_id as usize + 1];
            for (i, o) in objects.iter().enumerate() {
                let slot = &mut table[o.id.0 as usize];
                if *slot != NO_INDEX {
                    return None;
                }
                *slot = i as u32;
            }
            Some(ObjectIndexMap::Direct(table))
        } else {
            let mut map = HashMap::with_capacity(objects.len());
            for (i, o) in objects.iter().enumerate() {
                if map.insert(o.id, i).is_some() {
                    return None;
                }
            }
            Some(ObjectIndexMap::Hashed(map))
        }
    }

    #[inline]
    fn get(&self, id: RecordId) -> Option<usize> {
        match self {
            ObjectIndexMap::Direct(table) => match table.get(id.0 as usize) {
                Some(&slot) if slot != NO_INDEX => Some(slot as usize),
                _ => None,
            },
            ObjectIndexMap::Hashed(map) => map.get(&id).copied(),
        }
    }
}

/// A fair-assignment problem instance: the function set `F` (kept in memory)
/// and the object set `O` (to be indexed by an R-tree).
///
/// Both sets are stored in contiguous tables; alongside them the constructor
/// builds, exactly once, the `RecordId → dense index` and
/// `FunctionId → dense index` maps that let the solver hot paths keep all
/// per-object / per-function state in plain `Vec` slabs instead of hashing
/// external ids on every access.
#[derive(Debug, Clone)]
pub struct Problem {
    functions: Vec<PreferenceFunction>,
    objects: Vec<ObjectRecord>,
    /// `RecordId → index into `objects``, built once at construction.
    object_index: ObjectIndexMap,
    /// `FunctionId → index into `functions``, built once at construction.
    function_index: HashMap<FunctionId, usize>,
    dims: usize,
}

impl Problem {
    /// Validates and creates a problem instance.
    pub fn new(
        functions: Vec<PreferenceFunction>,
        objects: Vec<ObjectRecord>,
    ) -> Result<Self, ProblemError> {
        if functions.is_empty() || objects.is_empty() {
            return Err(ProblemError::Empty);
        }
        let dims = functions[0].function.dims();
        for f in &functions {
            if f.function.dims() != dims {
                return Err(ProblemError::DimensionMismatch(format!(
                    "function {} has {} dimensions, expected {dims}",
                    f.id.0,
                    f.function.dims()
                )));
            }
        }
        for o in &objects {
            if o.point.dims() != dims {
                return Err(ProblemError::DimensionMismatch(format!(
                    "object {} has {} dimensions, expected {dims}",
                    o.id,
                    o.point.dims()
                )));
            }
        }
        let mut function_index = HashMap::with_capacity(functions.len());
        for (i, f) in functions.iter().enumerate() {
            if function_index.insert(f.id, i).is_some() {
                return Err(ProblemError::DuplicateId("function ids".into()));
            }
        }
        let object_index = ObjectIndexMap::build(&objects)
            .ok_or_else(|| ProblemError::DuplicateId("object ids".into()))?;
        Ok(Self {
            functions,
            objects,
            object_index,
            function_index,
            dims,
        })
    }

    /// Builds a problem from plain functions and points, assigning sequential
    /// ids and unit capacities. Convenient for generators and tests.
    pub fn from_parts(
        functions: Vec<LinearFunction>,
        objects: Vec<(RecordId, Point)>,
    ) -> Result<Self, ProblemError> {
        let functions = functions
            .into_iter()
            .enumerate()
            .map(|(i, f)| PreferenceFunction::new(i, f))
            .collect();
        let objects = objects
            .into_iter()
            .map(|(id, p)| ObjectRecord {
                id,
                point: p,
                capacity: 1,
            })
            .collect();
        Self::new(functions, objects)
    }

    /// Dimensionality of the problem.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The preference functions.
    pub fn functions(&self) -> &[PreferenceFunction] {
        &self.functions
    }

    /// The objects.
    pub fn objects(&self) -> &[ObjectRecord] {
        &self.objects
    }

    /// Number of functions (not counting capacities).
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Number of objects (not counting capacities).
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Total demand: the sum of function capacities.
    pub fn total_function_capacity(&self) -> u64 {
        self.functions.iter().map(|f| f.capacity as u64).sum()
    }

    /// Total supply: the sum of object capacities.
    pub fn total_object_capacity(&self) -> u64 {
        self.objects.iter().map(|o| o.capacity as u64).sum()
    }

    /// Number of pairs the stable assignment will contain:
    /// `min(total demand, total supply)`.
    pub fn expected_pairs(&self) -> u64 {
        self.total_function_capacity()
            .min(self.total_object_capacity())
    }

    /// `true` if any function carries a priority γ ≠ 1.
    pub fn has_priorities(&self) -> bool {
        self.functions
            .iter()
            .any(|f| (f.function.priority() - 1.0).abs() > f64::EPSILON)
    }

    /// Looks up a function by id in `O(1)`.
    pub fn function(&self, id: FunctionId) -> Option<&PreferenceFunction> {
        self.function_index.get(&id).map(|&i| &self.functions[i])
    }

    /// Looks up an object by id in `O(1)`.
    pub fn object(&self, id: RecordId) -> Option<&ObjectRecord> {
        self.object_index.get(id).map(|i| &self.objects[i])
    }

    /// Dense index of an object: its position in [`Problem::objects`]. The map
    /// is built once at construction; the solvers use it to keep per-object
    /// state in contiguous `Vec` slabs. Compact id spaces resolve with one
    /// array read, sparse ones with one hash lookup.
    #[inline]
    pub fn object_index(&self, id: RecordId) -> Option<usize> {
        self.object_index.get(id)
    }

    /// Score of a function applied to an object, by id. `None` if either id is
    /// unknown.
    pub fn score(&self, f: FunctionId, o: RecordId) -> Option<f64> {
        Some(self.function(f)?.function.score(&self.object(o)?.point))
    }

    /// Bulk-loads the object R-tree with an optional fanout override and an
    /// LRU buffer sized as a fraction of the built tree (the paper's default
    /// is 2%). Construction does not charge I/O.
    pub fn build_tree(&self, fanout: Option<usize>, buffer_fraction: f64) -> RTree {
        let mut config = RTreeConfig::for_dims(self.dims);
        if let Some(fanout) = fanout {
            config = config.with_fanout(fanout);
        }
        let records: Vec<(RecordId, Point)> = self
            .objects
            .iter()
            .map(|o| (o.id, o.point.clone()))
            .collect();
        let mut tree = RTree::bulk_load(config, records).expect("problem dimensions are validated");
        tree.set_buffer_fraction(buffer_fraction);
        tree.reset_stats();
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_problem() -> Problem {
        let functions = vec![
            PreferenceFunction::new(0, LinearFunction::new(vec![0.8, 0.2]).unwrap()),
            PreferenceFunction::new(1, LinearFunction::new(vec![0.2, 0.8]).unwrap()),
            PreferenceFunction::new(2, LinearFunction::new(vec![0.5, 0.5]).unwrap()),
        ];
        let objects = vec![
            ObjectRecord::new(0, Point::from_slice(&[0.5, 0.6])),
            ObjectRecord::new(1, Point::from_slice(&[0.2, 0.7])),
            ObjectRecord::new(2, Point::from_slice(&[0.8, 0.2])),
            ObjectRecord::new(3, Point::from_slice(&[0.4, 0.4])),
        ];
        Problem::new(functions, objects).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let p = figure1_problem();
        assert_eq!(p.dims(), 2);
        assert_eq!(p.num_functions(), 3);
        assert_eq!(p.num_objects(), 4);
        assert_eq!(p.expected_pairs(), 3);
        assert!(!p.has_priorities());
        assert!(p.function(FunctionId(1)).is_some());
        assert!(p.function(FunctionId(9)).is_none());
        assert!(p.object(RecordId(3)).is_some());
        let s = p.score(FunctionId(0), RecordId(2)).unwrap();
        assert!((s - 0.68).abs() < 1e-12);
        assert!(p.score(FunctionId(0), RecordId(99)).is_none());
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            Problem::new(vec![], vec![]),
            Err(ProblemError::Empty)
        ));
        let f2 = PreferenceFunction::new(0, LinearFunction::new(vec![0.5, 0.5]).unwrap());
        let f3 = PreferenceFunction::new(1, LinearFunction::new(vec![0.3, 0.3, 0.4]).unwrap());
        let o = ObjectRecord::new(0, Point::from_slice(&[0.5, 0.5]));
        assert!(matches!(
            Problem::new(vec![f2.clone(), f3], vec![o.clone()]),
            Err(ProblemError::DimensionMismatch(_))
        ));
        let o3 = ObjectRecord::new(1, Point::from_slice(&[0.5, 0.5, 0.5]));
        assert!(matches!(
            Problem::new(vec![f2.clone()], vec![o.clone(), o3]),
            Err(ProblemError::DimensionMismatch(_))
        ));
        let dup_f = PreferenceFunction::new(0, LinearFunction::new(vec![0.6, 0.4]).unwrap());
        assert!(matches!(
            Problem::new(vec![f2.clone(), dup_f], vec![o.clone()]),
            Err(ProblemError::DuplicateId(_))
        ));
        let dup_o = ObjectRecord::new(0, Point::from_slice(&[0.1, 0.1]));
        assert!(matches!(
            Problem::new(vec![f2], vec![o, dup_o]),
            Err(ProblemError::DuplicateId(_))
        ));
    }

    #[test]
    fn capacities_feed_expected_pairs() {
        let functions = vec![
            PreferenceFunction::new(0, LinearFunction::new(vec![0.5, 0.5]).unwrap())
                .with_capacity(3),
            PreferenceFunction::new(1, LinearFunction::new(vec![0.6, 0.4]).unwrap()),
        ];
        let objects = vec![
            ObjectRecord::new(0, Point::from_slice(&[0.5, 0.5])).with_capacity(2),
            ObjectRecord::new(1, Point::from_slice(&[0.4, 0.6])),
        ];
        let p = Problem::new(functions, objects).unwrap();
        assert_eq!(p.total_function_capacity(), 4);
        assert_eq!(p.total_object_capacity(), 3);
        assert_eq!(p.expected_pairs(), 3);
    }

    #[test]
    fn build_tree_indexes_all_objects() {
        let p = figure1_problem();
        let mut tree = p.build_tree(None, 0.0);
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.stats().logical_reads, 0);
        assert_eq!(tree.scan().len(), 4);
    }

    #[test]
    fn dense_indices_match_table_positions() {
        let fs = vec![
            LinearFunction::new(vec![0.5, 0.5]).unwrap(),
            LinearFunction::new(vec![0.9, 0.1]).unwrap(),
        ];
        // non-contiguous record ids: dense indices must still be 0, 1, 2
        let os = vec![
            (RecordId(42), Point::from_slice(&[0.5, 0.5])),
            (RecordId(7), Point::from_slice(&[0.2, 0.4])),
            (RecordId(1000), Point::from_slice(&[0.9, 0.1])),
        ];
        let p = Problem::from_parts(fs, os).unwrap();
        for (i, o) in p.objects().iter().enumerate() {
            assert_eq!(p.object_index(o.id), Some(i));
            assert_eq!(p.object(o.id).unwrap().id, o.id);
        }
        assert_eq!(p.object_index(RecordId(9999)), None);
    }

    #[test]
    fn sparse_record_ids_fall_back_to_hashing() {
        // a huge id blows the direct-table budget: the hashed map must give
        // identical answers
        let fs = vec![LinearFunction::new(vec![0.5, 0.5]).unwrap()];
        let os = vec![
            (RecordId(3), Point::from_slice(&[0.5, 0.5])),
            (RecordId(u64::MAX - 1), Point::from_slice(&[0.2, 0.4])),
        ];
        let p = Problem::from_parts(fs, os).unwrap();
        assert_eq!(p.object_index(RecordId(3)), Some(0));
        assert_eq!(p.object_index(RecordId(u64::MAX - 1)), Some(1));
        assert_eq!(p.object_index(RecordId(4)), None);
        assert_eq!(p.object(RecordId(u64::MAX - 1)).unwrap().id.0, u64::MAX - 1);
    }

    #[test]
    fn from_parts_assigns_sequential_ids() {
        let fs = vec![
            LinearFunction::new(vec![0.5, 0.5]).unwrap(),
            LinearFunction::new(vec![0.9, 0.1]).unwrap(),
        ];
        let os = vec![
            (RecordId(10), Point::from_slice(&[0.5, 0.5])),
            (RecordId(11), Point::from_slice(&[0.2, 0.4])),
        ];
        let p = Problem::from_parts(fs, os).unwrap();
        assert_eq!(p.functions()[1].id, FunctionId(1));
        assert_eq!(p.objects()[0].id, RecordId(10));
    }

    #[test]
    fn priorities_detected() {
        let functions = vec![PreferenceFunction::new(
            0,
            LinearFunction::with_priority(vec![0.5, 0.5], 2.0).unwrap(),
        )];
        let objects = vec![ObjectRecord::new(0, Point::from_slice(&[0.5, 0.5]))];
        let p = Problem::new(functions, objects).unwrap();
        assert!(p.has_priorities());
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = ObjectRecord::new(0, Point::from_slice(&[0.5, 0.5])).with_capacity(0);
    }
}
