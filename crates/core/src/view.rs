//! A compact, read-only view of an assignment, built once and queried
//! allocation-free.
//!
//! [`Assignment`] is the mutable, order-preserving representation the solvers
//! and the engine produce; its per-query methods ([`Assignment::objects_of`],
//! [`Assignment::functions_of`]) scan the whole pair list and allocate a
//! fresh `Vec` per call. A serving layer answering millions of point lookups
//! needs the opposite trade-off: pay once at publication time, then answer
//! every `assignment_of(function)` / `functions_of(object)` with a bounds
//! check and a slice — no scan, no allocation. [`AssignmentView`] is that
//! representation: both directions of the matching stored in CSR form
//! (offsets into one flat pair array per side), plus id → dense-index maps
//! for `O(1)` entry.
//!
//! The view also carries the *canonical comparison* used across the repo to
//! compare matchings produced by different algorithms: [`AssignmentView::canonical`]
//! emits exactly the same multiset encoding as [`Assignment::canonical`], so
//! views and assignments are directly comparable.

use crate::matching::Assignment;
use crate::problem::FunctionId;
use pref_rtree::RecordId;
use std::collections::HashMap;

/// Errors raised while building an [`AssignmentView`].
#[derive(Debug, Clone, PartialEq)]
pub enum ViewError {
    /// A pair references a function id that is not in the view's universe.
    UnknownFunction(FunctionId),
    /// A pair references an object id that is not in the view's universe.
    UnknownObject(RecordId),
    /// The function universe contains a duplicate id.
    DuplicateFunction(FunctionId),
    /// The object universe contains a duplicate id.
    DuplicateObject(RecordId),
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::UnknownFunction(id) => write!(f, "pair references unknown function {id}"),
            ViewError::UnknownObject(id) => write!(f, "pair references unknown object {id}"),
            ViewError::DuplicateFunction(id) => write!(f, "duplicate function id {id}"),
            ViewError::DuplicateObject(id) => write!(f, "duplicate object id {id}"),
        }
    }
}

impl std::error::Error for ViewError {}

/// A read-only assignment over a fixed universe of functions and objects,
/// stored as two CSR tables (function → objects and object → functions).
///
/// Unmatched entities are first-class: a function that is in the universe but
/// holds no pair answers with an empty slice, while an id outside the
/// universe answers `None` — the distinction a serving tier needs between
/// "known user, currently unassigned" and "no such user".
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentView {
    functions: Vec<FunctionId>,
    objects: Vec<RecordId>,
    f_index: HashMap<FunctionId, u32>,
    o_index: HashMap<RecordId, u32>,
    /// `f_offsets[i]..f_offsets[i+1]` indexes `f_pairs` for function `i`.
    f_offsets: Vec<u32>,
    /// `(dense object index, score)`, grouped by function, each group sorted
    /// by descending score (ties: ascending object index).
    f_pairs: Vec<(u32, f64)>,
    /// `o_offsets[i]..o_offsets[i+1]` indexes `o_pairs` for object `i`.
    o_offsets: Vec<u32>,
    /// `(dense function index, score)`, grouped by object, each group sorted
    /// by descending score (ties: ascending function index).
    o_pairs: Vec<(u32, f64)>,
    total_score: f64,
}

impl AssignmentView {
    /// Builds the view from an entity universe and the matched pairs.
    ///
    /// `functions` / `objects` list every entity the view should know about
    /// (matched or not); `pairs` is the matching as
    /// `(function, object, score)` triples. Fails if an id repeats within a
    /// universe or a pair references an id outside it.
    pub fn from_pairs(
        functions: Vec<FunctionId>,
        objects: Vec<RecordId>,
        pairs: &[(FunctionId, RecordId, f64)],
    ) -> Result<Self, ViewError> {
        let mut f_index = HashMap::with_capacity(functions.len());
        for (i, &f) in functions.iter().enumerate() {
            if f_index.insert(f, i as u32).is_some() {
                return Err(ViewError::DuplicateFunction(f));
            }
        }
        let mut o_index = HashMap::with_capacity(objects.len());
        for (i, &o) in objects.iter().enumerate() {
            if o_index.insert(o, i as u32).is_some() {
                return Err(ViewError::DuplicateObject(o));
            }
        }
        // translate once, counting group sizes for both CSR directions
        let mut translated = Vec::with_capacity(pairs.len());
        let mut f_counts = vec![0u32; functions.len()];
        let mut o_counts = vec![0u32; objects.len()];
        let mut total_score = 0.0;
        for &(f, o, score) in pairs {
            let fi = *f_index.get(&f).ok_or(ViewError::UnknownFunction(f))?;
            let oi = *o_index.get(&o).ok_or(ViewError::UnknownObject(o))?;
            f_counts[fi as usize] += 1;
            o_counts[oi as usize] += 1;
            total_score += score;
            translated.push((fi, oi, score));
        }
        let f_offsets = prefix_sums(&f_counts);
        let o_offsets = prefix_sums(&o_counts);
        let mut f_pairs = vec![(0u32, 0.0f64); translated.len()];
        let mut o_pairs = vec![(0u32, 0.0f64); translated.len()];
        let mut f_cursor = f_offsets[..functions.len()].to_vec();
        let mut o_cursor = o_offsets[..objects.len()].to_vec();
        for &(fi, oi, score) in &translated {
            let fc = &mut f_cursor[fi as usize];
            f_pairs[*fc as usize] = (oi, score);
            *fc += 1;
            let oc = &mut o_cursor[oi as usize];
            o_pairs[*oc as usize] = (fi, score);
            *oc += 1;
        }
        // deterministic group order: best score first, ties by partner index
        for i in 0..functions.len() {
            let range = f_offsets[i] as usize..f_offsets[i + 1] as usize;
            f_pairs[range].sort_unstable_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
        }
        for i in 0..objects.len() {
            let range = o_offsets[i] as usize..o_offsets[i + 1] as usize;
            o_pairs[range].sort_unstable_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
        }
        Ok(Self {
            functions,
            objects,
            f_index,
            o_index,
            f_offsets,
            f_pairs,
            o_offsets,
            o_pairs,
            total_score,
        })
    }

    /// Builds the view of an [`Assignment`] over the given universe.
    pub fn from_assignment(
        functions: Vec<FunctionId>,
        objects: Vec<RecordId>,
        assignment: &Assignment,
    ) -> Result<Self, ViewError> {
        let pairs: Vec<(FunctionId, RecordId, f64)> = assignment
            .pairs()
            .iter()
            .map(|p| (p.function, p.object, p.score))
            .collect();
        Self::from_pairs(functions, objects, &pairs)
    }

    /// Every function in the view's universe (matched or not).
    pub fn functions(&self) -> &[FunctionId] {
        &self.functions
    }

    /// Every object in the view's universe (matched or not).
    pub fn objects(&self) -> &[RecordId] {
        &self.objects
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.f_pairs.len()
    }

    /// `true` when no pair is matched.
    pub fn is_empty(&self) -> bool {
        self.f_pairs.is_empty()
    }

    /// Sum of all pair scores.
    pub fn total_score(&self) -> f64 {
        self.total_score
    }

    /// The objects assigned to a function, best score first — `None` for a
    /// function outside the universe, an empty iterator for a known but
    /// unmatched function. Allocation-free.
    pub fn objects_of(&self, function: FunctionId) -> Option<AssignedObjects<'_>> {
        let fi = *self.f_index.get(&function)? as usize;
        let range = self.f_offsets[fi] as usize..self.f_offsets[fi + 1] as usize;
        Some(AssignedObjects {
            pairs: &self.f_pairs[range],
            ids: &self.objects,
        })
    }

    /// The functions an object is assigned to, best score first — `None` for
    /// an object outside the universe. Allocation-free.
    pub fn functions_of(&self, object: RecordId) -> Option<AssignedFunctions<'_>> {
        let oi = *self.o_index.get(&object)? as usize;
        let range = self.o_offsets[oi] as usize..self.o_offsets[oi + 1] as usize;
        Some(AssignedFunctions {
            pairs: &self.o_pairs[range],
            ids: &self.functions,
        })
    }

    /// The function's best (highest-scoring) assigned object, if any.
    pub fn best_object_of(&self, function: FunctionId) -> Option<(RecordId, f64)> {
        self.objects_of(function)?.next()
    }

    /// Multiset encoding of the matching, byte-compatible with
    /// [`Assignment::canonical`]: `(function, object, rounded score)` triples
    /// in sorted order. Two matchings are "the same" across the repo exactly
    /// when their canonical forms are equal.
    pub fn canonical(&self) -> Vec<(usize, u64, u64)> {
        let mut v: Vec<(usize, u64, u64)> = Vec::with_capacity(self.f_pairs.len());
        for (fi, &f) in self.functions.iter().enumerate() {
            let range = self.f_offsets[fi] as usize..self.f_offsets[fi + 1] as usize;
            for &(oi, score) in &self.f_pairs[range] {
                v.push((
                    f.0,
                    self.objects[oi as usize].0,
                    (score * 1e9).round() as u64,
                ));
            }
        }
        v.sort_unstable();
        v
    }

    /// `true` when this view and an [`Assignment`] encode the same matching
    /// (canonical comparison: order-independent, scores rounded at 1e-9).
    pub fn canonical_eq(&self, assignment: &Assignment) -> bool {
        self.canonical() == assignment.canonical()
    }

    /// Materializes the view back into an [`Assignment`] (pairs in function
    /// order, best score first within a function) — the bridge to
    /// [`crate::verify_stable`] and the other `Assignment`-consuming APIs.
    pub fn to_assignment(&self) -> Assignment {
        let mut assignment = Assignment::new();
        for (fi, &f) in self.functions.iter().enumerate() {
            let range = self.f_offsets[fi] as usize..self.f_offsets[fi + 1] as usize;
            for &(oi, score) in &self.f_pairs[range] {
                assignment.push(f, self.objects[oi as usize], score);
            }
        }
        assignment
    }
}

/// Exclusive prefix sums with a trailing total: `counts = [2, 0, 1]` becomes
/// `[0, 2, 2, 3]`.
fn prefix_sums(counts: &[u32]) -> Vec<u32> {
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    offsets.push(0);
    for &c in counts {
        acc += c;
        offsets.push(acc);
    }
    offsets
}

/// Iterator over a function's assigned objects (see
/// [`AssignmentView::objects_of`]).
#[derive(Debug, Clone)]
pub struct AssignedObjects<'a> {
    pairs: &'a [(u32, f64)],
    ids: &'a [RecordId],
}

impl Iterator for AssignedObjects<'_> {
    type Item = (RecordId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let (&(oi, score), rest) = self.pairs.split_first()?;
        self.pairs = rest;
        Some((self.ids[oi as usize], score))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.pairs.len(), Some(self.pairs.len()))
    }
}

impl ExactSizeIterator for AssignedObjects<'_> {}

/// Iterator over an object's assigned functions (see
/// [`AssignmentView::functions_of`]).
#[derive(Debug, Clone)]
pub struct AssignedFunctions<'a> {
    pairs: &'a [(u32, f64)],
    ids: &'a [FunctionId],
}

impl Iterator for AssignedFunctions<'_> {
    type Item = (FunctionId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let (&(fi, score), rest) = self.pairs.split_first()?;
        self.pairs = rest;
        Some((self.ids[fi as usize], score))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.pairs.len(), Some(self.pairs.len()))
    }
}

impl ExactSizeIterator for AssignedFunctions<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> (Vec<FunctionId>, Vec<RecordId>) {
        (
            vec![FunctionId(0), FunctionId(1), FunctionId(7)],
            vec![RecordId(10), RecordId(11), RecordId(12), RecordId(13)],
        )
    }

    fn sample_pairs() -> Vec<(FunctionId, RecordId, f64)> {
        vec![
            (FunctionId(0), RecordId(12), 0.9),
            (FunctionId(1), RecordId(10), 0.7),
            (FunctionId(0), RecordId(11), 0.4),
        ]
    }

    #[test]
    fn both_directions_answer_consistently() {
        let (fs, os) = universe();
        let view = AssignmentView::from_pairs(fs, os, &sample_pairs()).unwrap();
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert!((view.total_score() - 2.0).abs() < 1e-12);

        // function 0 holds two pairs, best first
        let got: Vec<_> = view.objects_of(FunctionId(0)).unwrap().collect();
        assert_eq!(got, vec![(RecordId(12), 0.9), (RecordId(11), 0.4)]);
        assert_eq!(
            view.best_object_of(FunctionId(0)),
            Some((RecordId(12), 0.9))
        );

        // known but unmatched entities answer empty, unknown answer None
        assert_eq!(view.objects_of(FunctionId(7)).unwrap().len(), 0);
        assert_eq!(view.best_object_of(FunctionId(7)), None);
        assert!(view.objects_of(FunctionId(99)).is_none());
        assert_eq!(view.functions_of(RecordId(13)).unwrap().len(), 0);
        assert!(view.functions_of(RecordId(99)).is_none());

        // reverse direction agrees
        let got: Vec<_> = view.functions_of(RecordId(12)).unwrap().collect();
        assert_eq!(got, vec![(FunctionId(0), 0.9)]);
        let got: Vec<_> = view.functions_of(RecordId(10)).unwrap().collect();
        assert_eq!(got, vec![(FunctionId(1), 0.7)]);
    }

    #[test]
    fn canonical_matches_assignment_canonical() {
        let (fs, os) = universe();
        let mut assignment = Assignment::new();
        for &(f, o, s) in &sample_pairs() {
            assignment.push(f, o, s);
        }
        let view = AssignmentView::from_assignment(fs, os, &assignment).unwrap();
        assert_eq!(view.canonical(), assignment.canonical());
        assert!(view.canonical_eq(&assignment));
        assert_eq!(view.to_assignment().canonical(), assignment.canonical());

        // a different matching does not compare equal
        let mut other = Assignment::new();
        other.push(FunctionId(0), RecordId(12), 0.9);
        assert!(!view.canonical_eq(&other));
    }

    #[test]
    fn construction_errors_are_reported() {
        let (fs, os) = universe();
        let bad = vec![(FunctionId(42), RecordId(10), 0.5)];
        assert_eq!(
            AssignmentView::from_pairs(fs.clone(), os.clone(), &bad),
            Err(ViewError::UnknownFunction(FunctionId(42)))
        );
        let bad = vec![(FunctionId(0), RecordId(42), 0.5)];
        assert_eq!(
            AssignmentView::from_pairs(fs.clone(), os.clone(), &bad),
            Err(ViewError::UnknownObject(RecordId(42)))
        );
        assert_eq!(
            AssignmentView::from_pairs(vec![FunctionId(1), FunctionId(1)], os.clone(), &[]),
            Err(ViewError::DuplicateFunction(FunctionId(1)))
        );
        assert_eq!(
            AssignmentView::from_pairs(fs, vec![RecordId(2), RecordId(2)], &[]),
            Err(ViewError::DuplicateObject(RecordId(2)))
        );
    }

    #[test]
    fn empty_view_over_a_universe_is_valid() {
        let (fs, os) = universe();
        let view = AssignmentView::from_pairs(fs, os, &[]).unwrap();
        assert!(view.is_empty());
        assert_eq!(view.canonical(), Vec::<(usize, u64, u64)>::new());
        assert_eq!(view.objects_of(FunctionId(0)).unwrap().len(), 0);
    }

    #[test]
    fn exact_ties_order_deterministically_by_partner_index() {
        let fs = vec![FunctionId(0)];
        let os = vec![RecordId(5), RecordId(3)];
        // equal scores: group order falls back to ascending dense index,
        // i.e. universe order
        let pairs = vec![
            (FunctionId(0), RecordId(3), 0.5),
            (FunctionId(0), RecordId(5), 0.5),
        ];
        let view = AssignmentView::from_pairs(fs, os, &pairs).unwrap();
        let got: Vec<_> = view.objects_of(FunctionId(0)).unwrap().collect();
        assert_eq!(got, vec![(RecordId(5), 0.5), (RecordId(3), 0.5)]);
    }
}
