//! Per-run measurements: I/O, CPU time, peak memory of search structures.

use crate::matching::Assignment;
use pref_storage::{IoStats, PeakTracker};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Measurements collected while an assignment algorithm runs; these are the
/// three factors the paper's evaluation reports (Section 7): I/O cost, CPU
/// cost and the maximum memory consumed by search structures.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct RunMetrics {
    /// I/O performed on the object R-tree (the paper's headline metric).
    pub object_io: IoStats,
    /// I/O performed on auxiliary structures, i.e. everything that is not the
    /// object R-tree: the sorted-list accesses of SB's TA searches, the
    /// disk-resident function lists of SB-alt, and Chain's function R-tree.
    /// Only the exhaustive-scan variants (which touch no auxiliary index)
    /// report zero here.
    pub aux_io: IoStats,
    /// Wall-clock time of the run. Each batch solver runs single-threaded, so
    /// for one `Solver::solve` call this still equals CPU time; it stops being
    /// a CPU measure when runs execute concurrently (the `--jobs` figure
    /// sweeps) or when the assignment engine batches repair work between
    /// reads — treat it as elapsed time, not as a cross-thread CPU total.
    #[serde(with = "duration_serde")]
    pub cpu_time: Duration,
    /// Peak size of the algorithm's search structures, in bytes.
    pub peak_memory_bytes: u64,
    /// Number of outer loops / rounds executed.
    pub loops: u64,
    /// Number of top-1 / best-pair searches issued.
    pub searches: u64,
}

impl RunMetrics {
    /// Total I/O accesses (object tree plus auxiliary structures).
    pub fn total_io(&self) -> u64 {
        self.object_io.io_accesses() + self.aux_io.io_accesses()
    }

    /// Peak memory in MiB.
    pub fn peak_memory_mib(&self) -> f64 {
        self.peak_memory_bytes as f64 / (1024.0 * 1024.0)
    }

    /// CPU time in seconds.
    pub fn cpu_seconds(&self) -> f64 {
        self.cpu_time.as_secs_f64()
    }
}

impl std::fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "io={} cpu={:.3}s mem={:.2}MiB loops={} searches={}",
            self.total_io(),
            self.cpu_seconds(),
            self.peak_memory_mib(),
            self.loops,
            self.searches
        )
    }
}

/// The outcome of running an assignment algorithm: the matching plus the
/// measurements gathered along the way.
#[derive(Debug, Clone)]
pub struct AssignmentResult {
    /// The computed stable assignment.
    pub assignment: Assignment,
    /// Measurements of the run.
    pub metrics: RunMetrics,
}

/// Helper that tracks the peak of a recomputed memory figure.
#[derive(Debug, Default)]
pub(crate) struct MemoryGauge {
    tracker: PeakTracker,
}

impl MemoryGauge {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records an absolute measurement (bytes).
    pub(crate) fn observe(&mut self, bytes: u64) {
        self.tracker.observe(bytes);
    }

    pub(crate) fn peak(&self) -> u64 {
        self.tracker.peak()
    }
}

mod duration_serde {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        d.as_secs_f64().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let secs = f64::deserialize(d)?;
        Ok(Duration::from_secs_f64(secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_units() {
        let mut m = RunMetrics::default();
        m.object_io.physical_reads = 100;
        m.aux_io.physical_reads = 20;
        m.peak_memory_bytes = 3 * 1024 * 1024;
        m.cpu_time = Duration::from_millis(1500);
        assert_eq!(m.total_io(), 120);
        assert!((m.peak_memory_mib() - 3.0).abs() < 1e-9);
        assert!((m.cpu_seconds() - 1.5).abs() < 1e-9);
        let text = m.to_string();
        assert!(text.contains("io=120"));
    }

    #[test]
    fn serde_round_trip() {
        let m = RunMetrics {
            cpu_time: Duration::from_millis(250),
            loops: 7,
            ..Default::default()
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: RunMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.loops, 7);
        assert!((back.cpu_seconds() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn memory_gauge_tracks_peak() {
        let mut g = MemoryGauge::new();
        g.observe(10);
        g.observe(100);
        g.observe(50);
        assert_eq!(g.peak(), 100);
    }
}
