//! The [`Solver`] trait: one interface over the whole solver family.
//!
//! The paper's algorithms were first reproduced as free functions
//! ([`crate::sb`], [`crate::sb_alt`], [`crate::chain`],
//! [`crate::brute_force`]); this module puts them behind a common trait so
//! that callers — the experiment harness's dispatch, the oracle-equality
//! property tests, and the long-lived assignment engine's recompute baseline —
//! can treat "a way to compute the stable matching" as a value. The free
//! functions remain the primitive entry points; the trait impls are thin,
//! allocation-free adapters over them, and `sb` / `sb_alt` share the
//! stable-loop scaffolding of [`crate::scaffold`] underneath.

use crate::metrics::AssignmentResult;
use crate::problem::Problem;
use crate::sb::SbOptions;
use pref_rtree::RTree;

/// A stable-assignment algorithm: anything that can turn a [`Problem`] and
/// its object R-tree into an [`AssignmentResult`].
///
/// Implementations must produce the *same* stable matching (Property 2,
/// canonicalized) — they differ only in cost. The trait is object-safe, so
/// heterogeneous solver sets can be held as `Vec<Box<dyn Solver>>`.
pub trait Solver {
    /// Short human-readable name (matches the paper's series labels).
    fn name(&self) -> &'static str;

    /// Computes the stable assignment of `problem` over `tree`.
    fn solve(&self, problem: &Problem, tree: &mut RTree) -> AssignmentResult;
}

/// The skyline-based algorithm (Sections 4–6) with its configuration.
#[derive(Debug, Clone, Default)]
pub struct SbSolver {
    /// Maintenance / best-pair / multi-pair configuration.
    pub options: SbOptions,
}

impl SbSolver {
    /// The fully optimized configuration with a custom Ω fraction.
    pub fn with_omega(omega_fraction: f64) -> Self {
        Self {
            options: SbOptions {
                best_pair: crate::sb::BestPairStrategy::ResumableTa { omega_fraction },
                ..SbOptions::default()
            },
        }
    }
}

impl Solver for SbSolver {
    fn name(&self) -> &'static str {
        "SB"
    }

    fn solve(&self, problem: &Problem, tree: &mut RTree) -> AssignmentResult {
        crate::sb::sb(problem, tree, &self.options)
    }
}

/// SB-alt: batch best-pair search over disk-resident function lists
/// (Section 7.6).
#[derive(Debug, Clone)]
pub struct SbAltSolver {
    /// LRU buffer (in 4 KiB blocks) in front of the coefficient lists.
    pub list_buffer_frames: usize,
}

impl Solver for SbAltSolver {
    fn name(&self) -> &'static str {
        "SB-alt"
    }

    fn solve(&self, problem: &Problem, tree: &mut RTree) -> AssignmentResult {
        crate::sbalt::sb_alt(problem, tree, self.list_buffer_frames)
    }
}

/// The Chain competitor (spatial ECP adapted to preference functions).
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainSolver;

impl Solver for ChainSolver {
    fn name(&self) -> &'static str {
        "Chain"
    }

    fn solve(&self, problem: &Problem, tree: &mut RTree) -> AssignmentResult {
        crate::chain::chain(problem, tree)
    }
}

/// The Brute Force competitor (one resumable top-1 search per function).
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForceSolver;

impl Solver for BruteForceSolver {
    fn name(&self) -> &'static str {
        "Brute Force"
    }

    fn solve(&self, problem: &Problem, tree: &mut RTree) -> AssignmentResult {
        crate::brute::brute_force(problem, tree)
    }
}

/// Every solver variant at its default configuration, as trait objects —
/// the set the oracle-equality property tests sweep.
pub fn all_solvers() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(SbSolver::default()),
        Box::new(SbSolver {
            options: SbOptions::update_skyline_only(),
        }),
        Box::new(SbSolver {
            options: SbOptions::delta_sky(),
        }),
        Box::new(SbAltSolver {
            list_buffer_frames: 8,
        }),
        Box::new(ChainSolver),
        Box::new(BruteForceSolver),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::verify_stable;
    use crate::oracle::oracle;
    use pref_datagen::{independent_objects, uniform_weight_functions};

    #[test]
    fn trait_dispatch_matches_direct_calls() {
        let functions = uniform_weight_functions(40, 3, 301);
        let objects = independent_objects(200, 3, 302);
        let p = Problem::from_parts(functions, objects).unwrap();

        let direct = {
            let mut tree = p.build_tree(Some(8), 0.02);
            crate::sb::sb(&p, &mut tree, &SbOptions::default())
        };
        let via_trait = {
            let mut tree = p.build_tree(Some(8), 0.02);
            let solver: Box<dyn Solver> = Box::new(SbSolver::default());
            solver.solve(&p, &mut tree)
        };
        assert_eq!(
            direct.assignment.canonical(),
            via_trait.assignment.canonical()
        );
        assert_eq!(direct.metrics.loops, via_trait.metrics.loops);
    }

    #[test]
    fn every_variant_reproduces_the_oracle() {
        let functions = uniform_weight_functions(30, 3, 303);
        let objects = independent_objects(150, 3, 304);
        let p = Problem::from_parts(functions, objects).unwrap();
        let want = oracle(&p).canonical();
        for solver in all_solvers() {
            let mut tree = p.build_tree(Some(8), 0.02);
            let result = solver.solve(&p, &mut tree);
            verify_stable(&p, &result.assignment).unwrap();
            assert_eq!(result.assignment.canonical(), want, "{}", solver.name());
        }
    }

    #[test]
    fn names_are_distinct_per_algorithm_family() {
        let mut names: Vec<&str> = vec![
            SbSolver::default().name(),
            SbAltSolver {
                list_buffer_frames: 4,
            }
            .name(),
            ChainSolver.name(),
            BruteForceSolver.name(),
        ];
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn with_omega_sets_the_candidate_queue_fraction() {
        let s = SbSolver::with_omega(0.1);
        match s.options.best_pair {
            crate::sb::BestPairStrategy::ResumableTa { omega_fraction } => {
                assert!((omega_fraction - 0.1).abs() < 1e-12)
            }
            other => panic!("unexpected strategy {other:?}"),
        }
    }
}
