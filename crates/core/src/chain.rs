//! The Chain competitor: the spatial ECP/Chain algorithm of Wong et al.,
//! adapted to preference functions as described in Section 7 of the paper.
//!
//! The functions are indexed by a main-memory R-tree built over their
//! (effective) weight vectors; top-1 searches in either direction are fresh
//! BRS queries — Chain performs even more top-1 searches than Brute Force and
//! cannot resume them, which is why it is the slowest competitor.

use crate::matching::Assignment;
use crate::metrics::{AssignmentResult, MemoryGauge, RunMetrics};
use crate::problem::Problem;
use pref_geom::LinearFunction;
use pref_rtree::{RTree, RTreeConfig, RecordId};
use pref_storage::IoStats;
use pref_topk::RankedSearch;
use std::collections::VecDeque;
use std::time::Instant;

/// Work items flowing through the Chain queue: either a preference function
/// (by index) or an object (by record id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Item {
    Function(usize),
    Object(RecordId),
}

/// Runs the Chain assignment algorithm.
pub fn chain(problem: &Problem, tree: &mut RTree) -> AssignmentResult {
    let start = Instant::now();
    let stats_before = tree.stats();
    let n = problem.num_functions();

    // main-memory R-tree over the functions' effective weight vectors
    let weight_records: Vec<(RecordId, pref_geom::Point)> = problem
        .functions()
        .iter()
        .enumerate()
        .map(|(i, f)| (RecordId(i as u64), f.function.effective_weights_as_point()))
        .collect();
    let mut ftree = RTree::bulk_load(RTreeConfig::for_dims(problem.dims()), weight_records)
        .expect("function weights share the problem dimensionality");
    // "main memory" index: a buffer large enough to hold the whole tree
    ftree.set_buffer_frames(ftree.num_pages().max(1));

    let mut f_remaining: Vec<u32> = problem.functions().iter().map(|f| f.capacity).collect();
    // dense per-object capacities, indexed by the problem's dense object index
    let mut o_remaining: Vec<u32> = problem.objects().iter().map(|o| o.capacity).collect();
    let mut demand: u64 = f_remaining.iter().map(|&c| c as u64).sum();
    let mut supply: u64 = o_remaining.iter().map(|&c| c as u64).sum();

    let mut assignment = Assignment::new();
    let mut gauge = MemoryGauge::new();
    let mut queue: VecDeque<Item> = VecDeque::new();
    let mut next_seed = 0usize;
    let mut searches: u64 = 0;
    let mut loops: u64 = 0;
    let mut since_progress: u64 = 0;
    let stall_limit = 4 * (problem.num_functions() + problem.num_objects()) as u64 + 16;

    // Fresh top-1 object for a function (skipping exhausted objects). Exact
    // score ties are resolved like the oracle does — lowest dense object
    // index — by draining the search's complete top tie group (ranked
    // searches yield non-increasing scores, so the group ends at the first
    // strictly lower result) and keeping the oracle's representative.
    let top1_object = |tree: &mut RTree,
                       fi: usize,
                       o_remaining: &[u32],
                       searches: &mut u64|
     -> Option<(RecordId, f64)> {
        *searches += 1;
        let mut s = RankedSearch::new(problem.functions()[fi].function.clone());
        let accept = |r: RecordId| problem.object_index(r).is_some_and(|i| o_remaining[i] > 0);
        let (first, score) = s.next_accepted(tree, accept)?;
        let mut best = first.record;
        let mut best_oi = problem.object_index(best).expect("object exists");
        while let Some((d, tie)) = s.next_accepted(tree, accept) {
            if tie < score {
                break;
            }
            let oi = problem.object_index(d.record).expect("object exists");
            if oi < best_oi {
                best_oi = oi;
                best = d.record;
            }
        }
        Some((best, score))
    };
    // Fresh top-1 function for an object (skipping exhausted functions).
    // The weight-space search scores functions through a *normalized* query
    // direction — a different floating-point computation than the true
    // `f(o)`, so two functions whose true scores differ by an ulp can come
    // back mis-ordered (and exactly-tied functions in arbitrary order). The
    // search is therefore only the candidate generator: the near-tie group
    // at the top (within 1e-9, far above any rounding skew) is re-ranked by
    // the exact score with the oracle's tie order — highest true score,
    // then lowest function index (the weight tree's record ids are the
    // function indices).
    let top1_function = |ftree: &mut RTree,
                         object: RecordId,
                         f_remaining: &[u32],
                         searches: &mut u64|
     -> Option<usize> {
        *searches += 1;
        let oi = problem.object_index(object).expect("object exists");
        let point = &problem.objects()[oi].point;
        // the best function for an object is a top-1 query in weight space
        // whose scoring direction is the object itself; an all-zero object
        // degenerates to a uniform direction (every function scores it 0)
        let query = LinearFunction::new(point.coords().to_vec())
            .unwrap_or_else(|_| LinearFunction::new(vec![1.0; point.dims()]).unwrap());
        let mut s = RankedSearch::new(query);
        let accept = |r: RecordId| f_remaining[r.0 as usize] > 0;
        let (first, top) = s.next_accepted(ftree, accept)?;
        let exact = |fi: usize| problem.functions()[fi].function.score(point);
        let mut best = first.record.0 as usize;
        let mut best_score = exact(best);
        while let Some((d, near)) = s.next_accepted(ftree, accept) {
            if near < top - 1e-9 {
                break;
            }
            let fi = d.record.0 as usize;
            let score = exact(fi);
            if score > best_score || (score == best_score && fi < best) {
                best = fi;
                best_score = score;
            }
        }
        Some(best)
    };

    while demand > 0 && supply > 0 {
        loops += 1;
        since_progress += 1;
        if since_progress > stall_limit {
            // Tie-cycle safety net: fall back to a direct scan for the global
            // best remaining pair, which is stable by Property 2.
            if let Some((fi, obj, score)) = global_best_pair(problem, &f_remaining, &o_remaining) {
                assign(
                    problem,
                    &mut assignment,
                    &mut f_remaining,
                    &mut o_remaining,
                    &mut demand,
                    &mut supply,
                    fi,
                    obj,
                    score,
                );
                since_progress = 0;
                continue;
            }
            break;
        }
        let item = match queue.pop_front() {
            Some(item) => item,
            None => {
                // pick the next unassigned function as a fresh chain seed
                while next_seed < n && f_remaining[next_seed] == 0 {
                    next_seed += 1;
                }
                if next_seed >= n {
                    // all leading functions done but capacities elsewhere may
                    // remain; rescan from the beginning
                    match f_remaining.iter().position(|&c| c > 0) {
                        Some(i) => Item::Function(i),
                        None => break,
                    }
                } else {
                    Item::Function(next_seed)
                }
            }
        };
        match item {
            Item::Function(fi) => {
                if f_remaining[fi] == 0 {
                    continue;
                }
                let Some((obj, score)) = top1_object(tree, fi, &o_remaining, &mut searches) else {
                    break;
                };
                let Some(back) = top1_function(&mut ftree, obj, &f_remaining, &mut searches) else {
                    break;
                };
                if back == fi {
                    assign(
                        problem,
                        &mut assignment,
                        &mut f_remaining,
                        &mut o_remaining,
                        &mut demand,
                        &mut supply,
                        fi,
                        obj,
                        score,
                    );
                    since_progress = 0;
                } else {
                    queue.push_back(Item::Object(obj));
                }
            }
            Item::Object(obj) => {
                let oi = problem.object_index(obj).expect("object exists");
                if o_remaining[oi] == 0 {
                    continue;
                }
                let Some(fi) = top1_function(&mut ftree, obj, &f_remaining, &mut searches) else {
                    break;
                };
                let Some((back_obj, score)) = top1_object(tree, fi, &o_remaining, &mut searches)
                else {
                    break;
                };
                if back_obj == obj {
                    assign(
                        problem,
                        &mut assignment,
                        &mut f_remaining,
                        &mut o_remaining,
                        &mut demand,
                        &mut supply,
                        fi,
                        obj,
                        score,
                    );
                    since_progress = 0;
                } else {
                    queue.push_back(Item::Function(fi));
                }
            }
        }
        if loops % 64 == 1 {
            gauge.observe(queue.len() as u64 * 16 + ftree.num_pages() as u64 * 64);
        }
    }
    gauge.observe(queue.len() as u64 * 16 + ftree.num_pages() as u64 * 64);

    // The function R-tree is an auxiliary structure held in main memory (its
    // buffer covers the whole tree), so — like SB's in-memory sorted lists —
    // every node access is charged as one aux access, with no buffer discount:
    // aux_io stays comparable across algorithms.
    let ftree_accesses = ftree.stats().logical_reads;
    let metrics = RunMetrics {
        object_io: tree.stats().since(&stats_before),
        aux_io: IoStats {
            logical_reads: ftree_accesses,
            physical_reads: ftree_accesses,
            ..IoStats::default()
        },
        cpu_time: start.elapsed(),
        peak_memory_bytes: gauge.peak(),
        loops,
        searches,
    };
    AssignmentResult {
        assignment,
        metrics,
    }
}

#[allow(clippy::too_many_arguments)]
fn assign(
    problem: &Problem,
    assignment: &mut Assignment,
    f_remaining: &mut [u32],
    o_remaining: &mut [u32],
    demand: &mut u64,
    supply: &mut u64,
    fi: usize,
    obj: RecordId,
    score: f64,
) {
    assignment.push(problem.functions()[fi].id, obj, score);
    f_remaining[fi] -= 1;
    o_remaining[problem.object_index(obj).expect("object exists")] -= 1;
    *demand -= 1;
    *supply -= 1;
}

/// Exhaustive search for the best remaining pair; only used by the stall
/// safety net, which fires on pathological score-tie cycles. Exact score ties
/// break to the lowest function index, then the lowest *dense* object index
/// (first-seen wins in table order), matching the oracle's deterministic
/// order.
fn global_best_pair(
    problem: &Problem,
    f_remaining: &[u32],
    o_remaining: &[u32],
) -> Option<(usize, RecordId, f64)> {
    let mut best: Option<(usize, RecordId, f64)> = None;
    for (fi, f) in problem.functions().iter().enumerate() {
        if f_remaining[fi] == 0 {
            continue;
        }
        for (oi, o) in problem.objects().iter().enumerate() {
            if o_remaining[oi] == 0 {
                continue;
            }
            let score = f.function.score(&o.point);
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((fi, o.id, score));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::verify_stable;
    use crate::oracle::oracle;
    use crate::problem::{ObjectRecord, PreferenceFunction};
    use pref_datagen::{anti_correlated_objects, independent_objects, uniform_weight_functions};
    use pref_geom::Point;

    #[test]
    fn solves_the_paper_example() {
        let p = Problem::new(
            vec![
                PreferenceFunction::new(0, LinearFunction::new(vec![0.8, 0.2]).unwrap()),
                PreferenceFunction::new(1, LinearFunction::new(vec![0.2, 0.8]).unwrap()),
                PreferenceFunction::new(2, LinearFunction::new(vec![0.5, 0.5]).unwrap()),
            ],
            vec![
                ObjectRecord::new(0, Point::from_slice(&[0.5, 0.6])),
                ObjectRecord::new(1, Point::from_slice(&[0.2, 0.7])),
                ObjectRecord::new(2, Point::from_slice(&[0.8, 0.2])),
                ObjectRecord::new(3, Point::from_slice(&[0.4, 0.4])),
            ],
        )
        .unwrap();
        let mut tree = p.build_tree(None, 0.0);
        let result = chain(&p, &mut tree);
        verify_stable(&p, &result.assignment).unwrap();
        assert_eq!(result.assignment.canonical(), oracle(&p).canonical());
    }

    #[test]
    fn matches_oracle_on_random_instances() {
        for seed in [21u64, 22, 23] {
            let functions = uniform_weight_functions(50, 3, seed);
            let objects = independent_objects(250, 3, seed + 100);
            let p = Problem::from_parts(functions, objects).unwrap();
            let mut tree = p.build_tree(Some(16), 0.02);
            let result = chain(&p, &mut tree);
            verify_stable(&p, &result.assignment).unwrap();
            assert_eq!(result.assignment.canonical(), oracle(&p).canonical());
        }
    }

    #[test]
    fn anti_correlated_instances() {
        let functions = uniform_weight_functions(40, 3, 31);
        let objects = anti_correlated_objects(200, 3, 32);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(12), 0.02);
        let result = chain(&p, &mut tree);
        verify_stable(&p, &result.assignment).unwrap();
        assert_eq!(result.assignment.canonical(), oracle(&p).canonical());
    }

    #[test]
    fn capacitated_assignment() {
        let functions: Vec<PreferenceFunction> = uniform_weight_functions(15, 2, 41)
            .into_iter()
            .enumerate()
            .map(|(i, f)| PreferenceFunction::new(i, f).with_capacity(2))
            .collect();
        let objects: Vec<ObjectRecord> = independent_objects(60, 2, 42)
            .into_iter()
            .map(|(id, p)| ObjectRecord {
                id,
                point: p,
                capacity: 1 + (id.0 % 2) as u32,
            })
            .collect();
        let p = Problem::new(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(8), 0.0);
        let result = chain(&p, &mut tree);
        verify_stable(&p, &result.assignment).unwrap();
        assert_eq!(result.assignment.canonical(), oracle(&p).canonical());
    }

    #[test]
    fn more_functions_than_objects() {
        let functions = uniform_weight_functions(40, 2, 51);
        let objects = independent_objects(15, 2, 52);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(8), 0.0);
        let result = chain(&p, &mut tree);
        assert_eq!(result.assignment.len(), 15);
        verify_stable(&p, &result.assignment).unwrap();
    }

    #[test]
    fn chain_issues_more_searches_than_pairs() {
        let functions = uniform_weight_functions(30, 3, 61);
        let objects = independent_objects(300, 3, 62);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(16), 0.02);
        let result = chain(&p, &mut tree);
        assert!(result.metrics.searches as usize >= 2 * result.assignment.len());
        assert!(result.metrics.object_io.logical_reads > 0);
    }
}
