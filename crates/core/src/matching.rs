//! Assignments (matchings) and stability verification.

use crate::problem::{FunctionId, Problem};
use pref_rtree::RecordId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One assigned function-object pair with its score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchPair {
    /// The assigned preference function (user).
    pub function: FunctionId,
    /// The object assigned to the function.
    pub object: RecordId,
    /// The score `f(o)` at assignment time.
    pub score: f64,
}

/// A complete assignment: the list of matched pairs in the order they were
/// established (descending score for a stable assignment).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    pairs: Vec<MatchPair>,
}

impl Assignment {
    /// An empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pair (kept in insertion order).
    pub fn push(&mut self, function: FunctionId, object: RecordId, score: f64) {
        self.pairs.push(MatchPair {
            function,
            object,
            score,
        });
    }

    /// All pairs in assignment order.
    pub fn pairs(&self) -> &[MatchPair] {
        &self.pairs
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when no pair has been assigned.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The first object assigned to a function (functions with capacity > 1
    /// may appear in several pairs; see [`Assignment::objects_of`]).
    pub fn object_of(&self, function: FunctionId) -> Option<RecordId> {
        self.pairs
            .iter()
            .find(|p| p.function == function)
            .map(|p| p.object)
    }

    /// All objects assigned to a function.
    pub fn objects_of(&self, function: FunctionId) -> Vec<RecordId> {
        self.pairs
            .iter()
            .filter(|p| p.function == function)
            .map(|p| p.object)
            .collect()
    }

    /// All functions an object was assigned to.
    pub fn functions_of(&self, object: RecordId) -> Vec<FunctionId> {
        self.pairs
            .iter()
            .filter(|p| p.object == object)
            .map(|p| p.function)
            .collect()
    }

    /// Sum of the scores of all pairs (a common quality measure).
    pub fn total_score(&self) -> f64 {
        self.pairs.iter().map(|p| p.score).sum()
    }

    /// Multiset of (function, object, rounded score) triples, independent of
    /// assignment order; used to compare algorithms that may emit pairs in
    /// different orders.
    pub fn canonical(&self) -> Vec<(usize, u64, u64)> {
        let mut v: Vec<(usize, u64, u64)> = self
            .pairs
            .iter()
            .map(|p| (p.function.0, p.object.0, (p.score * 1e9).round() as u64))
            .collect();
        v.sort_unstable();
        v
    }
}

/// A violation of the stable-assignment property.
#[derive(Debug, Clone, PartialEq)]
pub enum StabilityViolation {
    /// A function or object was assigned more times than its capacity allows.
    CapacityExceeded(String),
    /// A pair's recorded score does not match `f(o)`.
    WrongScore {
        /// The offending pair.
        pair: MatchPair,
        /// The recomputed score.
        expected: f64,
    },
    /// A blocking pair exists: both sides strictly prefer each other over
    /// (one of) their current partners, violating Definition 1.
    BlockingPair {
        /// The function side of the blocking pair.
        function: FunctionId,
        /// The object side of the blocking pair.
        object: RecordId,
        /// Score of the blocking pair.
        score: f64,
    },
    /// Fewer pairs were produced than `min(total demand, total supply)`.
    IncompleteMatching {
        /// Pairs produced.
        got: usize,
        /// Pairs expected.
        expected: u64,
    },
    /// A pair references an unknown function or object.
    UnknownId(String),
}

impl std::fmt::Display for StabilityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StabilityViolation::CapacityExceeded(msg) => write!(f, "capacity exceeded: {msg}"),
            StabilityViolation::WrongScore { pair, expected } => write!(
                f,
                "pair ({}, {}) records score {} but f(o) = {expected}",
                pair.function, pair.object, pair.score
            ),
            StabilityViolation::BlockingPair {
                function,
                object,
                score,
            } => write!(f, "blocking pair ({function}, {object}) with score {score}"),
            StabilityViolation::IncompleteMatching { got, expected } => {
                write!(f, "incomplete matching: {got} pairs, expected {expected}")
            }
            StabilityViolation::UnknownId(msg) => write!(f, "unknown id: {msg}"),
        }
    }
}

/// Verifies that an assignment is a complete, capacity-respecting **stable**
/// matching for the problem (Definition 1 / Property 2 generalized to
/// capacities).
///
/// A pair `(f, o)` *blocks* the assignment if `f` still has unused capacity or
/// is matched to some object it likes strictly less than `o`, and `o` still
/// has unused capacity or is matched to some function that scores it strictly
/// lower than `f` does. The check is quadratic and intended for tests and
/// examples.
pub fn verify_stable(problem: &Problem, assignment: &Assignment) -> Result<(), StabilityViolation> {
    // capacity bookkeeping and score validation
    let mut f_used: HashMap<FunctionId, u32> = HashMap::new();
    let mut o_used: HashMap<RecordId, u32> = HashMap::new();
    for pair in assignment.pairs() {
        let function = problem
            .function(pair.function)
            .ok_or_else(|| StabilityViolation::UnknownId(format!("{}", pair.function)))?;
        let object = problem
            .object(pair.object)
            .ok_or_else(|| StabilityViolation::UnknownId(format!("{}", pair.object)))?;
        let expected = function.function.score(&object.point);
        if (expected - pair.score).abs() > 1e-9 {
            return Err(StabilityViolation::WrongScore {
                pair: *pair,
                expected,
            });
        }
        let fu = f_used.entry(pair.function).or_insert(0);
        *fu += 1;
        if *fu > function.capacity {
            return Err(StabilityViolation::CapacityExceeded(format!(
                "{} used {} of {}",
                pair.function, fu, function.capacity
            )));
        }
        let ou = o_used.entry(pair.object).or_insert(0);
        *ou += 1;
        if *ou > object.capacity {
            return Err(StabilityViolation::CapacityExceeded(format!(
                "{} used {} of {}",
                pair.object, ou, object.capacity
            )));
        }
    }

    // completeness
    let expected_pairs = problem.expected_pairs();
    if (assignment.len() as u64) < expected_pairs {
        return Err(StabilityViolation::IncompleteMatching {
            got: assignment.len(),
            expected: expected_pairs,
        });
    }

    // worst (lowest-scoring) partner each side currently holds, if saturated
    let mut f_worst: HashMap<FunctionId, f64> = HashMap::new();
    let mut o_worst: HashMap<RecordId, f64> = HashMap::new();
    for pair in assignment.pairs() {
        f_worst
            .entry(pair.function)
            .and_modify(|v| *v = v.min(pair.score))
            .or_insert(pair.score);
        o_worst
            .entry(pair.object)
            .and_modify(|v| *v = v.min(pair.score))
            .or_insert(pair.score);
    }

    // blocking-pair scan
    for function in problem.functions() {
        let f_saturated = f_used.get(&function.id).copied().unwrap_or(0) >= function.capacity;
        for object in problem.objects() {
            let score = function.function.score(&object.point);
            let o_saturated = o_used.get(&object.id).copied().unwrap_or(0) >= object.capacity;
            let f_wants = if f_saturated {
                score > f_worst.get(&function.id).copied().unwrap_or(f64::MIN) + 1e-9
            } else {
                true
            };
            let o_wants = if o_saturated {
                score > o_worst.get(&object.id).copied().unwrap_or(f64::MIN) + 1e-9
            } else {
                true
            };
            // an unsaturated function facing an unsaturated object is only a
            // violation if the matching could still have grown, which the
            // completeness check above already guarantees cannot happen
            if f_wants && o_wants && (f_saturated || o_saturated) {
                return Err(StabilityViolation::BlockingPair {
                    function: function.id,
                    object: object.id,
                    score,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ObjectRecord, PreferenceFunction};
    use pref_geom::{LinearFunction, Point};

    fn figure1_problem() -> Problem {
        Problem::new(
            vec![
                PreferenceFunction::new(0, LinearFunction::new(vec![0.8, 0.2]).unwrap()),
                PreferenceFunction::new(1, LinearFunction::new(vec![0.2, 0.8]).unwrap()),
                PreferenceFunction::new(2, LinearFunction::new(vec![0.5, 0.5]).unwrap()),
            ],
            vec![
                ObjectRecord::new(0, Point::from_slice(&[0.5, 0.6])), // a
                ObjectRecord::new(1, Point::from_slice(&[0.2, 0.7])), // b
                ObjectRecord::new(2, Point::from_slice(&[0.8, 0.2])), // c
                ObjectRecord::new(3, Point::from_slice(&[0.4, 0.4])), // d
            ],
        )
        .unwrap()
    }

    fn stable_figure1_assignment(p: &Problem) -> Assignment {
        // the assignment derived in the paper: (f1,c), (f2,b), (f3,a)
        let mut a = Assignment::new();
        a.push(
            FunctionId(0),
            RecordId(2),
            p.score(FunctionId(0), RecordId(2)).unwrap(),
        );
        a.push(
            FunctionId(1),
            RecordId(1),
            p.score(FunctionId(1), RecordId(1)).unwrap(),
        );
        a.push(
            FunctionId(2),
            RecordId(0),
            p.score(FunctionId(2), RecordId(0)).unwrap(),
        );
        a
    }

    #[test]
    fn paper_assignment_is_stable() {
        let p = figure1_problem();
        let a = stable_figure1_assignment(&p);
        verify_stable(&p, &a).unwrap();
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(a.total_score() > 0.0);
        assert_eq!(a.object_of(FunctionId(0)), Some(RecordId(2)));
        assert_eq!(a.functions_of(RecordId(1)), vec![FunctionId(1)]);
    }

    #[test]
    fn swapping_partners_creates_a_blocking_pair() {
        let p = figure1_problem();
        let mut a = Assignment::new();
        // give f1 object a and f3 object c: (f1, c) now blocks
        a.push(
            FunctionId(0),
            RecordId(0),
            p.score(FunctionId(0), RecordId(0)).unwrap(),
        );
        a.push(
            FunctionId(1),
            RecordId(1),
            p.score(FunctionId(1), RecordId(1)).unwrap(),
        );
        a.push(
            FunctionId(2),
            RecordId(2),
            p.score(FunctionId(2), RecordId(2)).unwrap(),
        );
        match verify_stable(&p, &a) {
            Err(StabilityViolation::BlockingPair {
                function, object, ..
            }) => {
                assert_eq!(function, FunctionId(0));
                assert_eq!(object, RecordId(2));
            }
            other => panic!("expected a blocking pair, got {other:?}"),
        }
    }

    #[test]
    fn wrong_score_detected() {
        let p = figure1_problem();
        let mut a = stable_figure1_assignment(&p);
        a.pairs[0].score += 0.5;
        assert!(matches!(
            verify_stable(&p, &a),
            Err(StabilityViolation::WrongScore { .. })
        ));
    }

    #[test]
    fn incomplete_matching_detected() {
        let p = figure1_problem();
        let mut a = stable_figure1_assignment(&p);
        a.pairs.pop();
        assert!(matches!(
            verify_stable(&p, &a),
            Err(StabilityViolation::IncompleteMatching {
                got: 2,
                expected: 3
            })
        ));
    }

    #[test]
    fn capacity_violation_detected() {
        let p = figure1_problem();
        let mut a = stable_figure1_assignment(&p);
        // assign object c a second time
        a.push(
            FunctionId(1),
            RecordId(2),
            p.score(FunctionId(1), RecordId(2)).unwrap(),
        );
        assert!(matches!(
            verify_stable(&p, &a),
            Err(StabilityViolation::CapacityExceeded(_))
        ));
    }

    #[test]
    fn unknown_ids_detected() {
        let p = figure1_problem();
        let mut a = Assignment::new();
        a.push(FunctionId(99), RecordId(0), 0.5);
        assert!(matches!(
            verify_stable(&p, &a),
            Err(StabilityViolation::UnknownId(_))
        ));
    }

    #[test]
    fn canonical_form_is_order_independent() {
        let p = figure1_problem();
        let a = stable_figure1_assignment(&p);
        let mut b = Assignment::new();
        for pair in a.pairs().iter().rev() {
            b.push(pair.function, pair.object, pair.score);
        }
        assert_eq!(a.canonical(), b.canonical());
        assert_ne!(a.pairs(), b.pairs());
    }

    #[test]
    fn violation_messages_are_informative() {
        let v = StabilityViolation::BlockingPair {
            function: FunctionId(1),
            object: RecordId(2),
            score: 0.9,
        };
        assert!(v.to_string().contains("f1"));
        assert!(v.to_string().contains("r2"));
        let v = StabilityViolation::IncompleteMatching {
            got: 1,
            expected: 3,
        };
        assert!(v.to_string().contains('3'));
    }

    #[test]
    fn capacitated_stability_accepts_multi_assignment() {
        // one function with capacity 2 taking the two best objects is stable
        let p = Problem::new(
            vec![
                PreferenceFunction::new(0, LinearFunction::new(vec![0.5, 0.5]).unwrap())
                    .with_capacity(2),
            ],
            vec![
                ObjectRecord::new(0, Point::from_slice(&[0.9, 0.9])),
                ObjectRecord::new(1, Point::from_slice(&[0.5, 0.5])),
                ObjectRecord::new(2, Point::from_slice(&[0.1, 0.1])),
            ],
        )
        .unwrap();
        let mut a = Assignment::new();
        a.push(
            FunctionId(0),
            RecordId(0),
            p.score(FunctionId(0), RecordId(0)).unwrap(),
        );
        a.push(
            FunctionId(0),
            RecordId(1),
            p.score(FunctionId(0), RecordId(1)).unwrap(),
        );
        verify_stable(&p, &a).unwrap();
        assert_eq!(a.objects_of(FunctionId(0)).len(), 2);
        // but taking the worst two is not stable
        let mut bad = Assignment::new();
        bad.push(
            FunctionId(0),
            RecordId(1),
            p.score(FunctionId(0), RecordId(1)).unwrap(),
        );
        bad.push(
            FunctionId(0),
            RecordId(2),
            p.score(FunctionId(0), RecordId(2)).unwrap(),
        );
        assert!(verify_stable(&p, &bad).is_err());
    }
}
