//! The shared stamp-slab reciprocal-pair step of the SB solvers.
//!
//! Both `sb` and `sb_alt` end each loop the same way: given every skyline
//! object's best function (`object_best`), find every candidate function's
//! best skyline object, keep the reciprocal pairs (Property 2), fall back to
//! the single best `(function, its best object)` entry when exact score ties
//! make the argmax choices cyclic, and emit the pairs in descending score
//! order. The two solvers differ only in how a function scores a point, so
//! that is passed in as a closure. Keeping one implementation here is what
//! guarantees the two solvers cannot drift apart on tie-breaking.

use pref_geom::Point;
use pref_rtree::RecordId;

/// Computes the loop's stable pairs `(function, dense object index, score)`.
///
/// * `sky_views` — the loop's skyline entries as `(dense index, record,
///   &point)` views,
/// * `object_best[oi]` — `(stamp, best function, score)` slab, valid for this
///   loop where the stamp matches,
/// * `function_best` — scratch slab, overwritten here,
/// * `candidate_functions` — the functions named by some `object_best` entry;
///   sorted in place so every scan below is deterministic.
///
/// Exact score ties break to the lowest *dense* object index (functions
/// picking objects) and the lowest function index (the fallback entry and the
/// output order) — the same order in which [`crate::oracle::oracle`] consumes
/// its sorted score list, so tied instances reproduce the oracle's canonical
/// matching even when record ids are not in table order.
pub(crate) fn reciprocal_pairs(
    stamp: u64,
    sky_views: &[(usize, RecordId, &Point)],
    object_best: &[(u64, usize, f64)],
    function_best: &mut [(u64, usize, f64)],
    candidate_functions: &mut [usize],
    score: impl Fn(usize, &Point) -> f64,
) -> Vec<(usize, usize, f64)> {
    // --- best skyline object for every candidate function -------------------
    candidate_functions.sort_unstable();
    for &fi in candidate_functions.iter() {
        let mut best: Option<(usize, f64)> = None;
        for &(oi, _, point) in sky_views {
            let s = score(fi, point);
            let better = match best {
                None => true,
                // exact score ties break to the lowest dense object index
                Some((best_oi, bs)) => s > bs || (s == bs && oi < best_oi),
            };
            if better {
                best = Some((oi, s));
            }
        }
        if let Some((oi, s)) = best {
            function_best[fi] = (stamp, oi, s);
        }
    }

    // --- reciprocal pairs are stable (Property 2) ---------------------------
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    for &fi in candidate_functions.iter() {
        let (st, oi, score) = function_best[fi];
        if st != stamp {
            continue;
        }
        let (ost, best_f, _) = object_best[oi];
        if ost == stamp && best_f == fi {
            pairs.push((fi, oi, score));
        }
    }
    if pairs.is_empty() {
        // Exact score ties can make the argmax choices cyclic, leaving no
        // reciprocal pair. The highest-scoring (function, its best object)
        // entry is still stable — no strictly better partner exists for
        // either side — so emit it to guarantee progress. Candidates are
        // sorted, so ties resolve to the lowest function index.
        let mut fallback: Option<(usize, usize, f64)> = None;
        for &fi in candidate_functions.iter() {
            let (st, oi, score) = function_best[fi];
            if st != stamp {
                continue;
            }
            if fallback.is_none_or(|(_, _, bs)| score > bs) {
                fallback = Some((fi, oi, score));
            }
        }
        if let Some(pair) = fallback {
            pairs.push(pair);
        }
    }
    // descending score order (the order in which the iterative definition of
    // Section 3 would establish the pairs); exact ties in ascending function
    // order for determinism
    pairs.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    pairs
}
