//! The shared stamp-slab reciprocal-pair step of the SB solvers.
//!
//! Both `sb` and `sb_alt` end each loop the same way: given every skyline
//! object's best function (`object_best`), find every candidate function's
//! best skyline object, keep the reciprocal pairs (Property 2), fall back to
//! the single best `(function, its best object)` entry when exact score ties
//! make the argmax choices cyclic, and emit the pairs in descending score
//! order. The two solvers differ only in which coefficient rows a function
//! scores with, so that is passed in as a [`ScoreTable`]. Keeping one
//! implementation here is what guarantees the two solvers cannot drift apart
//! on tie-breaking.
//!
//! # Columnar scoring and parallelism
//!
//! The per-function argmax is the solvers' scoring hot spot: every candidate
//! function scores every skyline object, `|candidates| × |skyline|` dot
//! products per loop. The step therefore
//!
//! 1. mirrors the loop's skyline working set into a reusable [`SoaBlock`]
//!    (dimension-major lanes) and batch-scores each candidate row with the
//!    [`pref_geom::kernel`] lane kernels, and
//! 2. optionally partitions the candidate set across a
//!    [`WorkStealingPool`] — each function's argmax is independent, so the
//!    split is embarrassingly parallel.
//!
//! **Determinism contract.** The kernels are bit-identical to the scalar
//! scoring path, and the argmax comparator (`s > bs || (s == bs && oi <
//! best_oi)`) is a strict total order on `(score, dense index)` — its result
//! does not depend on scan order. Partition results are merged back into
//! `function_best` slots keyed by function index, so the pairs that leave
//! this function are byte-identical at any thread count, pool or no pool.

use pref_geom::{Point, ScoreTable, SoaBlock};
use pref_rtree::RecordId;
use pref_sync::WorkStealingPool;
use std::sync::Arc;

/// Candidate-partition work (candidate count × skyline size) below which the
/// pool is not worth waking: one loop of dot products at this size costs less
/// than the batch handshake.
const PARALLEL_WORK_FLOOR: usize = 4096;

/// Reusable scratch for the pairing step, owned by the solver scaffold.
///
/// The block and dense-index mirror live behind `Arc` so the parallel path
/// can hand clones to pool workers without copying the lanes; by the time a
/// batch returns every worker clone is dropped, so the next loop's
/// [`Arc::make_mut`] reuses the allocation in place instead of cloning.
pub(crate) struct PairScratch {
    /// Columnar mirror of the loop's skyline points, in `sky_views` order.
    block: Arc<SoaBlock>,
    /// Dense object index of each block row (`sky_views[j].0`).
    ois: Arc<Vec<usize>>,
    /// Score lane for the serial path.
    scores: Vec<f64>,
}

impl PairScratch {
    pub(crate) fn new() -> Self {
        Self {
            block: Arc::new(SoaBlock::new()),
            ois: Arc::new(Vec::new()),
            scores: Vec::new(),
        }
    }
}

/// Best `(dense object index, score)` of one score lane: highest score, exact
/// ties to the lowest dense index — a scan-order-independent argmax.
fn lane_argmax(ois: &[usize], scores: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (&oi, &s) in ois.iter().zip(scores) {
        let better = match best {
            None => true,
            Some((best_oi, bs)) => s > bs || (s == bs && oi < best_oi),
        };
        if better {
            best = Some((oi, s));
        }
    }
    best
}

/// Computes the loop's stable pairs `(function, dense object index, score)`.
///
/// * `sky_views` — the loop's skyline entries as `(dense index, record,
///   &point)` views,
/// * `object_best[oi]` — `(stamp, best function, score)` slab, valid for this
///   loop where the stamp matches,
/// * `function_best` — scratch slab, overwritten here,
/// * `candidate_functions` — the functions named by some `object_best` entry;
///   sorted in place so every scan below is deterministic,
/// * `table` — the solver's scoring rows (effective coefficients),
/// * `pool` — optional worker pool; used only when the loop's scoring work
///   clears [`PARALLEL_WORK_FLOOR`],
/// * `scratch` — reusable columnar scratch (see [`PairScratch`]).
///
/// Exact score ties break to the lowest *dense* object index (functions
/// picking objects) and the lowest function index (the fallback entry and the
/// output order) — the same order in which [`crate::oracle::oracle`] consumes
/// its sorted score list, so tied instances reproduce the oracle's canonical
/// matching even when record ids are not in table order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn reciprocal_pairs(
    stamp: u64,
    sky_views: &[(usize, RecordId, &Point)],
    object_best: &[(u64, usize, f64)],
    function_best: &mut [(u64, usize, f64)],
    candidate_functions: &mut [usize],
    table: &ScoreTable,
    pool: Option<&WorkStealingPool>,
    scratch: &mut PairScratch,
) -> Vec<(usize, usize, f64)> {
    candidate_functions.sort_unstable();

    // --- columnar mirror of the loop's working set ---------------------------
    let block = Arc::make_mut(&mut scratch.block);
    block.clear();
    let ois = Arc::make_mut(&mut scratch.ois);
    ois.clear();
    for &(oi, _, point) in sky_views {
        block.push_point(point);
        ois.push(oi);
    }

    // --- best skyline object for every candidate function -------------------
    let parallel = pool.filter(|p| {
        p.threads() > 1
            && candidate_functions.len() > 1
            && candidate_functions.len() * sky_views.len() >= PARALLEL_WORK_FLOOR
    });
    match parallel {
        Some(pool) => {
            // Contiguous candidate ranges, one per worker; each job computes
            // its functions' argmaxes independently and the merge writes
            // per-function slots, so the outcome is identical to the serial
            // scan no matter which worker ran what when.
            let span = candidate_functions.len().div_ceil(pool.threads());
            let jobs: Vec<_> = candidate_functions
                .chunks(span)
                .map(|chunk| {
                    let cands: Vec<usize> = chunk.to_vec();
                    let block = Arc::clone(&scratch.block);
                    let ois = Arc::clone(&scratch.ois);
                    let table = table.clone();
                    move || {
                        let mut scores: Vec<f64> = Vec::new();
                        let mut out: Vec<(usize, usize, f64)> = Vec::with_capacity(cands.len());
                        for &fi in &cands {
                            table.score_block(fi, &block, &mut scores);
                            if let Some((oi, s)) = lane_argmax(&ois, &scores) {
                                out.push((fi, oi, s));
                            }
                        }
                        out
                    }
                })
                .collect();
            for part in pool.run(jobs) {
                for (fi, oi, s) in part {
                    function_best[fi] = (stamp, oi, s);
                }
            }
        }
        None => {
            for &fi in candidate_functions.iter() {
                table.score_block(fi, &scratch.block, &mut scratch.scores);
                if let Some((oi, s)) = lane_argmax(&scratch.ois, &scratch.scores) {
                    function_best[fi] = (stamp, oi, s);
                }
            }
        }
    }

    // --- reciprocal pairs are stable (Property 2) ---------------------------
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    for &fi in candidate_functions.iter() {
        let (st, oi, score) = function_best[fi];
        if st != stamp {
            continue;
        }
        let (ost, best_f, _) = object_best[oi];
        if ost == stamp && best_f == fi {
            pairs.push((fi, oi, score));
        }
    }
    if pairs.is_empty() {
        // Exact score ties can make the argmax choices cyclic, leaving no
        // reciprocal pair. The highest-scoring (function, its best object)
        // entry is still stable — no strictly better partner exists for
        // either side — so emit it to guarantee progress. Candidates are
        // sorted, so ties resolve to the lowest function index.
        let mut fallback: Option<(usize, usize, f64)> = None;
        for &fi in candidate_functions.iter() {
            let (st, oi, score) = function_best[fi];
            if st != stamp {
                continue;
            }
            if fallback.is_none_or(|(_, _, bs)| score > bs) {
                fallback = Some((fi, oi, score));
            }
        }
        if let Some(pair) = fallback {
            pairs.push(pair);
        }
    }
    // descending score order (the order in which the iterative definition of
    // Section 3 would establish the pairs); exact ties in ascending function
    // order for determinism
    pairs.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    pairs
}
