//! The Brute Force competitor (Section 4.1).
//!
//! One incremental top-1 (BRS) search is kept open per preference function.
//! At each step the pair with the globally highest score among the functions'
//! current candidates is assigned; functions whose candidate object has run
//! out of capacity simply *resume* their search instead of restarting it.
//! The price of resumption is one open search heap per function, which is why
//! Brute Force dominates the memory charts of the paper.
//!
//! Assigned objects are removed logically (searches skip them) rather than by
//! physically restructuring the R-tree; see DESIGN.md for the rationale — the
//! competitors' I/O is dominated by their top-1 searches either way.

use crate::matching::Assignment;
use crate::metrics::{AssignmentResult, MemoryGauge, RunMetrics};
use crate::problem::Problem;
use pref_rtree::{RTree, RecordId};
use pref_topk::RankedSearch;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

#[derive(Clone, Copy)]
struct Candidate {
    score: f64,
    function: usize,
    object: RecordId,
    /// Dense object index — the oracle's tie-break key.
    oi: usize,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // max-heap order mirroring the oracle's consumption order: highest
        // score first, exact ties to the lowest function index, then the
        // lowest dense object index
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.function.cmp(&self.function))
            .then_with(|| other.oi.cmp(&self.oi))
    }
}

/// Runs the Brute Force assignment algorithm.
pub fn brute_force(problem: &Problem, tree: &mut RTree) -> AssignmentResult {
    let start = Instant::now();
    let stats_before = tree.stats();
    let n = problem.num_functions();

    let mut f_remaining: Vec<u32> = problem.functions().iter().map(|f| f.capacity).collect();
    // dense per-object capacities, indexed by the problem's dense object index
    let mut o_remaining: Vec<u32> = problem.objects().iter().map(|o| o.capacity).collect();
    let mut demand: u64 = f_remaining.iter().map(|&c| c as u64).sum();
    let mut supply: u64 = o_remaining.iter().map(|&c| c as u64).sum();

    let mut searches: Vec<RankedSearch> = problem
        .functions()
        .iter()
        .map(|f| RankedSearch::new(f.function.clone()))
        .collect();
    // Per-function candidates currently in the heap. To reproduce the
    // oracle's tie order, a function never has a *partial* tie group in the
    // heap: `advance` drains its search through the complete group of the
    // top score (searches yield non-increasing scores, so the group is
    // complete once a strictly lower result appears; that one result is
    // parked in `lookahead` and seeds the next group).
    let mut live: Vec<usize> = vec![0; n];
    let mut lookahead: Vec<Option<Candidate>> = vec![None; n];
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::with_capacity(n);

    let mut assignment = Assignment::new();
    let mut gauge = MemoryGauge::new();
    let mut search_count: u64 = 0;
    let mut loops: u64 = 0;

    // helper closure would need split borrows; use a small macro instead
    macro_rules! advance {
        ($idx:expr) => {{
            let idx: usize = $idx;
            let mut group_score = match lookahead[idx].take() {
                Some(cand) => {
                    let score = cand.score;
                    heap.push(cand);
                    live[idx] += 1;
                    Some(score)
                }
                None => None,
            };
            loop {
                let next = searches[idx].next_accepted(tree, |r| {
                    problem.object_index(r).is_some_and(|i| o_remaining[i] > 0)
                });
                search_count += 1;
                match next {
                    Some((data, score)) => {
                        let cand = Candidate {
                            score,
                            function: idx,
                            object: data.record,
                            oi: problem.object_index(data.record).expect("object exists"),
                        };
                        match group_score {
                            Some(gs) if score < gs => {
                                // first result below the group: park it
                                lookahead[idx] = Some(cand);
                                break;
                            }
                            _ => {
                                group_score = Some(score);
                                heap.push(cand);
                                live[idx] += 1;
                            }
                        }
                    }
                    None => break,
                }
            }
        }};
    }

    for idx in 0..n {
        advance!(idx);
    }

    while demand > 0 && supply > 0 {
        let Some(best) = heap.pop() else { break };
        if f_remaining[best.function] == 0 {
            continue; // function already fully assigned; leftovers are inert
        }
        live[best.function] -= 1;
        if o_remaining[best.oi] == 0 {
            // the candidate was taken by someone else; resume the search once
            // the function's whole group is exhausted
            if live[best.function] == 0 {
                advance!(best.function);
            }
            continue;
        }
        // assign the globally best pair (Property 2: the top pair is stable)
        loops += 1;
        assignment.push(
            problem.functions()[best.function].id,
            best.object,
            best.score,
        );
        f_remaining[best.function] -= 1;
        o_remaining[best.oi] -= 1;
        demand -= 1;
        supply -= 1;
        if f_remaining[best.function] > 0 {
            if o_remaining[best.oi] > 0 {
                // the same object still has capacity; keep it as a candidate
                heap.push(best);
                live[best.function] += 1;
            } else if live[best.function] == 0 {
                advance!(best.function);
            }
        }
        if loops % 32 == 1 {
            let mem: u64 = searches.iter().map(RankedSearch::memory_bytes).sum::<u64>()
                + heap.len() as u64 * 32;
            gauge.observe(mem);
        }
    }

    let mem: u64 =
        searches.iter().map(RankedSearch::memory_bytes).sum::<u64>() + heap.len() as u64 * 32;
    gauge.observe(mem);

    let metrics = RunMetrics {
        object_io: tree.stats().since(&stats_before),
        aux_io: Default::default(),
        cpu_time: start.elapsed(),
        peak_memory_bytes: gauge.peak(),
        loops,
        searches: search_count,
    };
    AssignmentResult {
        assignment,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::verify_stable;
    use crate::oracle::oracle;
    use crate::problem::{ObjectRecord, PreferenceFunction};
    use pref_datagen::{independent_objects, uniform_weight_functions};
    use pref_geom::{LinearFunction, Point};

    fn figure1_problem() -> Problem {
        Problem::new(
            vec![
                PreferenceFunction::new(0, LinearFunction::new(vec![0.8, 0.2]).unwrap()),
                PreferenceFunction::new(1, LinearFunction::new(vec![0.2, 0.8]).unwrap()),
                PreferenceFunction::new(2, LinearFunction::new(vec![0.5, 0.5]).unwrap()),
            ],
            vec![
                ObjectRecord::new(0, Point::from_slice(&[0.5, 0.6])),
                ObjectRecord::new(1, Point::from_slice(&[0.2, 0.7])),
                ObjectRecord::new(2, Point::from_slice(&[0.8, 0.2])),
                ObjectRecord::new(3, Point::from_slice(&[0.4, 0.4])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn solves_the_paper_example() {
        let p = figure1_problem();
        let mut tree = p.build_tree(None, 0.0);
        let result = brute_force(&p, &mut tree);
        verify_stable(&p, &result.assignment).unwrap();
        assert_eq!(result.assignment.canonical(), oracle(&p).canonical());
        assert!(result.metrics.searches >= 3);
    }

    #[test]
    fn matches_oracle_on_random_instances() {
        for seed in [1u64, 2, 3] {
            let functions = uniform_weight_functions(60, 3, seed);
            let objects = independent_objects(300, 3, seed + 100);
            let p = Problem::from_parts(functions, objects).unwrap();
            let mut tree = p.build_tree(Some(16), 0.02);
            let result = brute_force(&p, &mut tree);
            verify_stable(&p, &result.assignment).unwrap();
            assert_eq!(result.assignment.canonical(), oracle(&p).canonical());
        }
    }

    #[test]
    fn handles_more_functions_than_objects() {
        let functions = uniform_weight_functions(50, 2, 9);
        let objects = independent_objects(20, 2, 10);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(8), 0.0);
        let result = brute_force(&p, &mut tree);
        assert_eq!(result.assignment.len(), 20);
        verify_stable(&p, &result.assignment).unwrap();
    }

    #[test]
    fn capacitated_functions_and_objects() {
        let functions: Vec<PreferenceFunction> = uniform_weight_functions(20, 3, 11)
            .into_iter()
            .enumerate()
            .map(|(i, f)| PreferenceFunction::new(i, f).with_capacity(1 + (i as u32 % 4)))
            .collect();
        let objects: Vec<ObjectRecord> = independent_objects(80, 3, 12)
            .into_iter()
            .map(|(id, p)| ObjectRecord {
                id,
                point: p,
                capacity: 1 + (id.0 as u32 % 3),
            })
            .collect();
        let p = Problem::new(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(8), 0.0);
        let result = brute_force(&p, &mut tree);
        verify_stable(&p, &result.assignment).unwrap();
        assert_eq!(result.assignment.canonical(), oracle(&p).canonical());
    }

    #[test]
    fn prioritized_functions_supported() {
        let functions: Vec<PreferenceFunction> = uniform_weight_functions(30, 2, 13)
            .into_iter()
            .enumerate()
            .map(|(i, f)| PreferenceFunction::new(i, f.prioritized(1.0 + (i % 4) as f64).unwrap()))
            .collect();
        let objects = independent_objects(100, 2, 14)
            .into_iter()
            .map(|(id, p)| ObjectRecord::new(id.0, p))
            .collect();
        let p = Problem::new(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(8), 0.0);
        let result = brute_force(&p, &mut tree);
        verify_stable(&p, &result.assignment).unwrap();
        assert_eq!(result.assignment.canonical(), oracle(&p).canonical());
    }

    #[test]
    fn reports_metrics() {
        let functions = uniform_weight_functions(40, 3, 15);
        let objects = independent_objects(500, 3, 16);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(16), 0.02);
        let result = brute_force(&p, &mut tree);
        assert!(result.metrics.object_io.logical_reads > 0);
        assert!(result.metrics.peak_memory_bytes > 0);
        assert!(result.metrics.searches >= 40);
        assert!(result.metrics.loops >= 40);
    }
}
