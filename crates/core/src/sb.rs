//! SB — the paper's skyline-based stable assignment algorithm (Sections 4–6).
//!
//! The algorithm maintains the skyline `Osky` of the remaining objects; only
//! skyline objects can participate in a stable pair. Each loop finds, for
//! every skyline object, its best remaining function (reverse top-1 search)
//! and, for every such function, its best skyline object; every reciprocal
//! pair satisfies Property 2 and is output. Removed skyline objects are
//! handled by the I/O-optimal `UpdateSkyline` module (or, for the ablation
//! baseline, by a DeltaSky-style re-traversal).
//!
//! [`SbOptions`] selects between the fully optimized algorithm and the
//! stripped-down variants used in the paper's Figure 8 ablation, and enables
//! the two-skyline technique for prioritized functions (Section 6.2).

use crate::matching::Assignment;
use crate::metrics::{AssignmentResult, MemoryGauge, RunMetrics};
use crate::problem::Problem;
use pref_geom::Point;
use pref_rtree::{RTree, RecordId};
use pref_skyline::{compute_skyline_bbs, delta_sky_update, skyline_sfs, update_skyline, Skyline};
use pref_topk::{FunctionLists, ReverseTopOne};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// How the skyline is maintained after assigned objects are removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceStrategy {
    /// The paper's I/O-optimal incremental algorithm (Algorithm 2).
    UpdateSkyline,
    /// The DeltaSky-style baseline: one constrained root-to-leaf re-traversal
    /// per removed object. Used by the Figure 8 ablation.
    DeltaSky,
}

/// How the best function for each skyline object is located.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BestPairStrategy {
    /// Resumable TA with biased probing and a candidate queue capped at
    /// `omega_fraction · |F|` (the fully optimized search of Section 5.1).
    ResumableTa {
        /// Fraction ω of `|F|` used as the candidate-queue capacity.
        omega_fraction: f64,
    },
    /// A fresh TA search per object per loop (no state kept between loops);
    /// the best-pair search used by the unoptimized SB variants of Figure 8.
    FreshTa,
    /// Exhaustive scan of all remaining functions per skyline object.
    ExhaustiveScan,
    /// The two-skyline technique for prioritized functions (Section 6.2):
    /// only functions on the skyline of the effective weight vectors are
    /// considered, by exhaustive scan.
    TwoSkylines,
}

/// Configuration of the SB algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct SbOptions {
    /// Skyline maintenance module.
    pub maintenance: MaintenanceStrategy,
    /// Best-pair search module.
    pub best_pair: BestPairStrategy,
    /// Whether to report every reciprocal pair found in a loop (Section 5.3)
    /// or only the single best pair.
    pub multiple_pairs_per_loop: bool,
}

impl Default for SbOptions {
    fn default() -> Self {
        // the fully optimized SB used in the experiments (Ω = 2.5% · |F|)
        Self {
            maintenance: MaintenanceStrategy::UpdateSkyline,
            best_pair: BestPairStrategy::ResumableTa {
                omega_fraction: 0.025,
            },
            multiple_pairs_per_loop: true,
        }
    }
}

impl SbOptions {
    /// SB-UpdateSkyline of Figure 8: incremental maintenance but no best-pair
    /// or multi-pair optimizations.
    pub fn update_skyline_only() -> Self {
        Self {
            maintenance: MaintenanceStrategy::UpdateSkyline,
            best_pair: BestPairStrategy::FreshTa,
            multiple_pairs_per_loop: false,
        }
    }

    /// SB-DeltaSky of Figure 8: Algorithm 1 with DeltaSky maintenance.
    pub fn delta_sky() -> Self {
        Self {
            maintenance: MaintenanceStrategy::DeltaSky,
            best_pair: BestPairStrategy::FreshTa,
            multiple_pairs_per_loop: false,
        }
    }

    /// The two-skyline variant for prioritized functions (Section 6.2).
    pub fn two_skylines() -> Self {
        Self {
            maintenance: MaintenanceStrategy::UpdateSkyline,
            best_pair: BestPairStrategy::TwoSkylines,
            multiple_pairs_per_loop: true,
        }
    }
}

/// Runs the SB assignment algorithm with the given options.
pub fn sb(problem: &Problem, tree: &mut RTree, options: &SbOptions) -> AssignmentResult {
    let start = Instant::now();
    let stats_before = tree.stats();

    let functions: Vec<pref_geom::LinearFunction> = problem
        .functions()
        .iter()
        .map(|f| f.function.clone())
        .collect();
    let mut lists = FunctionLists::new(&functions);
    let omega = match options.best_pair {
        BestPairStrategy::ResumableTa { omega_fraction } => {
            ((omega_fraction * problem.num_functions() as f64).ceil() as usize).max(1)
        }
        _ => problem.num_functions().max(1),
    };

    let mut f_remaining: Vec<u32> = problem.functions().iter().map(|f| f.capacity).collect();
    let mut o_remaining: HashMap<RecordId, u32> = problem
        .objects()
        .iter()
        .map(|o| (o.id, o.capacity))
        .collect();
    let mut demand: u64 = f_remaining.iter().map(|&c| c as u64).sum();
    let mut supply: u64 = o_remaining.values().map(|&c| c as u64).sum();

    let mut skyline: Skyline = compute_skyline_bbs(tree);
    let mut ta_states: HashMap<RecordId, ReverseTopOne> = HashMap::new();
    let mut excluded: HashSet<RecordId> = HashSet::new();

    let mut assignment = Assignment::new();
    let mut gauge = MemoryGauge::new();
    let mut loops: u64 = 0;
    let mut searches: u64 = 0;

    while demand > 0 && supply > 0 && !skyline.is_empty() {
        loops += 1;

        // --- best function for every skyline object -------------------------
        let sky_objects: Vec<(RecordId, Point)> = skyline
            .data_entries()
            .map(|d| (d.record, d.point.clone()))
            .collect();
        // candidate function set for the two-skyline strategy
        let function_skyline: Option<HashSet<usize>> = match options.best_pair {
            BestPairStrategy::TwoSkylines => {
                let alive: Vec<(RecordId, Point)> = lists
                    .alive_functions()
                    .into_iter()
                    .map(|i| {
                        (
                            RecordId(i as u64),
                            Point::from_slice(lists.effective_weights(i)),
                        )
                    })
                    .collect();
                Some(
                    skyline_sfs(&alive)
                        .into_iter()
                        .map(|r| r.0 as usize)
                        .collect(),
                )
            }
            _ => None,
        };

        let mut object_best: HashMap<RecordId, (usize, f64)> = HashMap::new();
        for (record, point) in &sky_objects {
            searches += 1;
            let best = match options.best_pair {
                BestPairStrategy::ResumableTa { .. } => {
                    let state = ta_states
                        .entry(*record)
                        .or_insert_with(|| ReverseTopOne::new(point.clone(), omega));
                    state.best(&lists)
                }
                BestPairStrategy::FreshTa => {
                    let mut state = ReverseTopOne::new(point.clone(), problem.num_functions());
                    state.best(&lists)
                }
                BestPairStrategy::ExhaustiveScan => lists.best_by_scan(point),
                BestPairStrategy::TwoSkylines => {
                    let candidates = function_skyline.as_ref().expect("computed above");
                    let mut best: Option<(usize, f64)> = None;
                    for &fi in candidates {
                        if !lists.is_alive(fi) {
                            continue;
                        }
                        let s = lists.score(fi, point);
                        if best.is_none_or(|(_, bs)| s > bs) {
                            best = Some((fi, s));
                        }
                    }
                    best
                }
            };
            match best {
                Some(pair) => {
                    object_best.insert(*record, pair);
                }
                None => break, // no functions remain
            }
        }
        if object_best.is_empty() {
            break;
        }

        // --- best skyline object for every candidate function ---------------
        let candidate_functions: HashSet<usize> = object_best.values().map(|&(f, _)| f).collect();
        let mut function_best: HashMap<usize, (RecordId, f64)> = HashMap::new();
        for &fi in &candidate_functions {
            let mut best: Option<(RecordId, f64)> = None;
            for (record, point) in &sky_objects {
                let s = lists.score(fi, point);
                if best.is_none_or(|(_, bs)| s > bs) {
                    best = Some((*record, s));
                }
            }
            if let Some(b) = best {
                function_best.insert(fi, b);
            }
        }

        // --- reciprocal pairs are stable (Property 2) -----------------------
        let mut pairs: Vec<(usize, RecordId, f64)> = Vec::new();
        for (&fi, &(obj, score)) in &function_best {
            if object_best.get(&obj).map(|&(f, _)| f) == Some(fi) {
                pairs.push((fi, obj, score));
            }
        }
        if pairs.is_empty() {
            // Exact score ties can make the argmax choices cyclic, leaving no
            // reciprocal pair. The highest-scoring (function, its best object)
            // entry is still stable — no strictly better partner exists for
            // either side — so emit it to guarantee progress.
            if let Some((&fi, &(obj, score))) = function_best.iter().max_by(|a, b| {
                a.1 .1
                    .partial_cmp(&b.1 .1)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }) {
                pairs.push((fi, obj, score));
            } else {
                break;
            }
        }
        // report pairs in descending score order (the order in which the
        // iterative definition of Section 3 would establish them)
        pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        if !options.multiple_pairs_per_loop {
            pairs.truncate(1);
        }

        // --- assign and update capacities -----------------------------------
        let mut removed_objects = Vec::new();
        for (fi, obj, score) in pairs {
            if demand == 0 || supply == 0 {
                break;
            }
            assignment.push(problem.functions()[fi].id, obj, score);
            demand -= 1;
            supply -= 1;
            f_remaining[fi] -= 1;
            if f_remaining[fi] == 0 {
                lists.remove(fi);
            }
            let oc = o_remaining.get_mut(&obj).expect("object exists");
            *oc -= 1;
            if *oc == 0 {
                excluded.insert(obj);
                ta_states.remove(&obj);
                if let Some(sky_obj) = skyline.remove(obj) {
                    removed_objects.push(sky_obj);
                }
            }
        }

        // --- skyline maintenance ---------------------------------------------
        if !removed_objects.is_empty() {
            match options.maintenance {
                MaintenanceStrategy::UpdateSkyline => {
                    update_skyline(tree, &mut skyline, removed_objects)
                }
                MaintenanceStrategy::DeltaSky => {
                    delta_sky_update(tree, &mut skyline, removed_objects, &excluded)
                }
            }
        }

        // --- memory accounting ----------------------------------------------
        let ta_mem: u64 = ta_states.values().map(ReverseTopOne::memory_bytes).sum();
        gauge.observe(skyline.memory_bytes() + ta_mem);
    }

    let metrics = RunMetrics {
        object_io: tree.stats().since(&stats_before),
        aux_io: Default::default(),
        cpu_time: start.elapsed(),
        peak_memory_bytes: gauge.peak(),
        loops,
        searches,
    };
    AssignmentResult {
        assignment,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::verify_stable;
    use crate::oracle::oracle;
    use crate::problem::{ObjectRecord, PreferenceFunction};
    use pref_datagen::{
        anti_correlated_objects, correlated_objects, independent_objects, random_priorities,
        uniform_weight_functions,
    };
    use pref_geom::LinearFunction;

    fn figure1_problem() -> Problem {
        Problem::new(
            vec![
                PreferenceFunction::new(0, LinearFunction::new(vec![0.8, 0.2]).unwrap()),
                PreferenceFunction::new(1, LinearFunction::new(vec![0.2, 0.8]).unwrap()),
                PreferenceFunction::new(2, LinearFunction::new(vec![0.5, 0.5]).unwrap()),
            ],
            vec![
                ObjectRecord::new(0, Point::from_slice(&[0.5, 0.6])),
                ObjectRecord::new(1, Point::from_slice(&[0.2, 0.7])),
                ObjectRecord::new(2, Point::from_slice(&[0.8, 0.2])),
                ObjectRecord::new(3, Point::from_slice(&[0.4, 0.4])),
            ],
        )
        .unwrap()
    }

    fn all_option_sets() -> Vec<SbOptions> {
        vec![
            SbOptions::default(),
            SbOptions::update_skyline_only(),
            SbOptions::delta_sky(),
            SbOptions {
                maintenance: MaintenanceStrategy::UpdateSkyline,
                best_pair: BestPairStrategy::ExhaustiveScan,
                multiple_pairs_per_loop: true,
            },
        ]
    }

    #[test]
    fn solves_the_paper_example_with_every_variant() {
        let p = figure1_problem();
        for opts in all_option_sets() {
            let mut tree = p.build_tree(None, 0.0);
            let result = sb(&p, &mut tree, &opts);
            verify_stable(&p, &result.assignment).unwrap();
            assert_eq!(
                result.assignment.canonical(),
                oracle(&p).canonical(),
                "variant {opts:?}"
            );
        }
    }

    #[test]
    fn matches_oracle_on_random_instances_all_variants() {
        for seed in [71u64, 72] {
            let functions = uniform_weight_functions(60, 3, seed);
            let objects = independent_objects(300, 3, seed + 100);
            let p = Problem::from_parts(functions, objects).unwrap();
            let want = oracle(&p).canonical();
            for opts in all_option_sets() {
                let mut tree = p.build_tree(Some(16), 0.02);
                let result = sb(&p, &mut tree, &opts);
                verify_stable(&p, &result.assignment).unwrap();
                assert_eq!(result.assignment.canonical(), want, "variant {opts:?}");
            }
        }
    }

    #[test]
    fn matches_oracle_on_correlated_and_anti_correlated_data() {
        let functions = uniform_weight_functions(50, 4, 81);
        for objects in [
            correlated_objects(250, 4, 82),
            anti_correlated_objects(250, 4, 83),
        ] {
            let p = Problem::from_parts(functions.clone(), objects).unwrap();
            let mut tree = p.build_tree(Some(16), 0.02);
            let result = sb(&p, &mut tree, &SbOptions::default());
            verify_stable(&p, &result.assignment).unwrap();
            assert_eq!(result.assignment.canonical(), oracle(&p).canonical());
        }
    }

    #[test]
    fn more_functions_than_objects() {
        let functions = uniform_weight_functions(80, 3, 91);
        let objects = independent_objects(25, 3, 92);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(8), 0.0);
        let result = sb(&p, &mut tree, &SbOptions::default());
        assert_eq!(result.assignment.len(), 25);
        verify_stable(&p, &result.assignment).unwrap();
    }

    #[test]
    fn capacitated_functions_and_objects() {
        let functions: Vec<PreferenceFunction> = uniform_weight_functions(25, 3, 93)
            .into_iter()
            .enumerate()
            .map(|(i, f)| PreferenceFunction::new(i, f).with_capacity(1 + (i as u32 % 4)))
            .collect();
        let objects: Vec<ObjectRecord> = independent_objects(120, 3, 94)
            .into_iter()
            .map(|(id, p)| ObjectRecord {
                id,
                point: p,
                capacity: 1 + (id.0 as u32 % 3),
            })
            .collect();
        let p = Problem::new(functions, objects).unwrap();
        let want = oracle(&p).canonical();
        let mut tree = p.build_tree(Some(8), 0.0);
        let result = sb(&p, &mut tree, &SbOptions::default());
        verify_stable(&p, &result.assignment).unwrap();
        assert_eq!(result.assignment.canonical(), want);
    }

    #[test]
    fn prioritized_assignment_standard_and_two_skyline_agree() {
        let base = uniform_weight_functions(40, 3, 95);
        let prioritized = random_priorities(&base, 4, 96);
        let objects = independent_objects(200, 3, 97);
        let functions: Vec<PreferenceFunction> = prioritized
            .into_iter()
            .enumerate()
            .map(|(i, f)| PreferenceFunction::new(i, f))
            .collect();
        let objects: Vec<ObjectRecord> = objects
            .into_iter()
            .map(|(id, p)| ObjectRecord {
                id,
                point: p,
                capacity: 1,
            })
            .collect();
        let p = Problem::new(functions, objects).unwrap();
        assert!(p.has_priorities());
        let want = oracle(&p).canonical();
        for opts in [SbOptions::default(), SbOptions::two_skylines()] {
            let mut tree = p.build_tree(Some(12), 0.02);
            let result = sb(&p, &mut tree, &opts);
            verify_stable(&p, &result.assignment).unwrap();
            assert_eq!(result.assignment.canonical(), want, "variant {opts:?}");
        }
    }

    #[test]
    fn sb_uses_less_io_than_brute_force() {
        let functions = uniform_weight_functions(100, 3, 98);
        let objects = anti_correlated_objects(2000, 3, 99);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree_sb = p.build_tree(Some(32), 0.02);
        let mut tree_bf = p.build_tree(Some(32), 0.02);
        let sb_result = sb(&p, &mut tree_sb, &SbOptions::default());
        let bf_result = crate::brute::brute_force(&p, &mut tree_bf);
        assert_eq!(
            sb_result.assignment.canonical(),
            bf_result.assignment.canonical()
        );
        assert!(
            sb_result.metrics.object_io.io_accesses() * 3
                < bf_result.metrics.object_io.io_accesses(),
            "SB {} vs Brute Force {}",
            sb_result.metrics.object_io.io_accesses(),
            bf_result.metrics.object_io.io_accesses()
        );
    }

    #[test]
    fn multiple_pairs_per_loop_reduces_loop_count() {
        let functions = uniform_weight_functions(80, 3, 101);
        let objects = independent_objects(500, 3, 102);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree_multi = p.build_tree(Some(16), 0.02);
        let mut tree_single = p.build_tree(Some(16), 0.02);
        let multi = sb(&p, &mut tree_multi, &SbOptions::default());
        let single = sb(
            &p,
            &mut tree_single,
            &SbOptions {
                multiple_pairs_per_loop: false,
                ..SbOptions::default()
            },
        );
        assert_eq!(multi.assignment.canonical(), single.assignment.canonical());
        assert!(multi.metrics.loops <= single.metrics.loops);
    }

    #[test]
    fn metrics_are_populated() {
        let functions = uniform_weight_functions(30, 3, 103);
        let objects = independent_objects(400, 3, 104);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(16), 0.02);
        let result = sb(&p, &mut tree, &SbOptions::default());
        assert!(result.metrics.object_io.logical_reads > 0);
        assert!(result.metrics.loops > 0);
        assert!(result.metrics.searches > 0);
        assert!(result.metrics.peak_memory_bytes > 0);
    }
}
