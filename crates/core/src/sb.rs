//! SB — the paper's skyline-based stable assignment algorithm (Sections 4–6).
//!
//! The algorithm maintains the skyline `Osky` of the remaining objects; only
//! skyline objects can participate in a stable pair. Each loop finds, for
//! every skyline object, its best remaining function (reverse top-1 search)
//! and, for every such function, its best skyline object; every reciprocal
//! pair satisfies Property 2 and is output. Removed skyline objects are
//! handled by the I/O-optimal `UpdateSkyline` module (or, for the ablation
//! baseline, by a DeltaSky-style re-traversal).
//!
//! [`SbOptions`] selects between the fully optimized algorithm and the
//! stripped-down variants used in the paper's Figure 8 ablation, and enables
//! the two-skyline technique for prioritized functions (Section 6.2).

use crate::metrics::{AssignmentResult, MemoryGauge, RunMetrics};
use crate::problem::Problem;
use crate::scaffold::StableLoop;
use pref_geom::Point;
use pref_rtree::{RTree, RecordId};
use pref_skyline::{compute_skyline_bbs, delta_sky_update, skyline_sfs, update_skyline, Skyline};
use pref_storage::IoStats;
use pref_topk::{FunctionLists, ReverseTopOne};
use std::time::Instant;

/// How the skyline is maintained after assigned objects are removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceStrategy {
    /// The paper's I/O-optimal incremental algorithm (Algorithm 2).
    UpdateSkyline,
    /// The DeltaSky-style baseline: one constrained root-to-leaf re-traversal
    /// per removed object. Used by the Figure 8 ablation.
    DeltaSky,
}

/// How the best function for each skyline object is located.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BestPairStrategy {
    /// Resumable TA with biased probing and a candidate queue capped at
    /// `omega_fraction · |F|` (the fully optimized search of Section 5.1).
    ResumableTa {
        /// Fraction ω of `|F|` used as the candidate-queue capacity.
        omega_fraction: f64,
    },
    /// A fresh TA search per object per loop (no state kept between loops);
    /// the best-pair search used by the unoptimized SB variants of Figure 8.
    FreshTa,
    /// Exhaustive scan of all remaining functions per skyline object.
    ExhaustiveScan,
    /// The two-skyline technique for prioritized functions (Section 6.2):
    /// only functions on the skyline of the effective weight vectors are
    /// considered, by exhaustive scan.
    TwoSkylines,
}

/// Configuration of the SB algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct SbOptions {
    /// Skyline maintenance module.
    pub maintenance: MaintenanceStrategy,
    /// Best-pair search module.
    pub best_pair: BestPairStrategy,
    /// Whether to report every reciprocal pair found in a loop (Section 5.3)
    /// or only the single best pair.
    pub multiple_pairs_per_loop: bool,
    /// Worker threads for the reciprocal-pair scoring phase. `None` resolves
    /// via [`pref_sync::resolve_threads`] (the `PREF_THREADS` environment
    /// variable, then available parallelism; always 1 in model-capable
    /// builds). The matching is canonical-identical at any thread count.
    pub threads: Option<usize>,
}

impl Default for SbOptions {
    fn default() -> Self {
        // the fully optimized SB used in the experiments (Ω = 2.5% · |F|)
        Self {
            maintenance: MaintenanceStrategy::UpdateSkyline,
            best_pair: BestPairStrategy::ResumableTa {
                omega_fraction: 0.025,
            },
            multiple_pairs_per_loop: true,
            threads: None,
        }
    }
}

impl SbOptions {
    /// SB-UpdateSkyline of Figure 8: incremental maintenance but no best-pair
    /// or multi-pair optimizations.
    pub fn update_skyline_only() -> Self {
        Self {
            maintenance: MaintenanceStrategy::UpdateSkyline,
            best_pair: BestPairStrategy::FreshTa,
            multiple_pairs_per_loop: false,
            threads: None,
        }
    }

    /// SB-DeltaSky of Figure 8: Algorithm 1 with DeltaSky maintenance.
    pub fn delta_sky() -> Self {
        Self {
            maintenance: MaintenanceStrategy::DeltaSky,
            best_pair: BestPairStrategy::FreshTa,
            multiple_pairs_per_loop: false,
            threads: None,
        }
    }

    /// The two-skyline variant for prioritized functions (Section 6.2).
    pub fn two_skylines() -> Self {
        Self {
            maintenance: MaintenanceStrategy::UpdateSkyline,
            best_pair: BestPairStrategy::TwoSkylines,
            multiple_pairs_per_loop: true,
            threads: None,
        }
    }
}

/// Runs the SB assignment algorithm with the given options.
///
/// The hot path keeps every piece of per-object and per-function state in
/// dense `Vec` slabs indexed by the [`Problem`]'s contiguous tables (via the
/// `RecordId → dense index` map built once at problem construction): remaining
/// capacities, resumable TA states, exclusion flags and the per-loop argmax
/// results all live in flat arrays, and the per-loop argmax slabs are
/// invalidated with a loop stamp instead of being cleared. Skyline points are
/// read through borrowed [`Skyline::entry_views`] — nothing is cloned per
/// loop. Sorted-list accesses performed by the TA searches are charged to
/// [`RunMetrics::aux_io`], matching the paper's cost model.
pub fn sb(problem: &Problem, tree: &mut RTree, options: &SbOptions) -> AssignmentResult {
    let start = Instant::now();
    let stats_before = tree.stats();

    let functions: Vec<pref_geom::LinearFunction> = problem
        .functions()
        .iter()
        .map(|f| f.function.clone())
        .collect();
    let mut lists = FunctionLists::new(&functions);
    // Columnar scoring rows for the pairing phase (clone-cheap Arc view) and
    // the optional worker pool; `resolve_threads` pins model-capable builds
    // to 1 so solver-internal threads never leak into model scenarios.
    let score_table = lists.score_table();
    let threads = pref_sync::resolve_threads(options.threads);
    let pool = (threads > 1).then(|| pref_sync::WorkStealingPool::with_threads(threads));
    let omega = match options.best_pair {
        BestPairStrategy::ResumableTa { omega_fraction } => {
            ((omega_fraction * problem.num_functions() as f64).ceil() as usize).max(1)
        }
        _ => problem.num_functions().max(1),
    };

    let n_fun = problem.num_functions();
    let n_obj = problem.num_objects();

    // solver-specific per-object search state, indexed by the dense index
    let mut ta_states: Vec<Option<ReverseTopOne>> = vec![None; n_obj];
    let mut excluded: Vec<bool> = vec![false; n_obj];

    let mut skyline: Skyline = compute_skyline_bbs(tree);

    let mut state = StableLoop::new(problem);
    let mut gauge = MemoryGauge::new();
    let mut searches: u64 = 0;
    let mut aux_reads: u64 = 0;

    while state.active(&skyline) {
        let stamp = state.begin_loop();

        // --- best function for every skyline object -------------------------
        // Borrowed entry views: (dense index, record, &point), no cloning.
        let sky_views: Vec<(usize, RecordId, &Point)> = state.sky_views(problem, &skyline);
        // candidate function set for the two-skyline strategy, sorted so that
        // exact score ties resolve to the lowest function index
        let function_skyline: Option<Vec<usize>> = match options.best_pair {
            BestPairStrategy::TwoSkylines => {
                let alive: Vec<(RecordId, Point)> = lists
                    .alive_functions()
                    .into_iter()
                    .map(|i| {
                        (
                            RecordId(i as u64),
                            Point::from_slice(lists.effective_weights(i)),
                        )
                    })
                    .collect();
                let mut sky_fns: Vec<usize> = skyline_sfs(&alive)
                    .into_iter()
                    .map(|r| r.0 as usize)
                    .collect();
                sky_fns.sort_unstable();
                Some(sky_fns)
            }
            _ => None,
        };

        let mut any_best = false;
        for &(oi, _, point) in &sky_views {
            searches += 1;
            let best = match options.best_pair {
                BestPairStrategy::ResumableTa { .. } => {
                    let state = ta_states[oi]
                        .get_or_insert_with(|| ReverseTopOne::new(point.clone(), omega));
                    let before = state.sorted_accesses();
                    let best = state.best(&lists);
                    aux_reads += state.sorted_accesses() - before;
                    best
                }
                BestPairStrategy::FreshTa => {
                    let mut state = ReverseTopOne::new(point.clone(), n_fun);
                    let best = state.best(&lists);
                    aux_reads += state.sorted_accesses();
                    best
                }
                BestPairStrategy::ExhaustiveScan => lists.best_by_scan(point),
                BestPairStrategy::TwoSkylines => {
                    let candidates = function_skyline.as_deref().expect("computed above");
                    let mut best: Option<(usize, f64)> = None;
                    for &fi in candidates {
                        if !lists.is_alive(fi) {
                            continue;
                        }
                        let s = lists.score(fi, point);
                        // candidates are sorted ascending: strict `>` keeps
                        // the lowest function index on exact ties
                        if best.is_none_or(|(_, bs)| s > bs) {
                            best = Some((fi, s));
                        }
                    }
                    best
                }
            };
            match best {
                Some((fi, score)) => {
                    state.note_best(stamp, oi, fi, score);
                    any_best = true;
                }
                None => break, // no functions remain
            }
        }
        if !any_best {
            break;
        }

        // --- reciprocal pairs (shared with sb_alt, see `pairing`) -----------
        let mut pairs = state.reciprocal_pairs(stamp, &sky_views, &score_table, pool.as_ref());
        if pairs.is_empty() {
            break;
        }
        if !options.multiple_pairs_per_loop {
            pairs.truncate(1);
        }

        // --- assign and update capacities -----------------------------------
        let removed_objects = state.commit(
            problem,
            pairs,
            &mut skyline,
            |fi| {
                lists.remove(fi);
            },
            |oi| {
                excluded[oi] = true;
                ta_states[oi] = None;
            },
        );

        // --- skyline maintenance ---------------------------------------------
        if !removed_objects.is_empty() {
            match options.maintenance {
                MaintenanceStrategy::UpdateSkyline => {
                    update_skyline(tree, &mut skyline, removed_objects)
                }
                MaintenanceStrategy::DeltaSky => {
                    delta_sky_update(tree, &mut skyline, removed_objects, &|r: RecordId| {
                        problem.object_index(r).is_some_and(|i| excluded[i])
                    })
                }
            }
        }

        // --- memory accounting ----------------------------------------------
        let ta_mem: u64 = ta_states
            .iter()
            .flatten()
            .map(ReverseTopOne::memory_bytes)
            .sum();
        gauge.observe(skyline.memory_bytes() + ta_mem);
    }

    let metrics = RunMetrics {
        object_io: tree.stats().since(&stats_before),
        // the paper's cost model charges the TA searches' sorted-list accesses
        // as auxiliary I/O (the function lists have no buffer in front)
        aux_io: IoStats {
            logical_reads: aux_reads,
            physical_reads: aux_reads,
            ..IoStats::default()
        },
        cpu_time: start.elapsed(),
        peak_memory_bytes: gauge.peak(),
        loops: state.loops,
        searches,
    };
    AssignmentResult {
        assignment: state.assignment,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::verify_stable;
    use crate::oracle::oracle;
    use crate::problem::{ObjectRecord, PreferenceFunction};
    use pref_datagen::{
        anti_correlated_objects, correlated_objects, independent_objects, random_priorities,
        uniform_weight_functions,
    };
    use pref_geom::LinearFunction;

    fn figure1_problem() -> Problem {
        Problem::new(
            vec![
                PreferenceFunction::new(0, LinearFunction::new(vec![0.8, 0.2]).unwrap()),
                PreferenceFunction::new(1, LinearFunction::new(vec![0.2, 0.8]).unwrap()),
                PreferenceFunction::new(2, LinearFunction::new(vec![0.5, 0.5]).unwrap()),
            ],
            vec![
                ObjectRecord::new(0, Point::from_slice(&[0.5, 0.6])),
                ObjectRecord::new(1, Point::from_slice(&[0.2, 0.7])),
                ObjectRecord::new(2, Point::from_slice(&[0.8, 0.2])),
                ObjectRecord::new(3, Point::from_slice(&[0.4, 0.4])),
            ],
        )
        .unwrap()
    }

    fn all_option_sets() -> Vec<SbOptions> {
        vec![
            SbOptions::default(),
            SbOptions::update_skyline_only(),
            SbOptions::delta_sky(),
            SbOptions {
                maintenance: MaintenanceStrategy::UpdateSkyline,
                best_pair: BestPairStrategy::ExhaustiveScan,
                ..SbOptions::default()
            },
        ]
    }

    #[test]
    fn solves_the_paper_example_with_every_variant() {
        let p = figure1_problem();
        for opts in all_option_sets() {
            let mut tree = p.build_tree(None, 0.0);
            let result = sb(&p, &mut tree, &opts);
            verify_stable(&p, &result.assignment).unwrap();
            assert_eq!(
                result.assignment.canonical(),
                oracle(&p).canonical(),
                "variant {opts:?}"
            );
        }
    }

    #[test]
    fn matches_oracle_on_random_instances_all_variants() {
        for seed in [71u64, 72] {
            let functions = uniform_weight_functions(60, 3, seed);
            let objects = independent_objects(300, 3, seed + 100);
            let p = Problem::from_parts(functions, objects).unwrap();
            let want = oracle(&p).canonical();
            for opts in all_option_sets() {
                let mut tree = p.build_tree(Some(16), 0.02);
                let result = sb(&p, &mut tree, &opts);
                verify_stable(&p, &result.assignment).unwrap();
                assert_eq!(result.assignment.canonical(), want, "variant {opts:?}");
            }
        }
    }

    #[test]
    fn matches_oracle_on_correlated_and_anti_correlated_data() {
        let functions = uniform_weight_functions(50, 4, 81);
        for objects in [
            correlated_objects(250, 4, 82),
            anti_correlated_objects(250, 4, 83),
        ] {
            let p = Problem::from_parts(functions.clone(), objects).unwrap();
            let mut tree = p.build_tree(Some(16), 0.02);
            let result = sb(&p, &mut tree, &SbOptions::default());
            verify_stable(&p, &result.assignment).unwrap();
            assert_eq!(result.assignment.canonical(), oracle(&p).canonical());
        }
    }

    #[test]
    fn more_functions_than_objects() {
        let functions = uniform_weight_functions(80, 3, 91);
        let objects = independent_objects(25, 3, 92);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(8), 0.0);
        let result = sb(&p, &mut tree, &SbOptions::default());
        assert_eq!(result.assignment.len(), 25);
        verify_stable(&p, &result.assignment).unwrap();
    }

    #[test]
    fn capacitated_functions_and_objects() {
        let functions: Vec<PreferenceFunction> = uniform_weight_functions(25, 3, 93)
            .into_iter()
            .enumerate()
            .map(|(i, f)| PreferenceFunction::new(i, f).with_capacity(1 + (i as u32 % 4)))
            .collect();
        let objects: Vec<ObjectRecord> = independent_objects(120, 3, 94)
            .into_iter()
            .map(|(id, p)| ObjectRecord {
                id,
                point: p,
                capacity: 1 + (id.0 as u32 % 3),
            })
            .collect();
        let p = Problem::new(functions, objects).unwrap();
        let want = oracle(&p).canonical();
        let mut tree = p.build_tree(Some(8), 0.0);
        let result = sb(&p, &mut tree, &SbOptions::default());
        verify_stable(&p, &result.assignment).unwrap();
        assert_eq!(result.assignment.canonical(), want);
    }

    #[test]
    fn prioritized_assignment_standard_and_two_skyline_agree() {
        let base = uniform_weight_functions(40, 3, 95);
        let prioritized = random_priorities(&base, 4, 96);
        let objects = independent_objects(200, 3, 97);
        let functions: Vec<PreferenceFunction> = prioritized
            .into_iter()
            .enumerate()
            .map(|(i, f)| PreferenceFunction::new(i, f))
            .collect();
        let objects: Vec<ObjectRecord> = objects
            .into_iter()
            .map(|(id, p)| ObjectRecord {
                id,
                point: p,
                capacity: 1,
            })
            .collect();
        let p = Problem::new(functions, objects).unwrap();
        assert!(p.has_priorities());
        let want = oracle(&p).canonical();
        for opts in [SbOptions::default(), SbOptions::two_skylines()] {
            let mut tree = p.build_tree(Some(12), 0.02);
            let result = sb(&p, &mut tree, &opts);
            verify_stable(&p, &result.assignment).unwrap();
            assert_eq!(result.assignment.canonical(), want, "variant {opts:?}");
        }
    }

    #[test]
    fn sb_uses_less_io_than_brute_force() {
        let functions = uniform_weight_functions(100, 3, 98);
        let objects = anti_correlated_objects(2000, 3, 99);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree_sb = p.build_tree(Some(32), 0.02);
        let mut tree_bf = p.build_tree(Some(32), 0.02);
        let sb_result = sb(&p, &mut tree_sb, &SbOptions::default());
        let bf_result = crate::brute::brute_force(&p, &mut tree_bf);
        assert_eq!(
            sb_result.assignment.canonical(),
            bf_result.assignment.canonical()
        );
        assert!(
            sb_result.metrics.object_io.io_accesses() * 3
                < bf_result.metrics.object_io.io_accesses(),
            "SB {} vs Brute Force {}",
            sb_result.metrics.object_io.io_accesses(),
            bf_result.metrics.object_io.io_accesses()
        );
    }

    #[test]
    fn multiple_pairs_per_loop_reduces_loop_count() {
        let functions = uniform_weight_functions(80, 3, 101);
        let objects = independent_objects(500, 3, 102);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree_multi = p.build_tree(Some(16), 0.02);
        let mut tree_single = p.build_tree(Some(16), 0.02);
        let multi = sb(&p, &mut tree_multi, &SbOptions::default());
        let single = sb(
            &p,
            &mut tree_single,
            &SbOptions {
                multiple_pairs_per_loop: false,
                ..SbOptions::default()
            },
        );
        assert_eq!(multi.assignment.canonical(), single.assignment.canonical());
        assert!(multi.metrics.loops <= single.metrics.loops);
    }

    #[test]
    fn parallel_solve_is_canonical_identical_at_any_thread_count() {
        // Anti-correlated data keeps the skyline large, so the pairing phase
        // clears the parallel work floor and the pool path actually runs.
        let functions = uniform_weight_functions(200, 3, 301);
        let objects = anti_correlated_objects(800, 3, 302);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut baseline = None;
        for threads in [1usize, 2, 4, 8] {
            let mut tree = p.build_tree(Some(16), 0.02);
            let opts = SbOptions {
                threads: Some(threads),
                ..SbOptions::default()
            };
            let result = sb(&p, &mut tree, &opts);
            verify_stable(&p, &result.assignment).unwrap();
            let canon = result.assignment.canonical();
            match &baseline {
                None => baseline = Some(canon),
                Some(want) => assert_eq!(&canon, want, "threads={threads}"),
            }
        }
        assert_eq!(baseline.unwrap(), oracle(&p).canonical());
    }

    #[test]
    fn metrics_are_populated() {
        let functions = uniform_weight_functions(30, 3, 103);
        let objects = independent_objects(400, 3, 104);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree = p.build_tree(Some(16), 0.02);
        let result = sb(&p, &mut tree, &SbOptions::default());
        assert!(result.metrics.object_io.logical_reads > 0);
        assert!(result.metrics.loops > 0);
        assert!(result.metrics.searches > 0);
        assert!(result.metrics.peak_memory_bytes > 0);
        // the resumable-TA searches must charge their sorted-list accesses
        assert!(
            result.metrics.aux_io.io_accesses() > 0,
            "ResumableTa must report its sorted accesses as aux I/O"
        );
        assert!(result.metrics.total_io() > result.metrics.object_io.io_accesses());
    }

    #[test]
    fn fresh_ta_charges_aux_io_per_loop() {
        let functions = uniform_weight_functions(30, 3, 105);
        let objects = independent_objects(200, 3, 106);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree_fresh = p.build_tree(Some(16), 0.02);
        let mut tree_resume = p.build_tree(Some(16), 0.02);
        let fresh = sb(&p, &mut tree_fresh, &SbOptions::update_skyline_only());
        let resume = sb(&p, &mut tree_resume, &SbOptions::default());
        assert!(fresh.metrics.aux_io.io_accesses() > 0);
        // restarting every search from scratch costs more sorted accesses
        // than resuming — the very point of the paper's Section 5.1
        assert!(
            fresh.metrics.aux_io.io_accesses() > resume.metrics.aux_io.io_accesses(),
            "FreshTa {} vs ResumableTa {}",
            fresh.metrics.aux_io.io_accesses(),
            resume.metrics.aux_io.io_accesses()
        );
        // exhaustive scans never touch the sorted lists
        let mut tree_scan = p.build_tree(Some(16), 0.02);
        let scan = sb(
            &p,
            &mut tree_scan,
            &SbOptions {
                best_pair: BestPairStrategy::ExhaustiveScan,
                ..SbOptions::default()
            },
        );
        assert_eq!(scan.metrics.aux_io.io_accesses(), 0);
    }
}
