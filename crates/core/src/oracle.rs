//! Exact reference implementation of the stable assignment.

use crate::matching::Assignment;
use crate::problem::Problem;

/// Computes the stable assignment by brute force: all `|F| · |O|` scores are
/// materialized, sorted in descending order, and consumed greedily while both
/// sides still have capacity. This is exactly the definition of the matching
/// (Section 3) and serves as the oracle that every algorithm is tested
/// against. Ties are broken deterministically by (function id, object id).
///
/// Complexity is `O(|F|·|O|·log(|F|·|O|))` time and `O(|F|·|O|)` memory, so
/// it is intended for tests and small examples only.
pub fn oracle(problem: &Problem) -> Assignment {
    let mut scored: Vec<(f64, usize, usize)> =
        Vec::with_capacity(problem.num_functions() * problem.num_objects());
    for (fi, f) in problem.functions().iter().enumerate() {
        for (oi, o) in problem.objects().iter().enumerate() {
            scored.push((f.function.score(&o.point), fi, oi));
        }
    }
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.1.cmp(&b.1))
            .then_with(|| a.2.cmp(&b.2))
    });
    let mut f_remaining: Vec<u32> = problem.functions().iter().map(|f| f.capacity).collect();
    let mut o_remaining: Vec<u32> = problem.objects().iter().map(|o| o.capacity).collect();
    let mut demand: u64 = f_remaining.iter().map(|&c| c as u64).sum();
    let mut supply: u64 = o_remaining.iter().map(|&c| c as u64).sum();
    let mut assignment = Assignment::new();
    for (score, fi, oi) in scored {
        if demand == 0 || supply == 0 {
            break;
        }
        // a pair with capacity on both sides keeps being the maximum until one
        // side is exhausted, so the iterative process assigns it repeatedly
        let take = f_remaining[fi].min(o_remaining[oi]);
        for _ in 0..take {
            if demand == 0 || supply == 0 {
                break;
            }
            f_remaining[fi] -= 1;
            o_remaining[oi] -= 1;
            demand -= 1;
            supply -= 1;
            assignment.push(problem.functions()[fi].id, problem.objects()[oi].id, score);
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::verify_stable;
    use crate::problem::{FunctionId, ObjectRecord, PreferenceFunction};
    use pref_geom::{LinearFunction, Point};
    use pref_rtree::RecordId;

    fn figure1_problem() -> Problem {
        Problem::new(
            vec![
                PreferenceFunction::new(0, LinearFunction::new(vec![0.8, 0.2]).unwrap()),
                PreferenceFunction::new(1, LinearFunction::new(vec![0.2, 0.8]).unwrap()),
                PreferenceFunction::new(2, LinearFunction::new(vec![0.5, 0.5]).unwrap()),
            ],
            vec![
                ObjectRecord::new(0, Point::from_slice(&[0.5, 0.6])),
                ObjectRecord::new(1, Point::from_slice(&[0.2, 0.7])),
                ObjectRecord::new(2, Point::from_slice(&[0.8, 0.2])),
                ObjectRecord::new(3, Point::from_slice(&[0.4, 0.4])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn reproduces_the_paper_walkthrough() {
        // "c is assigned to f1 ... next b is assigned to f2 ... f3 takes a"
        let p = figure1_problem();
        let a = oracle(&p);
        verify_stable(&p, &a).unwrap();
        assert_eq!(a.pairs().len(), 3);
        assert_eq!(a.pairs()[0].function, FunctionId(0));
        assert_eq!(a.pairs()[0].object, RecordId(2));
        assert_eq!(a.pairs()[1].function, FunctionId(1));
        assert_eq!(a.pairs()[1].object, RecordId(1));
        assert_eq!(a.pairs()[2].function, FunctionId(2));
        assert_eq!(a.pairs()[2].object, RecordId(0));
        // scores come out in descending order
        assert!(a.pairs().windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn oracle_output_is_always_stable_on_random_instances() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10 {
            let dims = rng.gen_range(2..5);
            let functions: Vec<PreferenceFunction> = (0..rng.gen_range(3..15))
                .map(|i| {
                    PreferenceFunction::new(
                        i,
                        LinearFunction::new((0..dims).map(|_| rng.gen_range(0.01..1.0)).collect())
                            .unwrap(),
                    )
                })
                .collect();
            let objects: Vec<ObjectRecord> = (0..rng.gen_range(3..25))
                .map(|i| {
                    ObjectRecord::new(
                        i,
                        Point::from_slice(
                            &(0..dims)
                                .map(|_| rng.gen_range(0.0..1.0))
                                .collect::<Vec<_>>(),
                        ),
                    )
                })
                .collect();
            let p = Problem::new(functions, objects).unwrap();
            let a = oracle(&p);
            verify_stable(&p, &a).unwrap();
        }
    }

    #[test]
    fn capacities_expand_the_matching() {
        let p = Problem::new(
            vec![
                PreferenceFunction::new(0, LinearFunction::new(vec![0.9, 0.1]).unwrap())
                    .with_capacity(2),
                PreferenceFunction::new(1, LinearFunction::new(vec![0.1, 0.9]).unwrap()),
            ],
            vec![
                ObjectRecord::new(0, Point::from_slice(&[0.9, 0.1])).with_capacity(2),
                ObjectRecord::new(1, Point::from_slice(&[0.1, 0.9])),
            ],
        )
        .unwrap();
        let a = oracle(&p);
        verify_stable(&p, &a).unwrap();
        assert_eq!(a.len(), 3);
        // the capacity-2 function takes the capacity-2 object twice? no — each
        // pair consumes one capacity unit of each side, so f0 gets r0 twice
        assert_eq!(a.objects_of(FunctionId(0)), vec![RecordId(0), RecordId(0)]);
        assert_eq!(a.objects_of(FunctionId(1)), vec![RecordId(1)]);
    }

    #[test]
    fn more_functions_than_objects_leaves_users_unmatched() {
        let p = Problem::new(
            (0..5)
                .map(|i| {
                    PreferenceFunction::new(
                        i,
                        LinearFunction::new(vec![0.5 + i as f64 * 0.05, 0.5 - i as f64 * 0.05])
                            .unwrap(),
                    )
                })
                .collect(),
            vec![
                ObjectRecord::new(0, Point::from_slice(&[0.8, 0.3])),
                ObjectRecord::new(1, Point::from_slice(&[0.3, 0.8])),
            ],
        )
        .unwrap();
        let a = oracle(&p);
        verify_stable(&p, &a).unwrap();
        assert_eq!(a.len(), 2);
    }
}
