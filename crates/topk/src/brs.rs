//! BRS: branch-and-bound ranked search over the object R-tree.
//!
//! This is the incremental top-k engine (Tao et al.) that the Brute Force and
//! Chain competitors use for their top-1 object searches. Entries are visited
//! in descending `maxscore` order; when a data entry reaches the top of the
//! heap it is guaranteed to be the next best object, so the search can be
//! paused and resumed at will (the "resuming search" feature of Section 4.1).

use pref_geom::{kernel, LinearFunction, SoaBlock};
use pref_rtree::{DataEntry, NodeEntry, RTree, RecordId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct ScoredEntry {
    score: f64,
    entry: NodeEntry,
}

impl PartialEq for ScoredEntry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl Eq for ScoredEntry {}
impl PartialOrd for ScoredEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ScoredEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // max-heap on score
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
    }
}

/// An incremental ranked search over an R-tree for one preference function.
///
/// Node pages are scored *columnarly*: each page expansion pulls the page's
/// score-relevant corners (data points / child MBR best corners) into a
/// reusable [`SoaBlock`] and batch-scores them with the lane kernels, which is
/// bit-identical to scoring each entry with [`LinearFunction::score`] /
/// [`LinearFunction::maxscore`] one at a time (both reduce to the same
/// sequential dot product over the same corner).
#[derive(Debug)]
pub struct RankedSearch {
    function: LinearFunction,
    heap: BinaryHeap<ScoredEntry>,
    initialized: bool,
    /// Number of data entries already reported.
    reported: usize,
    /// Reusable columnar page view (scratch; no per-expansion allocation
    /// once warm).
    block: SoaBlock,
    /// Reusable score lane matching `block` (scratch).
    scores: Vec<f64>,
}

impl std::fmt::Debug for ScoredEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScoredEntry({:.4})", self.score)
    }
}

impl RankedSearch {
    /// Creates a (lazily initialized) ranked search for `function`.
    pub fn new(function: LinearFunction) -> Self {
        Self {
            function,
            heap: BinaryHeap::new(),
            initialized: false,
            reported: 0,
            block: SoaBlock::new(),
            scores: Vec::new(),
        }
    }

    /// The preference function driving the search.
    pub fn function(&self) -> &LinearFunction {
        &self.function
    }

    /// Number of results reported so far.
    pub fn reported(&self) -> usize {
        self.reported
    }

    /// Approximate size of the search heap in bytes (for the memory metric).
    pub fn memory_bytes(&self) -> u64 {
        (self.heap.len() * (2 * self.function.dims() * 8 + 24)) as u64
    }

    /// Returns the next best object not rejected by `accept`, together with
    /// its score, or `None` when the tree is exhausted.
    ///
    /// `accept` lets callers skip logically deleted records (objects already
    /// assigned by the caller) without touching the index structure; entries
    /// are only filtered at the data level, so the traversal order and I/O
    /// behaviour are those of a plain ranked search.
    pub fn next_accepted<F>(&mut self, tree: &mut RTree, mut accept: F) -> Option<(DataEntry, f64)>
    where
        F: FnMut(RecordId) -> bool,
    {
        if !self.initialized {
            self.initialized = true;
            if let Some((_, entries)) = tree.root_entries_columnar(&mut self.block) {
                self.push_page(entries);
            }
        }
        while let Some(ScoredEntry { score, entry }) = self.heap.pop() {
            match entry {
                NodeEntry::Data(data) => {
                    if accept(data.record) {
                        self.reported += 1;
                        return Some((data, score));
                    }
                }
                NodeEntry::Child { page, .. } => {
                    let (_, children) = tree.node_entries_columnar(page, &mut self.block);
                    self.push_page(children);
                }
            }
        }
        None
    }

    /// Returns the next best object unconditionally.
    pub fn next(&mut self, tree: &mut RTree) -> Option<(DataEntry, f64)> {
        self.next_accepted(tree, |_| true)
    }

    /// Batch-scores the page mirrored in `self.block` and pushes every entry
    /// with its precomputed score.
    fn push_page(&mut self, entries: Vec<NodeEntry>) {
        debug_assert_eq!(self.block.len(), entries.len());
        kernel::score_block(
            self.function.weights(),
            self.function.priority(),
            &self.block,
            &mut self.scores,
        );
        for (entry, &score) in entries.into_iter().zip(self.scores.iter()) {
            self.heap.push(ScoredEntry { score, entry });
        }
    }
}

/// Convenience: the `k` highest-scoring objects for a function, in descending
/// score order.
pub fn top_k(tree: &mut RTree, function: LinearFunction, k: usize) -> Vec<(DataEntry, f64)> {
    let mut search = RankedSearch::new(function);
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        match search.next(tree) {
            Some(hit) => out.push(hit),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_geom::Point;
    use pref_rtree::RTreeConfig;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::collections::HashSet;

    fn random_points(n: u64, dims: usize, seed: u64) -> Vec<(RecordId, Point)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    RecordId(i),
                    Point::from_slice(
                        &(0..dims)
                            .map(|_| rng.gen_range(0.0..1.0))
                            .collect::<Vec<_>>(),
                    ),
                )
            })
            .collect()
    }

    fn build(points: &[(RecordId, Point)], fanout: usize) -> RTree {
        let dims = points[0].1.dims();
        RTree::bulk_load(
            RTreeConfig::for_dims(dims).with_fanout(fanout),
            points.to_vec(),
        )
        .unwrap()
    }

    #[test]
    fn figure4_top1_is_e() {
        // In Figure 4, object e is the top-1 of both drawn functions.
        let points = vec![
            (RecordId(0), Point::from_slice(&[0.15, 0.95])),  // a
            (RecordId(4), Point::from_slice(&[0.70, 0.85])),  // e
            (RecordId(8), Point::from_slice(&[0.65, 0.40])),  // i
            (RecordId(10), Point::from_slice(&[0.50, 0.30])), // k
        ];
        let mut tree = build(&points, 4);
        for weights in [[0.7, 0.3], [0.4, 0.6]] {
            let f = LinearFunction::new(weights.to_vec()).unwrap();
            let top = top_k(&mut tree, f, 1);
            assert_eq!(top[0].0.record, RecordId(4));
        }
    }

    #[test]
    fn results_come_in_descending_score_order_and_match_oracle() {
        let points = random_points(800, 3, 3);
        let mut tree = build(&points, 16);
        let f = LinearFunction::new(vec![0.5, 0.3, 0.2]).unwrap();
        let got = top_k(&mut tree, f.clone(), 25);
        assert_eq!(got.len(), 25);
        for w in got.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // oracle
        let mut scored: Vec<(u64, f64)> = points.iter().map(|(r, p)| (r.0, f.score(p))).collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        for (i, (entry, score)) in got.iter().enumerate() {
            assert!(
                (score - scored[i].1).abs() < 1e-9,
                "rank {i} score mismatch"
            );
            let _ = entry;
        }
    }

    #[test]
    fn exhausting_the_tree_reports_every_object_once() {
        let points = random_points(300, 2, 4);
        let mut tree = build(&points, 8);
        let f = LinearFunction::new(vec![0.9, 0.1]).unwrap();
        let mut search = RankedSearch::new(f);
        let mut seen = HashSet::new();
        while let Some((d, _)) = search.next(&mut tree) {
            assert!(seen.insert(d.record), "duplicate report of {}", d.record);
        }
        assert_eq!(seen.len(), 300);
        assert_eq!(search.reported(), 300);
    }

    #[test]
    fn accept_filter_skips_assigned_objects() {
        let points = random_points(200, 2, 5);
        let mut tree = build(&points, 8);
        let f = LinearFunction::new(vec![0.5, 0.5]).unwrap();
        // determine the true top-2 first
        let top2 = top_k(&mut tree, f.clone(), 2);
        let banned = top2[0].0.record;
        let mut search = RankedSearch::new(f);
        let (hit, _) = search.next_accepted(&mut tree, |r| r != banned).unwrap();
        assert_eq!(hit.record, top2[1].0.record);
    }

    #[test]
    fn incremental_search_is_io_cheaper_than_full_scan_for_top1() {
        let points = random_points(5000, 3, 6);
        let mut tree = build(&points, 32);
        tree.reset_stats();
        let f = LinearFunction::new(vec![0.4, 0.3, 0.3]).unwrap();
        let _ = top_k(&mut tree, f, 1);
        let io = tree.stats().logical_reads;
        assert!(
            (io as usize) < tree.num_pages() / 2,
            "top-1 touched {io} nodes out of {}",
            tree.num_pages()
        );
    }

    #[test]
    fn resuming_costs_no_repeated_root_reads() {
        let points = random_points(1000, 2, 7);
        let mut tree = build(&points, 16);
        let f = LinearFunction::new(vec![0.6, 0.4]).unwrap();
        let mut search = RankedSearch::new(f);
        tree.reset_stats();
        let _ = search.next(&mut tree);
        let after_first = tree.stats().logical_reads;
        // ten further results should be much cheaper than ten fresh searches
        for _ in 0..10 {
            let _ = search.next(&mut tree);
        }
        let after_more = tree.stats().logical_reads;
        assert!(after_more - after_first <= after_first * 10);
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let mut tree = RTree::with_dims(2);
        let f = LinearFunction::new(vec![0.5, 0.5]).unwrap();
        assert!(top_k(&mut tree, f, 3).is_empty());
    }

    #[test]
    fn top_k_larger_than_dataset_returns_everything() {
        let points = random_points(20, 2, 8);
        let mut tree = build(&points, 8);
        let f = LinearFunction::new(vec![0.5, 0.5]).unwrap();
        assert_eq!(top_k(&mut tree, f, 100).len(), 20);
    }
}
