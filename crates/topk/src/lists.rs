//! Sorted coefficient lists over the set of preference functions.

use pref_geom::{kernel, LinearFunction, Point, ScoreTable};

/// The paper's in-memory index over the preference functions `F`: one list per
/// dimension, holding `(coefficient, function)` pairs sorted by coefficient in
/// descending order (Section 5.1).
///
/// Functions are addressed by their index in the original slice. Assigned
/// functions are *removed* logically ([`FunctionLists::remove`]); list scans
/// skip them, so the TA threshold keeps tightening as `F` shrinks.
///
/// For the prioritized variant (Section 6.2) the lists are built over the
/// *effective* coefficients `α′ᵢ = γ·αᵢ` and the knapsack budget becomes the
/// maximum priority; both fall out of [`FunctionLists::new`] automatically
/// because [`LinearFunction::effective_weights`] already folds γ in.
#[derive(Debug, Clone)]
pub struct FunctionLists {
    /// `lists[d]` = (effective coefficient, function index), descending.
    lists: Vec<Vec<(f64, usize)>>,
    /// Effective (priority-scaled) weight vectors, indexed by function.
    effective: Vec<Vec<f64>>,
    /// Which functions are still unassigned.
    alive: Vec<bool>,
    alive_count: usize,
    /// Shared batch-scoring view over `effective` (clone-cheap: `Arc` rows).
    table: ScoreTable,
    /// Maximum priority over all functions (the knapsack budget).
    max_priority: f64,
    dims: usize,
}

impl FunctionLists {
    /// Builds the sorted lists for a set of functions.
    ///
    /// # Panics
    /// Panics if the functions do not all share the same dimensionality or the
    /// slice is empty.
    pub fn new(functions: &[LinearFunction]) -> Self {
        assert!(
            !functions.is_empty(),
            "FunctionLists requires at least one function"
        );
        let dims = functions[0].dims();
        assert!(
            functions.iter().all(|f| f.dims() == dims),
            "all functions must share the same dimensionality"
        );
        let effective: Vec<Vec<f64>> = functions.iter().map(|f| f.effective_weights()).collect();
        let mut lists: Vec<Vec<(f64, usize)>> = vec![Vec::with_capacity(functions.len()); dims];
        for (idx, w) in effective.iter().enumerate() {
            for (d, &coeff) in w.iter().enumerate() {
                lists[d].push((coeff, idx));
            }
        }
        for list in &mut lists {
            list.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        }
        let max_priority = functions
            .iter()
            .map(LinearFunction::priority)
            .fold(0.0f64, f64::max);
        let table = ScoreTable::from_effective_rows(&effective);
        Self {
            lists,
            effective,
            alive: vec![true; functions.len()],
            alive_count: functions.len(),
            table,
            max_priority,
            dims,
        }
    }

    /// Dimensionality of the indexed functions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total number of functions (alive and removed).
    pub fn total(&self) -> usize {
        self.alive.len()
    }

    /// Number of unassigned (alive) functions.
    pub fn remaining(&self) -> usize {
        self.alive_count
    }

    /// The knapsack budget: 1 for normalized functions, the maximum γ when
    /// priorities are in use.
    pub fn budget(&self) -> f64 {
        self.max_priority
    }

    /// `true` iff the function has not been removed.
    pub fn is_alive(&self, function: usize) -> bool {
        self.alive[function]
    }

    /// Removes (assigns) a function; returns `false` if it was already gone.
    pub fn remove(&mut self, function: usize) -> bool {
        if !self.alive[function] {
            return false;
        }
        self.alive[function] = false;
        self.alive_count -= 1;
        true
    }

    /// The function's effective score on an object (a "random access" in TA
    /// terms). Routed through the canonical [`kernel::dot`] kernel — the same
    /// summation order the previous iterator fold used, so scores are
    /// bit-identical to the scalar path.
    pub fn score(&self, function: usize, object: &Point) -> f64 {
        debug_assert_eq!(object.dims(), self.dims);
        kernel::dot(&self.effective[function], object.coords())
    }

    /// A clone-cheap batch-scoring view over the effective coefficients
    /// (priorities already folded in). Removal state is *not* part of the
    /// table — callers filter by [`FunctionLists::is_alive`] or pass only
    /// alive candidates, exactly as the scalar scans do.
    pub fn score_table(&self) -> ScoreTable {
        self.table.clone()
    }

    /// The effective coefficient vector of a function.
    pub fn effective_weights(&self, function: usize) -> &[f64] {
        &self.effective[function]
    }

    /// Scans list `dim` starting at `cursor`, skipping removed functions, and
    /// returns `(next_cursor, coefficient, function)` for the first alive
    /// entry, or `None` if the list is exhausted.
    pub fn next_alive(&self, dim: usize, mut cursor: usize) -> Option<(usize, f64, usize)> {
        let list = &self.lists[dim];
        while cursor < list.len() {
            let (coeff, func) = list[cursor];
            if self.alive[func] {
                return Some((cursor + 1, coeff, func));
            }
            cursor += 1;
        }
        None
    }

    /// The raw list for a dimension (including removed functions); used by the
    /// batch scanner, which performs its own skipping.
    pub fn raw_list(&self, dim: usize) -> &[(f64, usize)] {
        &self.lists[dim]
    }

    /// Indices of all alive functions.
    pub fn alive_functions(&self) -> Vec<usize> {
        self.alive
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
            .collect()
    }

    /// Exhaustive best function for an object: linear scan over alive
    /// functions. Used as an oracle by tests and by the two-skyline variant,
    /// where the candidate function set is small.
    pub fn best_by_scan(&self, object: &Point) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for idx in 0..self.alive.len() {
            if !self.alive[idx] {
                continue;
            }
            let s = self.score(idx, object);
            match best {
                Some((_, bs)) if bs >= s => {}
                _ => best = Some((idx, s)),
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(w: &[f64]) -> LinearFunction {
        LinearFunction::new(w.to_vec()).unwrap()
    }

    fn paper_functions() -> Vec<LinearFunction> {
        // Figure 5: fa..fe over three dimensions.
        vec![
            LinearFunction::from_normalized(vec![0.8, 0.1, 0.1]).unwrap(), // fa
            LinearFunction::from_normalized(vec![0.2, 0.8, 0.0]).unwrap(), // fb
            LinearFunction::from_normalized(vec![0.5, 0.4, 0.1]).unwrap(), // fc
            LinearFunction::from_normalized(vec![0.0, 0.1, 0.9]).unwrap(), // fd
            LinearFunction::from_normalized(vec![0.2, 0.4, 0.4]).unwrap(), // fe
        ]
    }

    #[test]
    fn lists_are_sorted_descending() {
        let lists = FunctionLists::new(&paper_functions());
        for d in 0..3 {
            let raw = lists.raw_list(d);
            for w in raw.windows(2) {
                assert!(w[0].0 >= w[1].0);
            }
            assert_eq!(raw.len(), 5);
        }
        // L1 head is fa (0.8), L2 head is fb (0.8), L3 head is fd (0.9)
        assert_eq!(lists.raw_list(0)[0], (0.8, 0));
        assert_eq!(lists.raw_list(1)[0], (0.8, 1));
        assert_eq!(lists.raw_list(2)[0], (0.9, 3));
    }

    #[test]
    fn scores_match_figure5() {
        let lists = FunctionLists::new(&paper_functions());
        let o = Point::from_slice(&[10.0, 6.0, 8.0]);
        assert!((lists.score(0, &o) - 9.4).abs() < 1e-9); // fa
        assert!((lists.score(1, &o) - 6.8).abs() < 1e-9); // fb
        assert!((lists.score(2, &o) - 8.2).abs() < 1e-9); // fc
        assert!((lists.score(3, &o) - 7.8).abs() < 1e-9); // fd
        assert_eq!(lists.best_by_scan(&o).unwrap().0, 0); // fa wins
    }

    #[test]
    fn removal_affects_scans_and_counts() {
        let mut lists = FunctionLists::new(&paper_functions());
        assert_eq!(lists.remaining(), 5);
        assert!(lists.remove(0));
        assert!(!lists.remove(0));
        assert_eq!(lists.remaining(), 4);
        assert!(!lists.is_alive(0));
        // scanning L1 now skips fa and yields fc (0.5)
        let (next, coeff, func) = lists.next_alive(0, 0).unwrap();
        assert_eq!(func, 2);
        assert!((coeff - 0.5).abs() < 1e-12);
        assert_eq!(next, 2);
        // best for the object moves to fc
        let o = Point::from_slice(&[10.0, 6.0, 8.0]);
        assert_eq!(lists.best_by_scan(&o).unwrap().0, 2);
        assert_eq!(lists.alive_functions(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn exhausted_scan_returns_none() {
        let mut lists = FunctionLists::new(&paper_functions());
        for i in 0..5 {
            lists.remove(i);
        }
        assert!(lists.next_alive(0, 0).is_none());
        assert!(lists
            .best_by_scan(&Point::from_slice(&[1.0, 1.0, 1.0]))
            .is_none());
        assert_eq!(lists.remaining(), 0);
    }

    #[test]
    fn prioritized_functions_scale_budget_and_scores() {
        let funcs = vec![
            LinearFunction::with_priority(vec![0.8, 0.2], 3.0).unwrap(),
            LinearFunction::with_priority(vec![0.2, 0.8], 2.0).unwrap(),
            LinearFunction::with_priority(vec![0.5, 0.5], 1.0).unwrap(),
        ];
        let lists = FunctionLists::new(&funcs);
        assert_eq!(lists.budget(), 3.0);
        let o = Point::from_slice(&[0.5, 0.6]);
        // 3*(0.8*0.5 + 0.2*0.6) = 1.56
        assert!((lists.score(0, &o) - 1.56).abs() < 1e-9);
        assert_eq!(lists.best_by_scan(&o).unwrap().0, 0);
    }

    #[test]
    #[should_panic(expected = "same dimensionality")]
    fn mixed_dimensions_rejected() {
        let _ = FunctionLists::new(&[f(&[0.5, 0.5]), f(&[0.3, 0.3, 0.4])]);
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn empty_function_set_rejected() {
        let _ = FunctionLists::new(&[]);
    }
}
