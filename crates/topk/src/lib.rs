//! Top-k search modules used by the fair-assignment algorithms.
//!
//! Three search primitives from the paper:
//!
//! * **BRS** ([`RankedSearch`]) — branch-and-bound ranked search over the
//!   object R-tree (Tao et al.), used as the incremental top-1 engine of the
//!   Brute Force and Chain competitors;
//! * **reverse top-1 via TA** ([`ReverseTopOne`], [`FunctionLists`]) — the
//!   paper's Section 5.1 module: the preference functions are organised as
//!   `D` sorted coefficient lists and, for a given skyline object, the best
//!   remaining function is found with a threshold-algorithm scan whose
//!   termination threshold is tightened by a fractional-knapsack bound
//!   ([`tight_threshold`]), biased list probing, and a resumable, capped
//!   candidate queue (the Ω technique);
//! * **batch best-pair search** ([`DiskFunctionLists`], [`batch_best_functions`])
//!   — the Section 7.6 variant for disk-resident function sets, which scans
//!   the coefficient lists block by block once per skyline version and charges
//!   list I/O explicitly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod brs;
mod knapsack;
mod lists;
mod reverse;

pub use batch::{batch_best_functions, DiskFunctionLists};
pub use brs::{top_k, RankedSearch};
pub use knapsack::tight_threshold;
pub use lists::FunctionLists;
pub use reverse::{best_function_scan, ReverseTopOne};
