//! Reverse top-1 search: the best remaining preference function for an object.
//!
//! This is the paper's adaptation of the threshold algorithm (Section 5.1):
//! the roles of objects and functions are swapped, the termination threshold
//! is the fractional-knapsack bound of [`crate::tight_threshold`], lists are
//! probed in a biased order (largest `l_i · o_i` first), and the search state
//! is kept so it can *resume* when the object's current best function is
//! assigned to another object. The candidate queue is capped at
//! `Ω = ω · |F|`; every pop shrinks the cap by one and when it reaches zero
//! the search restarts from scratch (the paper's memory/CPU trade-off knob).

use crate::knapsack::tight_threshold;
use crate::lists::FunctionLists;
use pref_geom::Point;
use std::collections::HashSet;

/// Exhaustively scans the alive functions for the best one; the oracle used in
/// tests and by the two-skyline prioritized variant.
pub fn best_function_scan(lists: &FunctionLists, object: &Point) -> Option<(usize, f64)> {
    lists.best_by_scan(object)
}

/// Resumable reverse top-1 search state for one object.
#[derive(Debug, Clone)]
pub struct ReverseTopOne {
    object: Point,
    /// Next unread position in each sorted list.
    cursors: Vec<usize>,
    /// Last coefficient seen in each list (starts at the knapsack budget).
    last_seen: Vec<f64>,
    /// `true` once the corresponding list has been fully consumed.
    exhausted: Vec<bool>,
    /// Candidate functions seen so far: `(score, function)`, sorted by score
    /// descending, truncated to `cap`.
    candidates: Vec<(f64, usize)>,
    /// Functions already random-accessed (avoids duplicate work).
    seen: HashSet<usize>,
    /// Current capacity of the candidate queue (the paper's Ω).
    cap: usize,
    /// Reset value for the capacity.
    omega: usize,
    /// Number of sorted-list accesses performed (for diagnostics).
    sorted_accesses: u64,
    /// Number of from-scratch restarts triggered by the Ω mechanism.
    restarts: u64,
}

impl ReverseTopOne {
    /// Creates a search state for `object`. `omega` is the maximum size of the
    /// candidate queue (`ω·|F|` in the paper); it is clamped to at least 1.
    pub fn new(object: Point, omega: usize) -> Self {
        let dims = object.dims();
        let omega = omega.max(1);
        Self {
            object,
            cursors: vec![0; dims],
            last_seen: vec![f64::INFINITY; dims],
            exhausted: vec![false; dims],
            candidates: Vec::new(),
            seen: HashSet::new(),
            cap: omega,
            omega,
            sorted_accesses: 0,
            restarts: 0,
        }
    }

    /// The object this state searches for.
    pub fn object(&self) -> &Point {
        &self.object
    }

    /// Number of sorted accesses performed so far.
    pub fn sorted_accesses(&self) -> u64 {
        self.sorted_accesses
    }

    /// Number of from-scratch restarts caused by the capped queue.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Approximate memory footprint of this state in bytes (candidate queue,
    /// seen-set and cursors); feeds the paper's memory-usage metric.
    pub fn memory_bytes(&self) -> u64 {
        (self.candidates.len() * 16 + self.seen.len() * 8 + self.cursors.len() * 24) as u64
    }

    /// Returns the best *alive* function for this object together with its
    /// score, resuming the previous search if possible. Returns `None` when no
    /// alive function remains.
    pub fn best(&mut self, lists: &FunctionLists) -> Option<(usize, f64)> {
        if lists.remaining() == 0 {
            return None;
        }
        loop {
            self.drop_dead_candidates(lists);
            if self.cap == 0 {
                // The capped queue can no longer guarantee the true top-1:
                // restart from scratch with a fresh capacity.
                self.restart();
                continue;
            }
            let budget = lists.budget();
            let current_best = self.candidates.first().copied();
            let threshold = self.current_threshold(budget);
            if let Some((score, func)) = current_best {
                // Accept only once the bound on *unseen* functions is
                // strictly below the front candidate. At `score == threshold`
                // an unseen function can still TIE the front exactly, and the
                // stable loop's tie rule (lowest function index, the oracle's
                // order) requires every tied function to reach the candidate
                // queue — where insertion order resolves the tie — before the
                // search answers.
                if score > threshold + 1e-12 {
                    return Some((func, score));
                }
            }
            // advance the most promising list (biased probing)
            match self.pick_list() {
                Some(dim) => self.advance(dim, lists),
                None => {
                    // every list is exhausted: every alive function has been
                    // seen, so the front candidate (if any) is the answer
                    return self.candidates.first().map(|&(s, f)| (f, s));
                }
            }
        }
    }

    /// Removes dead (assigned) functions from the *whole* candidate queue,
    /// shrinking the capacity by one per removal as in the paper. Purging only
    /// the front would leave dead entries buried mid-queue occupying Ω slots:
    /// they crowd alive candidates out of the capped queue at insertion time
    /// and trigger premature restarts. The per-removal decrement is what keeps
    /// the capped queue sound — every candidate discarded by truncation was
    /// dominated by `cap` entries at the time, so after `cap` removals the
    /// guarantee is gone and [`ReverseTopOne::best`] restarts.
    fn drop_dead_candidates(&mut self, lists: &FunctionLists) {
        let before = self.candidates.len();
        self.candidates.retain(|&(_, func)| lists.is_alive(func));
        let removed = before - self.candidates.len();
        self.cap = self.cap.saturating_sub(removed);
    }

    fn restart(&mut self) {
        let dims = self.object.dims();
        self.cursors = vec![0; dims];
        self.last_seen = vec![f64::INFINITY; dims];
        self.exhausted = vec![false; dims];
        self.candidates.clear();
        self.seen.clear();
        self.cap = self.omega;
        self.restarts += 1;
    }

    /// The tight threshold given the current last-seen coefficients; before a
    /// list has been touched its contribution is capped only by the budget.
    fn current_threshold(&self, budget: f64) -> f64 {
        let capped: Vec<f64> = self
            .last_seen
            .iter()
            .zip(self.exhausted.iter())
            .map(|(&l, &ex)| {
                if ex {
                    0.0
                } else if l.is_infinite() {
                    budget
                } else {
                    l
                }
            })
            .collect();
        tight_threshold(&self.object, &capped, budget)
    }

    /// Biased list probing: the non-exhausted list with the largest
    /// `last_seen · o_d` (unvisited lists count with the full budget).
    fn pick_list(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for d in 0..self.object.dims() {
            if self.exhausted[d] {
                continue;
            }
            let l = if self.last_seen[d].is_infinite() {
                1.0
            } else {
                self.last_seen[d]
            };
            let gain = l * self.object.coord(d);
            match best {
                Some((_, g)) if g >= gain => {}
                _ => best = Some((d, gain)),
            }
        }
        best.map(|(d, _)| d)
    }

    fn advance(&mut self, dim: usize, lists: &FunctionLists) {
        match lists.next_alive(dim, self.cursors[dim]) {
            None => {
                self.exhausted[dim] = true;
                self.last_seen[dim] = 0.0;
            }
            Some((next_cursor, coeff, func)) => {
                self.cursors[dim] = next_cursor;
                self.last_seen[dim] = coeff;
                self.sorted_accesses += 1;
                if self.seen.insert(func) {
                    let score = lists.score(func, &self.object);
                    self.insert_candidate(score, func);
                }
            }
        }
    }

    /// Inserts in (score desc, function index asc) order so that exact score
    /// ties resolve to the lowest function index — the same deterministic rule
    /// the solver's argmax scans use.
    fn insert_candidate(&mut self, score: f64, func: usize) {
        let pos = self
            .candidates
            .partition_point(|&(s, f)| s > score || (s == score && f < func));
        self.candidates.insert(pos, (score, func));
        if self.candidates.len() > self.cap {
            self.candidates.truncate(self.cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_geom::LinearFunction;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn paper_functions() -> Vec<LinearFunction> {
        vec![
            LinearFunction::from_normalized(vec![0.8, 0.1, 0.1]).unwrap(), // 0: fa
            LinearFunction::from_normalized(vec![0.2, 0.8, 0.0]).unwrap(), // 1: fb
            LinearFunction::from_normalized(vec![0.5, 0.4, 0.1]).unwrap(), // 2: fc
            LinearFunction::from_normalized(vec![0.0, 0.1, 0.9]).unwrap(), // 3: fd
            LinearFunction::from_normalized(vec![0.2, 0.4, 0.4]).unwrap(), // 4: fe
        ]
    }

    fn random_functions(n: usize, dims: usize, seed: u64) -> Vec<LinearFunction> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                LinearFunction::new((0..dims).map(|_| rng.gen_range(0.01..1.0)).collect()).unwrap()
            })
            .collect()
    }

    #[test]
    fn finds_fa_for_the_paper_object() {
        let lists = FunctionLists::new(&paper_functions());
        let mut search = ReverseTopOne::new(Point::from_slice(&[10.0, 6.0, 8.0]), 100);
        let (func, score) = search.best(&lists).unwrap();
        assert_eq!(func, 0);
        assert!((score - 9.4).abs() < 1e-9);
        // biased probing should terminate after very few sorted accesses
        assert!(
            search.sorted_accesses() <= 4,
            "expected early termination, got {} accesses",
            search.sorted_accesses()
        );
    }

    #[test]
    fn resumes_after_best_function_is_assigned() {
        let mut lists = FunctionLists::new(&paper_functions());
        let mut search = ReverseTopOne::new(Point::from_slice(&[10.0, 6.0, 8.0]), 100);
        assert_eq!(search.best(&lists).unwrap().0, 0);
        lists.remove(0); // fa is assigned elsewhere
        let (func, score) = search.best(&lists).unwrap();
        assert_eq!(func, 2); // fc = 8.2 is next
        assert!((score - 8.2).abs() < 1e-9);
        lists.remove(2);
        assert_eq!(search.best(&lists).unwrap().0, 3); // fd = 7.8
        lists.remove(3);
        assert_eq!(search.best(&lists).unwrap().0, 4); // fe = 7.6 > fb 6.8
        lists.remove(4);
        assert_eq!(search.best(&lists).unwrap().0, 1);
        lists.remove(1);
        assert!(search.best(&lists).is_none());
    }

    #[test]
    fn tiny_omega_still_returns_correct_answers_via_restarts() {
        let functions = random_functions(200, 4, 5);
        let mut lists = FunctionLists::new(&functions);
        let object = Point::from_slice(&[0.9, 0.2, 0.7, 0.4]);
        let mut search = ReverseTopOne::new(object.clone(), 2);
        // repeatedly assign away the best function and ask again
        for _ in 0..50 {
            let expect = lists.best_by_scan(&object);
            let got = search.best(&lists);
            match (expect, got) {
                (None, None) => break,
                (Some((ef, es)), Some((gf, gs))) => {
                    assert!((es - gs).abs() < 1e-9, "score mismatch");
                    // the function may differ only if scores tie exactly
                    if ef != gf {
                        assert!(
                            (lists.score(ef, &object) - lists.score(gf, &object)).abs() < 1e-12
                        );
                    }
                    lists.remove(gf);
                }
                other => panic!("oracle and search disagree on existence: {other:?}"),
            }
        }
        assert!(search.restarts() > 0, "a cap of 2 must force restarts");
    }

    #[test]
    fn matches_oracle_on_random_workloads() {
        for seed in [11u64, 12, 13] {
            let functions = random_functions(300, 3, seed);
            let lists = FunctionLists::new(&functions);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
            for _ in 0..20 {
                let object = Point::from_slice(&[
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                ]);
                let mut search = ReverseTopOne::new(object.clone(), 30);
                let (func, score) = search.best(&lists).unwrap();
                let (of, os) = lists.best_by_scan(&object).unwrap();
                assert!((score - os).abs() < 1e-9);
                if func != of {
                    assert!((lists.score(of, &object) - score).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn prioritized_functions_use_scaled_budget() {
        let functions = vec![
            LinearFunction::with_priority(vec![0.8, 0.2], 3.0).unwrap(),
            LinearFunction::with_priority(vec![0.2, 0.8], 2.0).unwrap(),
            LinearFunction::with_priority(vec![0.5, 0.5], 1.0).unwrap(),
        ];
        let lists = FunctionLists::new(&functions);
        let object = Point::from_slice(&[0.5, 0.6]);
        let mut search = ReverseTopOne::new(object.clone(), 10);
        let (func, score) = search.best(&lists).unwrap();
        let (of, os) = lists.best_by_scan(&object).unwrap();
        assert_eq!(func, of);
        assert!((score - os).abs() < 1e-9);
    }

    #[test]
    fn zero_alive_functions_returns_none_immediately() {
        let mut lists = FunctionLists::new(&paper_functions());
        for i in 0..5 {
            lists.remove(i);
        }
        let mut search = ReverseTopOne::new(Point::from_slice(&[0.5, 0.5, 0.5]), 10);
        assert!(search.best(&lists).is_none());
    }

    #[test]
    fn mid_queue_deaths_do_not_block_the_queue() {
        // Kill functions that are NOT the current best, so under the old
        // front-only purge they would sit dead in the middle of the queue.
        // The search must keep returning the true best without restarting as
        // long as the capacity allows.
        let functions = random_functions(120, 3, 41);
        let mut lists = FunctionLists::new(&functions);
        let object = Point::from_slice(&[0.6, 0.3, 0.8]);
        let mut search = ReverseTopOne::new(object.clone(), 60);
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..40 {
            let expect = lists.best_by_scan(&object);
            let got = search.best(&lists);
            match (expect, got) {
                (None, None) => break,
                (Some((_, es)), Some((gf, gs))) => {
                    assert!((es - gs).abs() < 1e-9, "round {round}: score mismatch");
                    // remove a random *non-best* alive function: it dies while
                    // buried somewhere inside the candidate queue
                    let alive: Vec<usize> = lists
                        .alive_functions()
                        .into_iter()
                        .filter(|&f| f != gf)
                        .collect();
                    if alive.is_empty() {
                        break;
                    }
                    lists.remove(alive[rng.gen_range(0..alive.len())]);
                }
                other => panic!("oracle and search disagree on existence: {other:?}"),
            }
        }
    }

    #[test]
    fn exact_score_ties_resolve_to_the_lowest_function_index() {
        // two identical functions (an exact score tie by construction): the
        // candidate queue must order them by index, so the returned best is
        // deterministic on exact ties
        let functions = vec![
            LinearFunction::from_normalized(vec![0.5, 0.5]).unwrap(),
            LinearFunction::from_normalized(vec![0.5, 0.5]).unwrap(),
            LinearFunction::from_normalized(vec![0.9, 0.1]).unwrap(),
        ];
        let lists = FunctionLists::new(&functions);
        let object = Point::from_slice(&[0.2, 0.8]);
        let mut search = ReverseTopOne::new(object, 10);
        let (func, score) = search.best(&lists).unwrap();
        assert!((score - 0.5).abs() < 1e-12);
        assert_eq!(func, 0, "ties must break to the lowest function index");
    }

    #[test]
    fn memory_reporting_is_monotone_during_search() {
        let functions = random_functions(100, 3, 21);
        let lists = FunctionLists::new(&functions);
        let mut search = ReverseTopOne::new(Point::from_slice(&[0.3, 0.9, 0.1]), 50);
        let before = search.memory_bytes();
        let _ = search.best(&lists);
        assert!(search.memory_bytes() >= before);
    }

    #[test]
    fn biased_probing_beats_round_robin_on_access_count() {
        // construct an object that strongly prefers one dimension; biased
        // probing should need far fewer sorted accesses than |F| * D
        let functions = random_functions(500, 4, 31);
        let lists = FunctionLists::new(&functions);
        let object = Point::from_slice(&[0.99, 0.01, 0.01, 0.01]);
        let mut search = ReverseTopOne::new(object, 50);
        let _ = search.best(&lists).unwrap();
        assert!(
            search.sorted_accesses() < 500,
            "expected early termination, got {}",
            search.sorted_accesses()
        );
    }
}
