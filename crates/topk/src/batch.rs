//! Batch best-pair search over disk-resident function lists (Section 7.6).
//!
//! When `F` does not fit in memory, the `D` sorted coefficient lists are
//! materialized on disk. Running an individual TA search per skyline object
//! would rescan the lists once per object; instead the lists are scanned
//! *once per skyline version*, block by block in a round-robin fashion, and
//! every encountered function is scored against all still-active skyline
//! objects. An object becomes inactive as soon as its current best score
//! reaches its fractional-knapsack threshold. This is the `SB-alt` module
//! evaluated in Figure 17.

use crate::knapsack::tight_threshold;
use crate::lists::FunctionLists;
use pref_geom::{LinearFunction, Point};
use pref_storage::{IoStats, LruBuffer, PageId, PAGE_SIZE};
use std::collections::HashSet;

/// Bytes per list entry on disk: a coefficient plus a function identifier.
const LIST_ENTRY_BYTES: usize = 16;

/// Disk-resident sorted coefficient lists with explicit I/O accounting.
///
/// Sequential block reads and per-function random accesses are charged to an
/// [`IoStats`] counter through an LRU buffer, mirroring how the object R-tree
/// charges node accesses.
#[derive(Debug, Clone)]
pub struct DiskFunctionLists {
    lists: FunctionLists,
    entries_per_block: usize,
    buffer: LruBuffer,
    stats: IoStats,
}

impl DiskFunctionLists {
    /// Materializes the lists for a set of functions with an LRU buffer of
    /// `buffer_frames` blocks.
    pub fn new(functions: &[LinearFunction], buffer_frames: usize) -> Self {
        Self {
            lists: FunctionLists::new(functions),
            entries_per_block: PAGE_SIZE / LIST_ENTRY_BYTES,
            buffer: LruBuffer::new(buffer_frames),
            stats: IoStats::new(),
        }
    }

    /// The in-memory view of the lists (used for CPU-side scoring).
    pub fn inner(&self) -> &FunctionLists {
        &self.lists
    }

    /// Removes (assigns) a function.
    pub fn remove(&mut self, function: usize) -> bool {
        self.lists.remove(function)
    }

    /// Number of unassigned functions.
    pub fn remaining(&self) -> usize {
        self.lists.remaining()
    }

    /// I/O statistics accumulated so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the I/O statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Total number of blocks per list.
    pub fn blocks_per_list(&self) -> usize {
        self.lists.total().div_ceil(self.entries_per_block)
    }

    /// Number of list entries held by one 4 KiB block.
    pub fn entries_per_block(&self) -> usize {
        self.entries_per_block
    }

    /// Reads one block of a list sequentially (charged through the buffer) and
    /// returns the contained `(coefficient, function)` entries.
    fn read_block(&mut self, dim: usize, block: usize) -> &[(f64, usize)] {
        self.charge(Self::block_page(dim, block, self.blocks_per_list()));
        let start = block * self.entries_per_block;
        let end = (start + self.entries_per_block).min(self.lists.total());
        &self.lists.raw_list(dim)[start..end]
    }

    /// Performs the random accesses needed to reconstruct a function's full
    /// coefficient vector (`D - 1` accesses to the other lists).
    fn random_access(&mut self, function: usize) {
        let dims = self.lists.dims();
        for d in 1..dims {
            self.charge(Self::record_page(function, d));
        }
    }

    fn charge(&mut self, page: PageId) {
        self.stats.logical_reads += 1;
        if self.buffer.access(page) {
            self.stats.buffer_hits += 1;
        } else {
            self.stats.physical_reads += 1;
        }
    }

    fn block_page(dim: usize, block: usize, blocks_per_list: usize) -> PageId {
        PageId::new((dim * blocks_per_list + block) as u64)
    }

    fn record_page(function: usize, dim: usize) -> PageId {
        // random-access pages live in a separate id range
        PageId::new(1_000_000_000 + (function * 16 + dim) as u64)
    }
}

/// Finds the best alive function for every object in `objects` with a single
/// batched scan over the disk-resident lists. Returns, per object, the best
/// `(function index, score)` or `None` when no alive function remains.
pub fn batch_best_functions(
    disk: &mut DiskFunctionLists,
    objects: &[Point],
) -> Vec<Option<(usize, f64)>> {
    let n = objects.len();
    let mut best: Vec<Option<(usize, f64)>> = vec![None; n];
    if n == 0 || disk.remaining() == 0 {
        return best;
    }
    let dims = disk.inner().dims();
    let budget = disk.inner().budget();
    let blocks = disk.blocks_per_list();
    let mut active: Vec<bool> = vec![true; n];
    let mut active_count = n;
    let mut last_seen: Vec<f64> = vec![budget; dims];
    let mut next_block: Vec<usize> = vec![0; dims];
    let mut seen: HashSet<usize> = HashSet::new();

    while active_count > 0 {
        let mut progressed = false;
        for dim in 0..dims {
            if active_count == 0 {
                break;
            }
            if next_block[dim] >= blocks {
                last_seen[dim] = 0.0;
                continue;
            }
            let block_idx = next_block[dim];
            next_block[dim] += 1;
            progressed = true;
            let entries: Vec<(f64, usize)> = disk.read_block(dim, block_idx).to_vec();
            let mut newly_seen: Vec<usize> = Vec::new();
            for (coeff, func) in entries {
                last_seen[dim] = coeff;
                if !disk.inner().is_alive(func) {
                    continue;
                }
                if seen.insert(func) {
                    newly_seen.push(func);
                }
            }
            for func in newly_seen {
                disk.random_access(func);
                for (i, obj) in objects.iter().enumerate() {
                    if !active[i] {
                        continue;
                    }
                    let score = disk.inner().score(func, obj);
                    // exact score ties break to the lowest function index —
                    // the same deterministic rule as the per-object TA search
                    let better = match best[i] {
                        None => true,
                        Some((bf, bs)) => score > bs || (score == bs && func < bf),
                    };
                    if better {
                        best[i] = Some((func, score));
                    }
                }
            }
            // threshold check after the block
            for (i, obj) in objects.iter().enumerate() {
                if !active[i] {
                    continue;
                }
                let threshold = tight_threshold(obj, &last_seen, budget);
                if let Some((_, s)) = best[i] {
                    if s >= threshold - 1e-12 {
                        active[i] = false;
                        active_count -= 1;
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_functions(n: usize, dims: usize, seed: u64) -> Vec<LinearFunction> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                LinearFunction::new((0..dims).map(|_| rng.gen_range(0.01..1.0)).collect()).unwrap()
            })
            .collect()
    }

    fn random_objects(n: usize, dims: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::from_slice(
                    &(0..dims)
                        .map(|_| rng.gen_range(0.0..1.0))
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    #[test]
    fn batch_results_match_exhaustive_scan() {
        let functions = random_functions(2000, 4, 51);
        let objects = random_objects(30, 4, 52);
        let mut disk = DiskFunctionLists::new(&functions, 8);
        let results = batch_best_functions(&mut disk, &objects);
        for (obj, res) in objects.iter().zip(&results) {
            let (func, score) = res.expect("alive functions exist");
            let (of, os) = disk.inner().best_by_scan(obj).unwrap();
            assert!((score - os).abs() < 1e-9);
            if func != of {
                assert!((disk.inner().score(of, obj) - score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn removed_functions_are_never_returned() {
        let functions = random_functions(500, 3, 61);
        let objects = random_objects(10, 3, 62);
        let mut disk = DiskFunctionLists::new(&functions, 4);
        // remove the overall best function for the first object
        let initial = batch_best_functions(&mut disk, &objects);
        let banned = initial[0].unwrap().0;
        disk.remove(banned);
        let results = batch_best_functions(&mut disk, &objects);
        for res in results.iter().flatten() {
            assert_ne!(res.0, banned);
        }
    }

    #[test]
    fn exact_ties_resolve_to_the_lowest_function_index() {
        // functions 0 and 1 are identical, so they tie exactly on any object;
        // the batch scan must return the lower index deterministically
        let functions = vec![
            LinearFunction::new(vec![0.6, 0.4]).unwrap(),
            LinearFunction::new(vec![0.6, 0.4]).unwrap(),
            LinearFunction::new(vec![0.1, 0.9]).unwrap(),
        ];
        let objects = vec![Point::from_slice(&[0.9, 0.1])];
        let mut disk = DiskFunctionLists::new(&functions, 2);
        let res = batch_best_functions(&mut disk, &objects);
        assert_eq!(res[0].unwrap().0, 0);
    }

    #[test]
    fn no_alive_functions_gives_none() {
        let functions = random_functions(10, 2, 71);
        let objects = random_objects(3, 2, 72);
        let mut disk = DiskFunctionLists::new(&functions, 2);
        for i in 0..10 {
            disk.remove(i);
        }
        let results = batch_best_functions(&mut disk, &objects);
        assert!(results.iter().all(Option::is_none));
    }

    #[test]
    fn empty_object_batch_is_cheap() {
        let functions = random_functions(100, 3, 81);
        let mut disk = DiskFunctionLists::new(&functions, 2);
        let results = batch_best_functions(&mut disk, &[]);
        assert!(results.is_empty());
        assert_eq!(disk.stats().logical_reads, 0);
    }

    #[test]
    fn io_scales_with_list_blocks_not_with_object_count() {
        let functions = random_functions(4000, 4, 91);
        let few = random_objects(2, 4, 92);
        let many = random_objects(60, 4, 93);
        let mut disk_few = DiskFunctionLists::new(&functions, 8);
        let mut disk_many = DiskFunctionLists::new(&functions, 8);
        batch_best_functions(&mut disk_few, &few);
        batch_best_functions(&mut disk_many, &many);
        let io_few = disk_few.stats().logical_reads;
        let io_many = disk_many.stats().logical_reads;
        // more objects keep the scan active longer, but the growth must be
        // far below linear in the number of objects
        assert!(
            io_many < io_few * 30,
            "I/O grew from {io_few} to {io_many} for 30x more objects"
        );
    }

    #[test]
    fn skewed_object_terminates_after_few_blocks() {
        let functions = random_functions(5000, 3, 101);
        let objects = vec![Point::from_slice(&[0.99, 0.98, 0.97])];
        let mut disk = DiskFunctionLists::new(&functions, 4);
        let res = batch_best_functions(&mut disk, &objects);
        assert!(res[0].is_some());
        let io = disk.stats().logical_reads;
        // worst case: scan every block of every list and random-access every
        // function on the D-1 other lists
        let worst = (disk.blocks_per_list() * 3 + 5000 * 2) as u64;
        assert!(
            io < worst / 2,
            "expected early termination: {io} I/Os vs worst case {worst}"
        );
    }

    #[test]
    fn entries_per_block_matches_page_size() {
        let functions = random_functions(10, 2, 111);
        let disk = DiskFunctionLists::new(&functions, 1);
        assert_eq!(disk.entries_per_block(), 256);
        assert_eq!(disk.blocks_per_list(), 1);
    }
}
